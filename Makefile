# Convenience targets; everything is plain pytest / python underneath.

.PHONY: install test bench figures examples metrics-demo obs-demo ledger \
	resilience audit serving soak serve-demo sharding shard-demo \
	fleet fleet-demo chaos chaos-soak clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python examples/reproduce_paper.py

metrics-demo:
	PYTHONPATH=src python -m repro rank --dataset tiny \
		--metrics-out /tmp/repro-metrics.json --trace
	@echo "--- exported metrics ---"
	@cat /tmp/repro-metrics.json

obs-demo:
	PYTHONPATH=src python -m repro rank --dataset tiny --profile \
		--events-out /tmp/repro-events.jsonl
	@echo "--- correlated event log (tail) ---"
	@tail -n 5 /tmp/repro-events.jsonl
	PYTHONPATH=src python -m repro serve --snapshot-dir /tmp/repro-obs-serve \
		--updates 3 --endpoint --events-out /tmp/repro-serve-events.jsonl
	@echo "--- perf-trajectory ledger ---"
	PYTHONPATH=src python benchmarks/ledger.py show

ledger:
	PYTHONPATH=src python benchmarks/ledger.py compare

resilience:
	PYTHONPATH=src python -m pytest -q tests/resilience
	PYTHONPATH=src python benchmarks/bench_resilience.py --quick

audit:
	PYTHONPATH=src python -m pytest -q tests/audit
	PYTHONPATH=src python benchmarks/bench_audit.py --quick

serving:
	PYTHONPATH=src python -m pytest -q tests/serving
	PYTHONPATH=src python benchmarks/bench_serving.py --quick

soak:
	PYTHONPATH=src python benchmarks/bench_serving.py

sharding:
	PYTHONPATH=src python -m pytest -q tests/webgraph tests/linalg
	PYTHONPATH=src python benchmarks/bench_sharding.py --quick

shard-demo:
	rm -rf /tmp/repro-shard-demo
	PYTHONPATH=src python -m repro shard create /tmp/repro-shard-demo \
		--synthetic-sources 20000 --block-size 4096
	PYTHONPATH=src python -m repro shard info /tmp/repro-shard-demo --verify
	PYTHONPATH=src python -m repro rank --graph-store /tmp/repro-shard-demo \
		--top 5

fleet:
	PYTHONPATH=src python -m pytest -q tests/serving/test_fleet.py \
		tests/serving/test_frontend.py tests/serving/test_read_path.py
	PYTHONPATH=src python benchmarks/bench_fleet.py --quick

chaos:
	PYTHONPATH=src python -m pytest -q tests/serving/test_slo.py \
		tests/resilience/test_faults.py
	PYTHONPATH=src python benchmarks/bench_chaos.py --quick

chaos-soak:
	PYTHONPATH=src python benchmarks/bench_chaos.py

fleet-demo:
	rm -rf /tmp/repro-fleet-demo
	PYTHONPATH=src python -m repro serve --snapshot-dir /tmp/repro-fleet-demo \
		--replicas 3 --updates 3 --queries 20

serve-demo:
	PYTHONPATH=src python -m repro serve --snapshot-dir /tmp/repro-serve \
		--updates 6 --inject crash --metrics-out /tmp/repro-serve-metrics.json
	@echo "--- run again to see restart recovery from the snapshot store ---"

examples:
	python examples/quickstart.py
	python examples/attack_lab.py
	python examples/host_ranking.py
	python examples/spammer_economics.py
	python examples/evolving_web.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

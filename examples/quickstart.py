#!/usr/bin/env python
"""Quickstart: rank a synthetic web with Spam-Resilient SourceRank.

Demonstrates the five-step pipeline of the paper on a generated dataset
with planted spam communities:

1. load a web (page graph + host assignment + ground-truth spam);
2. tell the defender about a small sample of the spam (the paper uses
   <10 % of its labeled set);
3. run the full pipeline: source graph -> spam proximity -> kappa ->
   Spam-Resilient SourceRank;
4. compare against the unthrottled SourceRank baseline;
5. show where the ground-truth spam landed under each ranking.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SpamResilientPipeline, load_dataset, sample_seed_set
from repro.eval import format_table


def main() -> None:
    # 1. A scaled synthetic analogue of the paper's UK2002 crawl.
    ds = load_dataset("uk2002_like")
    print(
        f"dataset: {ds.spec.name} — {ds.n_pages:,} pages, "
        f"{ds.n_sources:,} sources, {ds.spam_sources.size} planted spam sources"
    )

    # 2. The defender only knows a 10 % sample of the spam.
    rng = np.random.default_rng(42)
    seeds = sample_seed_set(ds.spam_sources, 0.10, rng)
    print(f"seeding spam proximity with {seeds.size} known spam sources")

    # 3. The full Spam-Resilient SourceRank pipeline (paper defaults:
    #    alpha=0.85, L2 tolerance 1e-9, consensus weighting, top-k kappa).
    pipe = SpamResilientPipeline()
    result = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
    print(
        f"throttled {result.kappa.fully_throttled().size} sources "
        f"(kappa = 1) out of {ds.n_sources:,}"
    )

    # 4. Baselines.
    baseline = pipe.baseline_sourcerank(ds.graph, ds.assignment)

    # 5. Where did the ground-truth spam end up?
    spam = ds.spam_sources
    rows = [
        {
            "ranking": "SourceRank (baseline)",
            "mean_spam_percentile": baseline.percentiles()[spam].mean(),
            "spam_in_top_half": int(
                (baseline.percentiles()[spam] > 50).sum()
            ),
        },
        {
            "ranking": "Spam-Resilient SourceRank",
            "mean_spam_percentile": result.scores.percentiles()[spam].mean(),
            "spam_in_top_half": int(
                (result.scores.percentiles()[spam] > 50).sum()
            ),
        },
    ]
    print()
    print(
        format_table(
            rows,
            ["ranking", "mean_spam_percentile", "spam_in_top_half"],
            title="Ground-truth spam placement (higher percentile = better ranked)",
        )
    )
    print()
    print("top 5 sources under SR-SourceRank:", result.top_sources(5).tolist())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Evolving web: incremental rank maintenance while spam creeps in.

Simulates a search operator's week: the crawl grows every "day" — mostly
organic pages, but a link-farm campaign is quietly assembling itself.
The operator re-ranks daily with :class:`IncrementalSourceRank` (warm
starts make the daily re-rank cheap) and watches the campaign's target
climb; on day 5 the operator blocklists the suspicious riser, and spam
proximity — which flows *backwards* along links into spam — catches
every farm source feeding it, past and future waves alike.

Run:  python examples/evolving_web.py
"""

from __future__ import annotations

import numpy as np

from repro import RankingParams, load_dataset
from repro.eval import format_table
from repro.ranking import IncrementalSourceRank
from repro.spam import LinkFarmAttack
from repro.throttle import ThrottleVector, assign_kappa, spam_proximity
from repro.config import ThrottleParams
from repro.sources import SourceGraph


def main() -> None:
    ds = load_dataset("tiny", with_spam=False)
    params = RankingParams()
    ranker = IncrementalSourceRank(params, full_throttle="dangling")

    graph, assignment = ds.graph, ds.assignment
    day0 = ranker.update(graph, assignment)
    target_source = int(day0.order()[-1])
    target_page = int(assignment.pages_of(target_source)[0])
    print(
        f"web: {graph.n_nodes} pages / {assignment.n_sources} sources; "
        f"campaign target = source {target_source} "
        f"(percentile {day0.percentiles()[target_source]:.1f})"
    )

    rows = []
    kappa: ThrottleVector | None = None
    for day in range(1, 8):
        # The campaign adds a new farm wave each day.
        wave = LinkFarmAttack(target_page, n_pages=10 * day, n_sources=2)
        spammed = wave.apply(graph, assignment)
        graph, assignment = spammed.graph, spammed.assignment

        # Day 5: the operator blocklists the suspicious riser.  From then
        # on the throttle vector is refreshed daily — spam proximity flows
        # backwards along links into the blocklisted source, so each new
        # farm wave is throttled the day it appears.
        if day >= 5:
            sg = SourceGraph.from_page_graph(graph, assignment)
            proximity = spam_proximity(sg, [target_source])
            kappa = assign_kappa(
                proximity.scores,
                ThrottleParams(top_fraction=20 / assignment.n_sources),
            )

        ranking = ranker.update(graph, assignment, kappa)
        rows.append(
            {
                "day": day,
                "sources": assignment.n_sources,
                "target_percentile": ranking.percentiles()[target_source],
                "iterations": ranking.convergence.iterations,
                "throttled": 0 if kappa is None else kappa.fully_throttled().size,
            }
        )

    print()
    print(
        format_table(
            rows,
            ["day", "sources", "target_percentile", "iterations", "throttled"],
            title="One week of an evolving web (blocklist lands on day 5)",
        )
    )
    print(
        "\nThe target climbs while the farm grows, then collapses on day 5: "
        "blocklisting the riser throttles it and every farm source feeding "
        "it — including waves added afterwards."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Host ranking from a raw URL edge list — the downstream-user workflow.

Shows the path a search-engine practitioner would take with their own
crawl data: parse a URL-pair edge list, group pages into host-level
sources, rank with Spam-Resilient SourceRank seeded by a blocklist, and
print the best and worst hosts.

The example synthesizes a tiny crawl inline (a handful of legitimate
sites plus a link-farm ring hijacking a forum) so it runs without any
input files; swap ``make_crawl()`` for ``repro.graph.read_labeled_edges``
on a real TSV to use your own data.

Run:  python examples/host_ranking.py
"""

from __future__ import annotations

import io

import numpy as np

from repro import SpamResilientPipeline, SourceAssignment, ThrottleParams
from repro.eval import format_table
from repro.graph import read_labeled_edges

_CRAWL = """\
# src_url	dst_url
http://news.example.com/world	http://weather.example.org/today
http://news.example.com/world	http://uni.edu/physics
http://news.example.com/sports	http://weather.example.org/today
http://news.example.com/sports	http://forum.example.net/thread1
http://uni.edu/physics	http://uni.edu/people
http://uni.edu/people	http://news.example.com/world
http://uni.edu/library	http://news.example.com/world
http://weather.example.org/today	http://news.example.com/world
http://forum.example.net/thread1	http://forum.example.net/thread2
http://forum.example.net/thread2	http://news.example.com/sports
# --- a spam campaign hijacks the forum and builds a farm ring ---
http://forum.example.net/thread1	http://cheap-pills.test/buy
http://forum.example.net/thread2	http://cheap-pills.test/buy
http://farm-a.test/p1	http://cheap-pills.test/buy
http://farm-a.test/p2	http://cheap-pills.test/buy
http://farm-b.test/p1	http://cheap-pills.test/buy
http://farm-b.test/p2	http://farm-a.test/p1
http://farm-a.test/p1	http://farm-b.test/p1
http://cheap-pills.test/buy	http://cheap-pills.test/landing
http://cheap-pills.test/landing	http://cheap-pills.test/buy
"""


def main() -> None:
    # 1. Parse the crawl: URLs are interned to dense page ids.
    graph, name_to_id = read_labeled_edges(io.StringIO(_CRAWL))
    urls = sorted(name_to_id, key=name_to_id.get)
    print(f"crawl: {graph.n_nodes} pages, {graph.n_edges} links")

    # 2. Host-level source assignment straight from the URLs.
    assignment = SourceAssignment.from_urls(urls, key="host")
    print(f"hosts: {assignment.n_sources}")

    # 3. The operator blocklists one known spam host.
    blocked_host = "cheap-pills.test"
    blocked = next(
        s for s in range(assignment.n_sources)
        if assignment.name_of(s) == blocked_host
    )

    # 4. Rank.  Spam proximity will throttle the farm ring too, even
    #    though only cheap-pills.test was blocklisted.  The default
    #    throttle budget is the paper's ~2.7 % of sources — on a 7-host
    #    crawl that rounds to zero, so size it to the crawl instead.
    pipe = SpamResilientPipeline(
        throttle=ThrottleParams(top_fraction=3 / assignment.n_sources)
    )
    result = pipe.rank(graph, assignment, spam_seeds=[blocked])
    baseline = pipe.baseline_sourcerank(graph, assignment)

    rows = []
    for s in result.scores.order():
        rows.append(
            {
                "host": assignment.name_of(int(s)),
                "srsr_score": result.scores.score_of(int(s)),
                "baseline_score": baseline.score_of(int(s)),
                "kappa": result.kappa[int(s)],
            }
        )
    print()
    print(
        format_table(
            rows,
            ["host", "srsr_score", "baseline_score", "kappa"],
            title="Host ranking (best first) — kappa=1 marks throttled hosts",
        )
    )

    throttled = {
        assignment.name_of(int(s)) for s in result.kappa.fully_throttled()
    }
    print()
    print(f"throttled hosts (from 1 blocklist entry): {sorted(throttled)}")


if __name__ == "__main__":
    main()

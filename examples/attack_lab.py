#!/usr/bin/env python
"""Attack lab: measure every Section 2 attack against both rankings.

Plays the Web spammer: launches hijack, honeypot, link-farm,
link-exchange, intra-source, and cross-source attacks against the same
target page, and reports how much each attack moves the target under
PageRank vs Spam-Resilient SourceRank — the Fig. 4/6/7 story in one
table.

Run:  python examples/attack_lab.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossSourceAttack,
    HijackAttack,
    HoneypotAttack,
    IntraSourceAttack,
    LinkExchangeAttack,
    LinkFarmAttack,
    RankingParams,
    evaluate_attack,
    load_dataset,
)
from repro.eval import format_table
from repro.ranking import pagerank, sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.spam import pick_targets


def main() -> None:
    ds = load_dataset("tiny", with_spam=False)
    params = RankingParams()
    rng = np.random.default_rng(7)

    # Precompute the clean rankings once (the attacks share them).
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    sr_before = spam_resilient_sourcerank(sg, None, params)
    pr_before = pagerank(ds.graph, params)

    # A bottom-half target, per the paper's protocol.
    (target_source, target_page), = pick_targets(
        sr_before, ds.assignment, rng, n_targets=1
    )
    print(
        f"target: page {target_page} in source {target_source} "
        f"(clean source percentile "
        f"{sr_before.percentiles()[target_source]:.1f})"
    )

    # Victim pool for hijack/honeypot: pages of the largest legit source.
    big = int(np.argmax(ds.assignment.source_sizes))
    victims = ds.assignment.pages_of(big)
    victims = victims[victims != target_page][:10]

    colluder = int(sr_before.order()[-2])
    if colluder == target_source:
        colluder = int(sr_before.order()[-3])

    attacks = {
        "intra-source x100": IntraSourceAttack(target_page, 100),
        "cross-source x100": CrossSourceAttack(target_page, colluder, 100),
        "link farm (1 src)": LinkFarmAttack(target_page, 100, n_sources=1),
        "link farm (10 src)": LinkFarmAttack(target_page, 100, n_sources=10),
        "link exchange 5x4": LinkExchangeAttack(target_page, 5, 4),
        "hijack 10 pages": HijackAttack(target_page, victims),
        "honeypot": HoneypotAttack(target_page, 5, victims),
    }

    rows = []
    for name, attack in attacks.items():
        ev = evaluate_attack(
            ds.graph,
            ds.assignment,
            attack,
            params=params,
            pagerank_before=pr_before,
            srsr_before=sr_before,
        )
        rows.append(
            {
                "attack": name,
                "pr_amplification": ev.pagerank_record.amplification,
                "pr_pct_gain": ev.pagerank_record.percentile_gain,
                "srsr_amplification": ev.srsr_record.amplification,
                "srsr_pct_gain": ev.srsr_record.percentile_gain,
            }
        )

    print()
    print(
        format_table(
            rows,
            [
                "attack",
                "pr_amplification",
                "pr_pct_gain",
                "srsr_amplification",
                "srsr_pct_gain",
            ],
            title="Attack lab: target movement under PageRank vs SR-SourceRank",
        )
    )
    print()
    print(
        "Note the caps (Section 4): single-source attacks cannot amplify "
        f"SR-SourceRank beyond 1/(1-alpha) = {1 / (1 - params.alpha):.2f} no "
        "matter how many pages they add, and multi-source collusion pays "
        "per *source* (suppressed further by throttling) while PageRank "
        "pays the spammer per *page*."
    )


if __name__ == "__main__":
    main()

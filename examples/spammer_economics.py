#!/usr/bin/env python
"""Spammer economics: what does a rank actually cost?

Implements the paper's Section 8 future work as a runnable study:

1. closed-form optimal attack plans for a budget-bound spammer, against
   PageRank and against SR-SourceRank at increasing throttle levels;
2. a simulated portfolio study — the planted spam communities' modeled
   traffic share before and after influence throttling.

Run:  python examples/spammer_economics.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AttackPlanner,
    CostModel,
    ExperimentParams,
    load_dataset,
    sample_seed_set,
    sourcerank,
    spam_resilient_sourcerank,
    traffic_share,
)
from repro.eval import format_table
from repro.sources import SourceGraph
from repro.throttle import assign_kappa, spam_proximity


def planning_study() -> None:
    """Closed-form: the best the spammer can do with a fixed budget."""
    costs = CostModel(page_cost=1.0, source_cost=50.0)
    planner = AttackPlanner(costs, n_pages=1_000_000, n_sources=100_000)
    budget = 100_000.0

    rows = [planner.plan_against_pagerank(budget).as_dict()]
    for kappa in (0.0, 0.6, 0.9, 0.99):
        plan = planner.plan_against_srsr(budget, kappa)
        row = plan.as_dict()
        row["score_cost_ratio"] = planner.cost_ratio(kappa)
        rows.append(row)
    print(
        format_table(
            rows,
            ["ranking", "pages", "sources", "score_gain", "score_cost_ratio"],
            title=f"Optimal plans for a budget of {budget:,.0f} units",
        )
    )
    print(
        "\nReading: against PageRank the spammer buys 100k cheap pages; "
        "against SR-SourceRank pages stop paying after the first per "
        "source, so the same budget buys only ~2k sources — and each "
        "throttle increment multiplies the per-score cost (last column)."
    )


def portfolio_study() -> None:
    """Simulated: the spam portfolio's value collapse under throttling."""
    params = ExperimentParams()
    ds = load_dataset("uk2002_like")
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    rng = np.random.default_rng(params.seed)
    seeds = sample_seed_set(ds.spam_sources, params.seed_fraction, rng)
    proximity = spam_proximity(sg, seeds, params.proximity)
    kappa = assign_kappa(proximity.scores, params.throttle)

    baseline = sourcerank(sg, params.ranking)
    throttled = spam_resilient_sourcerank(
        sg, kappa, params.ranking, full_throttle="dangling"
    )
    rows = []
    for label, ranking in (("baseline SourceRank", baseline),
                           ("SR-SourceRank (throttled)", throttled)):
        rows.append(
            {
                "ranking": label,
                "spam_traffic_share_%": 100 * traffic_share(ranking, ds.spam_sources),
                "best_spam_percentile": ranking.percentiles()[ds.spam_sources].max(),
            }
        )
    print()
    print(
        format_table(
            rows,
            ["ranking", "spam_traffic_share_%", "best_spam_percentile"],
            title=(
                f"Portfolio value of {ds.spam_sources.size} spam sources "
                f"on {ds.spec.name} (seeded with {seeds.size})"
            ),
        )
    )


def main() -> None:
    planning_study()
    portfolio_study()


if __name__ == "__main__":
    main()

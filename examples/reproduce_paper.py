#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints the Table 1 analogue and the Fig. 2–7 series exactly as the
benchmark harness records them.  This is the end-to-end reproduction
script referenced by EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py            # full run (~1 min)
      python examples/reproduce_paper.py --fast     # tiny dataset only
"""

from __future__ import annotations

import argparse
import time

from repro.config import ExperimentParams, ThrottleParams
from repro.eval import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
)
from repro.eval.experiments import run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="run Fig. 5/6/7 on the tiny dataset only",
    )
    args = parser.parse_args()

    if args.fast:
        datasets = ["tiny"]
        params = ExperimentParams(
            n_targets=2,
            cases=(1, 10, 100),
            throttle=ThrottleParams(top_fraction=16 / 128),
            seed_fraction=0.25,
            n_buckets=10,
        )
    else:
        datasets = ["uk2002_like", "it2004_like", "wb2001_like"]
        params = ExperimentParams()

    start = time.perf_counter()

    def show(title: str, text: str) -> None:
        print("=" * 72)
        print(text)
        print()

    if not args.fast:
        show("table1", run_table1().format())
    show("fig2", run_fig2().format())
    show("fig3", run_fig3(empirical=True).format())
    for scenario in (1, 2, 3):
        show(f"fig4-{scenario}", run_fig4(scenario, empirical=True).format())
    show("fig5", run_fig5(datasets[-1], params).format())
    for ds in datasets:
        show(f"fig6-{ds}", run_fig6(ds, params).format())
    for ds in datasets:
        show(f"fig7-{ds}", run_fig7(ds, params).format())

    print("=" * 72)
    print(f"done in {time.perf_counter() - start:.1f} s")


if __name__ == "__main__":
    main()

"""Interval-coded compressed graph: the second compression tier.

:class:`IntervalCompressedGraph` stores each successor list with
:func:`~repro.webgraph.intervals.encode_row` — runs of consecutive ids
become ``(start, length)`` intervals, residuals stay gap-coded.  On
navigation-heavy graphs (hosts with ``/page1 .. /pageN`` chains, planted
farms, synthetic hub structures) this beats the plain gap codec; on
diffuse graphs the per-row interval counters cost a few bits.  The
``compare_codecs`` helper quantifies the trade-off per graph, and
``tests/webgraph/test_interval_graph.py`` exercises exact round trips.

Rows are encoded/decoded independently (same random-access property as
:class:`~repro.webgraph.compressed.CompressedGraph`); encoding loops over
rows in Python, which is fine at laptop scale and keeps the codec
self-delimiting per row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError, NodeIndexError
from ..graph.pagegraph import PageGraph
from .compressed import CompressedGraph, CompressionStats
from .intervals import DEFAULT_MIN_INTERVAL, decode_row, encode_row

__all__ = ["IntervalCompressedGraph", "compare_codecs"]


class IntervalCompressedGraph:
    """Per-row interval + gap compressed directed graph."""

    __slots__ = ("_payload", "_offsets", "_n_nodes", "_n_edges", "_min_interval")

    def __init__(
        self,
        payload: bytes,
        offsets: np.ndarray,
        n_nodes: int,
        n_edges: int,
        min_interval: int = DEFAULT_MIN_INTERVAL,
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        n_nodes = int(n_nodes)
        if offsets.shape != (n_nodes + 1,):
            raise CodecError(
                f"offsets must have length n_nodes + 1 = {n_nodes + 1}, "
                f"got {offsets.size}"
            )
        if offsets[0] != 0 or offsets[-1] != len(payload):
            raise CodecError("offsets must span the payload exactly")
        self._payload = bytes(payload)
        offsets.setflags(write=False)
        self._offsets = offsets
        self._n_nodes = n_nodes
        self._n_edges = int(n_edges)
        self._min_interval = int(min_interval)

    # ------------------------------------------------------------------
    @classmethod
    def from_pagegraph(
        cls,
        graph: PageGraph,
        *,
        min_interval: int = DEFAULT_MIN_INTERVAL,
    ) -> "IntervalCompressedGraph":
        """Compress a graph row by row with interval extraction."""
        chunks: list[bytes] = []
        offsets = np.zeros(graph.n_nodes + 1, dtype=np.int64)
        total = 0
        for node in range(graph.n_nodes):
            successors = graph.successors(node)
            if successors.size:  # empty rows cost zero bytes
                row = encode_row(node, successors, min_interval=min_interval)
                chunks.append(row)
                total += len(row)
            offsets[node + 1] = total
        return cls(
            b"".join(chunks), offsets, graph.n_nodes, graph.n_edges, min_interval
        )

    def to_pagegraph(self) -> PageGraph:
        """Decompress back to CSR form (exact round trip)."""
        rows = [self.successors(node) for node in range(self._n_nodes)]
        counts = np.asarray([r.size for r in rows], dtype=np.int64)
        indptr = np.zeros(self._n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = (
            np.concatenate(rows) if counts.sum() else np.empty(0, dtype=np.int64)
        )
        return PageGraph(indptr, indices, self._n_nodes)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return self._n_edges

    def successors(self, node: int) -> np.ndarray:
        """Decode one node's successor list (random access)."""
        node = int(node)
        if not 0 <= node < self._n_nodes:
            raise NodeIndexError(node, self._n_nodes)
        lo, hi = int(self._offsets[node]), int(self._offsets[node + 1])
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        return decode_row(
            node, self._payload[lo:hi], min_interval=self._min_interval
        )

    def stats(self) -> CompressionStats:
        """Size accounting relative to the CSR int64 representation."""
        return CompressionStats(
            n_nodes=self._n_nodes,
            n_edges=self._n_edges,
            payload_bytes=len(self._payload),
            offset_bytes=int(self._offsets.nbytes),
            csr_bytes=8 * (self._n_nodes + 1) + 8 * self._n_edges,
        )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"IntervalCompressedGraph(n_nodes={self._n_nodes}, "
            f"n_edges={self._n_edges}, bits_per_edge={stats.bits_per_edge:.2f})"
        )


@dataclass(frozen=True, slots=True)
class CodecComparison:
    """Bits-per-edge of the two codecs on one graph."""

    gap_bits_per_edge: float
    interval_bits_per_edge: float

    @property
    def interval_wins(self) -> bool:
        """True when interval coding is the smaller representation."""
        return self.interval_bits_per_edge < self.gap_bits_per_edge


def compare_codecs(graph: PageGraph) -> CodecComparison:
    """Measure both codecs' payload sizes on a graph."""
    gap = CompressedGraph.from_pagegraph(graph).stats()
    interval = IntervalCompressedGraph.from_pagegraph(graph).stats()
    return CodecComparison(
        gap_bits_per_edge=gap.bits_per_edge,
        interval_bits_per_edge=interval.bits_per_edge,
    )

"""Interval-augmented successor coding (the second Boldi–Vigna idea).

Real successor lists contain long runs of consecutive ids (a navigation
bar linking to ``/page1 .. /pageK`` on the same host).  WebGraph encodes
such runs as *intervals* ``(start, length)`` and only gap-codes the
residual ids.  This module provides the split/merge transforms:

* :func:`split_intervals` — extract maximal runs of length >=
  ``min_interval`` from a sorted list, returning interval pairs and
  residuals;
* :func:`merge_intervals` — exact inverse.

:func:`encode_row` / :func:`decode_row` produce a self-delimiting byte
payload for one successor list (interval count, then zigzag/gap-coded
interval starts + lengths, then gap-coded residuals), measured against
plain gap coding in ``bench_substrates.py``-style tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError
from .gaps import zigzag_decode, zigzag_encode
from .varint import decode_varints, encode_varints

__all__ = [
    "split_intervals",
    "merge_intervals",
    "encode_row",
    "decode_row",
    "DEFAULT_MIN_INTERVAL",
]

#: Minimum run length worth encoding as an interval (WebGraph's default).
DEFAULT_MIN_INTERVAL = 4


def split_intervals(
    successors: np.ndarray, *, min_interval: int = DEFAULT_MIN_INTERVAL
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract maximal consecutive runs from a sorted successor list.

    Returns ``(starts, lengths, residuals)``: runs of at least
    ``min_interval`` consecutive ids become ``(start, length)`` pairs;
    everything else stays in ``residuals`` (still sorted).
    """
    successors = np.asarray(successors, dtype=np.int64)
    if min_interval < 2:
        raise CodecError(f"min_interval must be >= 2, got {min_interval}")
    n = successors.size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if n > 1 and (np.diff(successors) <= 0).any():
        raise CodecError("successor list must be strictly increasing")
    # Run boundaries: positions where the consecutive chain breaks.
    breaks = np.flatnonzero(np.diff(successors) != 1)
    run_starts = np.concatenate([[0], breaks + 1])
    run_ends = np.concatenate([breaks, [n - 1]])  # inclusive
    run_lengths = run_ends - run_starts + 1
    is_interval = run_lengths >= min_interval
    starts = successors[run_starts[is_interval]]
    lengths = run_lengths[is_interval]
    # Residuals: members of short runs, preserved in order.
    keep = np.ones(n, dtype=bool)
    for s, ln in zip(run_starts[is_interval], lengths):
        keep[s : s + ln] = False
    residuals = successors[keep]
    return starts.astype(np.int64), lengths.astype(np.int64), residuals


def merge_intervals(
    starts: np.ndarray, lengths: np.ndarray, residuals: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`split_intervals` (returns the sorted union)."""
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    residuals = np.asarray(residuals, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise CodecError("starts and lengths must have equal shape")
    if (lengths < 0).any():
        raise CodecError("interval lengths must be >= 0")
    if starts.size == 0:
        return residuals.copy()
    expanded = np.concatenate(
        [np.arange(s, s + ln, dtype=np.int64) for s, ln in zip(starts, lengths)]
    )
    merged = np.concatenate([expanded, residuals])
    merged.sort(kind="stable")
    if merged.size > 1 and (np.diff(merged) == 0).any():
        raise CodecError("intervals and residuals overlap")
    return merged


def encode_row(
    node: int,
    successors: np.ndarray,
    *,
    min_interval: int = DEFAULT_MIN_INTERVAL,
) -> bytes:
    """Encode one successor list with interval extraction.

    Layout (all varints): ``n_intervals``, interval starts (first
    zigzag-relative to ``node``, then gaps-1 between interval ends and
    next starts), interval ``length - min_interval`` values, then the
    residuals in the standard first-zigzag/gap-1 scheme.
    """
    starts, lengths, residuals = split_intervals(
        successors, min_interval=min_interval
    )
    parts: list[np.ndarray] = [np.asarray([starts.size], dtype=np.int64)]
    if starts.size:
        ends = starts + lengths  # exclusive ends
        start_codes = np.empty(starts.size, dtype=np.int64)
        start_codes[0] = zigzag_encode(np.asarray([starts[0] - node]))[0]
        if starts.size > 1:
            start_codes[1:] = starts[1:] - ends[:-1]  # gap >= 1, store raw
        parts.append(start_codes)
        parts.append(lengths - min_interval)
    parts.append(np.asarray([residuals.size], dtype=np.int64))
    if residuals.size:
        res_codes = np.empty(residuals.size, dtype=np.int64)
        res_codes[0] = zigzag_encode(np.asarray([residuals[0] - node]))[0]
        if residuals.size > 1:
            res_codes[1:] = np.diff(residuals) - 1
        parts.append(res_codes)
    return encode_varints(np.concatenate(parts))


def decode_row(
    node: int,
    payload: bytes,
    *,
    min_interval: int = DEFAULT_MIN_INTERVAL,
) -> np.ndarray:
    """Decode one successor list written by :func:`encode_row`."""
    values = decode_varints(payload)
    pos = 0

    def take(k: int) -> np.ndarray:
        nonlocal pos
        if pos + k > values.size:
            raise CodecError("truncated interval row payload")
        out = values[pos : pos + k]
        pos += k
        return out

    n_intervals = int(take(1)[0])
    starts = np.empty(n_intervals, dtype=np.int64)
    lengths = np.empty(0, dtype=np.int64)
    if n_intervals:
        start_codes = take(n_intervals)
        lengths = take(n_intervals) + min_interval
        starts[0] = zigzag_decode(start_codes[:1])[0] + node
        for i in range(1, n_intervals):
            starts[i] = starts[i - 1] + lengths[i - 1] + start_codes[i]
    n_residuals = int(take(1)[0])
    residuals = np.empty(0, dtype=np.int64)
    if n_residuals:
        res_codes = take(n_residuals)
        residuals = np.empty(n_residuals, dtype=np.int64)
        residuals[0] = zigzag_decode(res_codes[:1])[0] + node
        if n_residuals > 1:
            residuals[1:] = res_codes[1:] + 1
            np.cumsum(residuals, out=residuals)
    if pos != values.size:
        raise CodecError("trailing bytes after interval row payload")
    return merge_intervals(starts, lengths, residuals)

"""Vectorized LEB128 (base-128) varint codec.

Encodes arrays of non-negative integers into the classic little-endian
base-128 representation: seven payload bits per byte, the high bit set on
every byte except the last of each value.  Both directions are fully
vectorized — no per-value Python loop — which is what makes compressing
multi-million-edge graphs tractable in pure NumPy (HPC guide idiom:
vectorize the hot loop).
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

__all__ = ["encode_varints", "decode_varints", "varint_length"]

#: Largest value encodable (we cap at 63-bit to stay inside int64).
_MAX_VALUE = np.int64(2**63 - 1)
_MAX_BYTES = 9  # ceil(63 / 7)


def varint_length(values: np.ndarray) -> np.ndarray:
    """Per-value encoded length in bytes.

    >>> varint_length(np.array([0, 127, 128, 16383, 16384]))
    array([1, 1, 2, 2, 3])
    """
    values = _check_values(values)
    # bit_length(v) == 64 - clz; number of 7-bit groups, minimum 1.
    nbits = np.zeros(values.shape, dtype=np.int64)
    nonzero = values > 0
    # np.log2 is unsafe at the int64 edge; use frexp-free integer approach:
    # repeatedly compare against powers of 2^7.
    v = values[nonzero]
    if v.size:
        # bit length via float is exact for < 2^53; handle the tail exactly.
        small = v < (1 << 53)
        bl = np.empty(v.shape, dtype=np.int64)
        bl[small] = np.floor(np.log2(v[small].astype(np.float64))).astype(np.int64) + 1
        if (~small).any():
            big = v[~small]
            # For >= 2^53 compute exactly with right-shifts (few values).
            out = np.zeros(big.shape, dtype=np.int64)
            work = big.copy()
            while (work > 0).any():
                out += (work > 0).astype(np.int64)
                work >>= 1
            bl[~small] = out
        nbits[nonzero] = bl
    return np.maximum((nbits + 6) // 7, 1)


def _check_values(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise CodecError(f"varint codec expects a 1-D array, got ndim={arr.ndim}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise CodecError(f"varint codec expects integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size and arr.min() < 0:
        raise CodecError("varint codec requires non-negative values")
    return arr


def encode_varints(values: np.ndarray) -> bytes:
    """Encode a 1-D array of non-negative ints into a varint byte stream."""
    values = _check_values(values)
    if values.size == 0:
        return b""
    lengths = varint_length(values)
    total = int(lengths.sum())
    out = np.empty(total, dtype=np.uint8)
    # Offsets of the first byte of each value.
    starts = np.zeros(values.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    # Emit byte-plane by byte-plane: plane k holds bits [7k, 7k+7) of the
    # values still long enough to need a k-th byte.
    work = values.astype(np.uint64)
    for plane in range(_MAX_BYTES):
        active = lengths > plane
        if not active.any():
            break
        idx = starts[active] + plane
        payload = (work[active] >> np.uint64(7 * plane)) & np.uint64(0x7F)
        cont = (lengths[active] - 1 > plane).astype(np.uint8) << 7
        out[idx] = payload.astype(np.uint8) | cont
    return out.tobytes()


def decode_varints(data: bytes | np.ndarray, count: int | None = None) -> np.ndarray:
    """Decode a varint byte stream back into an ``int64`` array.

    Parameters
    ----------
    data:
        The encoded byte stream.
    count:
        Optional expected number of values; a mismatch raises
        :class:`~repro.errors.CodecError`.
    """
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else np.asarray(data, dtype=np.uint8)
    if buf.size == 0:
        result = np.empty(0, dtype=np.int64)
        if count not in (None, 0):
            raise CodecError(f"expected {count} values, stream is empty")
        return result
    is_last = (buf & 0x80) == 0
    n_values = int(np.count_nonzero(is_last))
    if not is_last[-1]:
        raise CodecError("truncated varint stream (continuation bit set on final byte)")
    if count is not None and n_values != count:
        raise CodecError(f"expected {count} values, stream holds {n_values}")
    # Value id of each byte = number of completed values before it.
    value_id = np.zeros(buf.size, dtype=np.int64)
    np.cumsum(is_last[:-1], out=value_id[1:])
    # Byte position within its value = offset from the value's first byte.
    ends = np.flatnonzero(is_last)
    starts = np.empty(n_values, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    within = np.arange(buf.size, dtype=np.int64) - starts[value_id]
    if (within >= _MAX_BYTES).any():
        raise CodecError("varint value exceeds 63-bit limit")
    payload = (buf & 0x7F).astype(np.uint64) << (7 * within).astype(np.uint64)
    result = np.zeros(n_values, dtype=np.uint64)
    np.add.at(result, value_id, payload)
    out = result.astype(np.int64)
    if (out < 0).any():
        raise CodecError("decoded value overflows int64")
    return out

"""Compressed adjacency storage — a laptop-scale Boldi–Vigna analogue.

The paper manages its 118 M-page graphs with the Java WebGraph compression
framework [10].  This package reproduces the central ideas in pure Python +
NumPy: successor lists are delta-gap transformed (:mod:`repro.webgraph.gaps`)
and entropy-coded with LEB128 varints (:mod:`repro.webgraph.varint`);
:class:`~repro.webgraph.compressed.CompressedGraph` wraps the encoded byte
stream with sequential and random access plus round-trip conversion to
:class:`~repro.graph.pagegraph.PageGraph`.
"""

from .varint import encode_varints, decode_varints, varint_length
from .gaps import to_gaps, from_gaps
from .intervals import split_intervals, merge_intervals, encode_row, decode_row
from .compressed import CompressedGraph, CompressionStats
from .interval_graph import IntervalCompressedGraph, compare_codecs
from .store import ShardInfo, ShardedGraphStore, ShardedStoreWriter

__all__ = [
    "ShardInfo",
    "ShardedGraphStore",
    "ShardedStoreWriter",
    "encode_varints",
    "decode_varints",
    "varint_length",
    "to_gaps",
    "from_gaps",
    "split_intervals",
    "merge_intervals",
    "encode_row",
    "decode_row",
    "CompressedGraph",
    "CompressionStats",
    "IntervalCompressedGraph",
    "compare_codecs",
]

"""Compressed in-memory graph: gap transform + varint coding + offsets.

:class:`CompressedGraph` stores a directed graph as a single varint byte
stream of gap-transformed successor lists plus a per-node byte-offset
index, mirroring the layout of the Boldi–Vigna WebGraph framework the paper
used as its data-management substrate.  Typical web graphs compress to
~30–50 % of their CSR int64 footprint with this scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import CodecError, NodeIndexError
from ..graph.pagegraph import PageGraph
from .gaps import from_gaps, to_gaps
from .varint import decode_varints, encode_varints, varint_length

__all__ = ["CompressedGraph", "CompressionStats"]

_FILE_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class CompressionStats:
    """Size accounting of a :class:`CompressedGraph`."""

    n_nodes: int
    n_edges: int
    payload_bytes: int
    offset_bytes: int
    csr_bytes: int

    @property
    def total_bytes(self) -> int:
        """Payload plus offset index."""
        return self.payload_bytes + self.offset_bytes

    @property
    def ratio(self) -> float:
        """Compressed size / CSR int64 size (lower is better)."""
        return self.total_bytes / self.csr_bytes if self.csr_bytes else 0.0

    @property
    def bits_per_edge(self) -> float:
        """Payload bits per edge (the WebGraph headline metric)."""
        return 8.0 * self.payload_bytes / self.n_edges if self.n_edges else 0.0


class CompressedGraph:
    """Gap + varint compressed directed graph with random row access."""

    __slots__ = ("_payload", "_offsets", "_counts", "_n_nodes", "_n_edges")

    def __init__(
        self,
        payload: bytes,
        offsets: np.ndarray,
        counts: np.ndarray,
        n_nodes: int,
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        n_nodes = int(n_nodes)
        if offsets.shape != (n_nodes + 1,):
            raise CodecError(
                f"offsets must have length n_nodes + 1 = {n_nodes + 1}, got {offsets.size}"
            )
        if counts.shape != (n_nodes,):
            raise CodecError(f"counts must have length {n_nodes}, got {counts.size}")
        if offsets[0] != 0 or offsets[-1] != len(payload):
            raise CodecError("offsets must span the payload exactly")
        self._payload = bytes(payload)
        offsets.setflags(write=False)
        counts.setflags(write=False)
        self._offsets = offsets
        self._counts = counts
        self._n_nodes = n_nodes
        self._n_edges = int(counts.sum())

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_pagegraph(cls, graph: PageGraph) -> "CompressedGraph":
        """Compress a :class:`PageGraph` (single vectorized pass)."""
        gaps = to_gaps(graph.indptr, graph.indices)
        counts = graph.out_degrees.copy()
        # Encode the full stream once, then compute per-node byte offsets
        # from the per-value varint lengths (vectorized).
        payload = encode_varints(gaps)
        lengths = varint_length(gaps) if gaps.size else np.empty(0, dtype=np.int64)
        per_node_bytes = np.zeros(graph.n_nodes, dtype=np.int64)
        if gaps.size:
            row_of = np.repeat(np.arange(graph.n_nodes, dtype=np.int64), counts)
            np.add.at(per_node_bytes, row_of, lengths)
        offsets = np.zeros(graph.n_nodes + 1, dtype=np.int64)
        np.cumsum(per_node_bytes, out=offsets[1:])
        return cls(payload, offsets, counts, graph.n_nodes)

    def to_pagegraph(self) -> PageGraph:
        """Decompress back to CSR form (exact round trip)."""
        indptr = np.zeros(self._n_nodes + 1, dtype=np.int64)
        np.cumsum(self._counts, out=indptr[1:])
        gaps = decode_varints(self._payload, count=self._n_edges)
        indices = from_gaps(indptr, gaps)
        return PageGraph(indptr, indices, self._n_nodes)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return self._n_edges

    def out_degree(self, node: int) -> int:
        """Out-degree of ``node`` (O(1))."""
        node = int(node)
        if not 0 <= node < self._n_nodes:
            raise NodeIndexError(node, self._n_nodes)
        return int(self._counts[node])

    def successors(self, node: int) -> np.ndarray:
        """Decode the successor list of one node (random access).

        Only the node's own byte slice is decoded — O(out-degree), not
        O(edges) — which is the property that made WebGraph usable as a
        rank-computation substrate.
        """
        node = int(node)
        if not 0 <= node < self._n_nodes:
            raise NodeIndexError(node, self._n_nodes)
        lo, hi = int(self._offsets[node]), int(self._offsets[node + 1])
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        gaps = decode_varints(self._payload[lo:hi], count=int(self._counts[node]))
        # Reconstruct absolutes: first is zigzag-relative to node, rest are
        # +1 gaps.
        local_indptr = np.array([0, gaps.size], dtype=np.int64)
        # from_gaps expects row ids starting at 0; offset afterwards.
        values = from_gaps(local_indptr, gaps)
        # from_gaps decoded first entry relative to row id 0; shift by node.
        values += node
        return values

    def stats(self) -> CompressionStats:
        """Size accounting relative to the CSR int64 representation."""
        csr_bytes = 8 * (self._n_nodes + 1) + 8 * self._n_edges
        return CompressionStats(
            n_nodes=self._n_nodes,
            n_edges=self._n_edges,
            payload_bytes=len(self._payload),
            offset_bytes=int(self._offsets.nbytes),
            csr_bytes=csr_bytes,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the compressed graph to an ``.npz`` container."""
        np.savez_compressed(
            path,
            format_version=np.int64(_FILE_FORMAT_VERSION),
            n_nodes=np.int64(self._n_nodes),
            payload=np.frombuffer(self._payload, dtype=np.uint8),
            offsets=self._offsets,
            counts=self._counts,
        )

    @classmethod
    def load(cls, path: str | Path) -> "CompressedGraph":
        """Load a compressed graph written by :meth:`save`."""
        with np.load(path) as data:
            try:
                version = int(data["format_version"])
                n_nodes = int(data["n_nodes"])
                payload = data["payload"].tobytes()
                offsets = data["offsets"]
                counts = data["counts"]
            except KeyError as exc:
                raise CodecError(f"{path}: missing field {exc}") from exc
        if version != _FILE_FORMAT_VERSION:
            raise CodecError(f"{path}: unsupported format version {version}")
        return cls(payload, offsets, counts, n_nodes)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"CompressedGraph(n_nodes={self._n_nodes}, n_edges={self._n_edges}, "
            f"bits_per_edge={stats.bits_per_edge:.2f})"
        )

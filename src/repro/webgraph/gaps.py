"""Delta-gap transform for sorted successor lists.

WebGraph's key observation: successor lists of web pages are sorted and
locally clustered, so storing *gaps* between consecutive successors (and the
first successor relative to the owning node) yields small integers that
varint-code compactly.  We use the signed-first-gap scheme: the first entry
of row ``i`` is stored as ``zigzag(first - i)`` and subsequent entries as
``gap - 1`` (gaps are >= 1 in a strictly increasing list).
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

__all__ = ["to_gaps", "from_gaps", "zigzag_encode", "zigzag_decode"]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed ints to unsigned: 0,-1,1,-2,2 → 0,1,2,3,4."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.int64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.int64)
    return ((values >> 1) ^ -(values & 1)).astype(np.int64)


def to_gaps(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Transform CSR successor lists to the gap domain.

    Parameters
    ----------
    indptr, indices:
        CSR arrays with sorted, strictly increasing rows (the
        :class:`~repro.graph.pagegraph.PageGraph` invariant).

    Returns
    -------
    numpy.ndarray
        ``int64`` array, same length as ``indices``: per-row first entry is
        ``zigzag(indices[start] - row)``, the rest are ``diff - 1``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    n = indptr.size - 1
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    gaps = np.empty(indices.size, dtype=np.int64)
    # Default: gap to the previous entry, minus one.
    gaps[1:] = indices[1:] - indices[:-1] - 1
    gaps[0] = 0  # placeholder, overwritten below (row start)
    starts = indptr[:-1][np.diff(indptr) > 0]
    gaps[starts] = zigzag_encode(indices[starts] - row_of[starts])
    if (np.delete(gaps, starts) < 0).any():
        raise CodecError("successor lists must be strictly increasing within rows")
    return gaps


def from_gaps(indptr: np.ndarray, gaps: np.ndarray) -> np.ndarray:
    """Invert :func:`to_gaps`, reconstructing the CSR ``indices`` array."""
    indptr = np.asarray(indptr, dtype=np.int64)
    gaps = np.asarray(gaps, dtype=np.int64)
    if gaps.size == 0:
        return np.empty(0, dtype=np.int64)
    n = indptr.size - 1
    counts = np.diff(indptr)
    row_of = np.repeat(np.arange(n, dtype=np.int64), counts)
    starts = indptr[:-1][counts > 0]
    # Rebuild per-row: value[k] = first + sum(gap_j + 1 for j in 1..k).
    addends = gaps + 1
    addends[starts] = zigzag_decode(gaps[starts]) + row_of[starts]
    # Segmented cumulative sum: global cumsum minus the cumsum at each row
    # start (vectorized segment trick).  Each position's row start is found
    # by a maximum-accumulate over start positions.
    csum = np.cumsum(addends)
    base_at = np.zeros(gaps.size, dtype=np.int64)
    base_at[starts] = starts
    np.maximum.accumulate(base_at, out=base_at)
    indices = csum - csum[base_at] + addends[base_at]
    return indices.astype(np.int64)

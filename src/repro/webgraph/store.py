"""Sharded on-disk graph store — row-block shards of a compressed CSR.

The paper's crawls (18–118M pages, Table 1) do not fit a single in-memory
CSR, so the source graph lives on disk as a *manifest + N row-block shards*.
Each shard holds a contiguous slice of rows encoded with the same machinery
as :class:`~repro.webgraph.compressed.CompressedGraph`: successor lists are
delta-gap transformed (:mod:`repro.webgraph.gaps`, first entry relative to
the *global* row id so locality survives sharding) and LEB128 varint coded
(:mod:`repro.webgraph.varint`).  Every shard is decodable independently —
``load_block(i)`` touches exactly one file — which is what lets the blocked
operator and the shm workers stream the fixpoint without ever assembling the
full matrix.

Durability reuses the snapshot-store idioms: shards are published with
``atomic_savez`` (tmp + fsync + ``os.replace``), the manifest carries a
sha256 digest per shard, and a digest or format mismatch on load is rejected
with a ``repro_store_rejects_total`` counter and a typed error rather than
silently serving torn bytes.

Stores come in two flavours:

``weighted``
    Each shard carries a ``float64`` weight per edge (e.g. the rows of a
    row-stochastic source matrix ``T'``).
``unweighted``
    Structure only; blocks decode with uniform ``1/outdeg`` row weights so
    the store is directly usable as a random-walk transition operand.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np
import scipy.sparse as sp

from ..errors import CodecError, GraphError
from ..logging_utils import get_logger
from .gaps import from_gaps, to_gaps, zigzag_decode, zigzag_encode
from .varint import decode_varints, encode_varints

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graph.pagegraph import PageGraph

__all__ = [
    "ShardInfo",
    "ShardedGraphStore",
    "ShardedStoreWriter",
    "DEFAULT_BLOCK_SIZE",
    "STORE_FORMAT_VERSION",
]

log = get_logger("webgraph.store")

STORE_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_BLOCK_SIZE = 65_536

REJECTS_METRIC = "repro_store_rejects_total"


def _record_reject(reason: str) -> None:
    from ..observability.metrics import get_registry

    get_registry().counter(
        REJECTS_METRIC,
        "Sharded-store blocks rejected on load, by reason.",
        labelnames=("reason",),
    ).labels(reason=reason).inc()


@dataclass(frozen=True, slots=True)
class ShardInfo:
    """Manifest record for one row-block shard."""

    block_id: int
    row_start: int
    row_stop: int
    n_edges: int
    filename: str
    digest: str
    payload_bytes: int

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    def to_json(self) -> dict:
        return {
            "block_id": self.block_id,
            "row_start": self.row_start,
            "row_stop": self.row_stop,
            "n_edges": self.n_edges,
            "filename": self.filename,
            "digest": self.digest,
            "payload_bytes": self.payload_bytes,
        }

    @staticmethod
    def from_json(record: dict) -> "ShardInfo":
        try:
            return ShardInfo(
                block_id=int(record["block_id"]),
                row_start=int(record["row_start"]),
                row_stop=int(record["row_stop"]),
                n_edges=int(record["n_edges"]),
                filename=str(record["filename"]),
                digest=str(record["digest"]),
                payload_bytes=int(record["payload_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed shard record in manifest: {exc}") from exc


def _shard_digest(
    payload: bytes,
    counts: np.ndarray,
    data: np.ndarray | None,
    *,
    row_start: int,
    n_sources: int,
) -> str:
    """sha256 over the encoded shard content plus its placement header."""
    h = hashlib.sha256()
    h.update(f"shard:v{STORE_FORMAT_VERSION}:{row_start}:{n_sources}".encode())
    h.update(payload)
    h.update(np.ascontiguousarray(counts, dtype=np.int64).tobytes())
    if data is not None:
        h.update(np.ascontiguousarray(data, dtype=np.float64).tobytes())
    return h.hexdigest()


def _encode_block(
    local_indptr: np.ndarray, indices: np.ndarray, *, row_start: int
) -> bytes:
    """Gap + varint encode one row block.

    :func:`~repro.webgraph.gaps.to_gaps` stores each row's first successor
    relative to the row id implied by ``indptr`` — which here is the *local*
    id.  Re-basing the first-entry gaps onto the global row id keeps the
    web-graph locality win (successors cluster near their own row) intact
    for every shard, not just the first.
    """
    gaps = to_gaps(local_indptr, indices)
    counts = np.diff(local_indptr)
    starts = local_indptr[:-1][counts > 0]
    if starts.size and row_start:
        gaps[starts] = zigzag_encode(zigzag_decode(gaps[starts]) - row_start)
    return encode_varints(gaps)


def _decode_block(
    payload: bytes | np.ndarray,
    local_indptr: np.ndarray,
    *,
    row_start: int,
    n_edges: int,
) -> np.ndarray:
    """Invert :func:`_encode_block`, returning global column indices."""
    gaps = decode_varints(payload, count=n_edges)
    counts = np.diff(local_indptr)
    starts = local_indptr[:-1][counts > 0]
    if starts.size and row_start:
        gaps = gaps.copy()
        gaps[starts] = zigzag_encode(zigzag_decode(gaps[starts]) + row_start)
    return from_gaps(local_indptr, gaps)


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish a text file with the tmp + fsync + ``os.replace`` pattern."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - tmp already consumed
            pass
        raise


class ShardedStoreWriter:
    """Append row blocks in order, then :meth:`finalize` the manifest.

    Blocks must cover ``[0, n_sources)`` contiguously.  The writer never
    holds more than the block being appended, so converting or generating a
    multi-million-row graph stays O(block) in memory.
    """

    def __init__(
        self,
        directory: str | Path,
        n_sources: int,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        n_sources = int(n_sources)
        block_size = int(block_size)
        if n_sources <= 0:
            raise GraphError(f"store needs at least one source, got {n_sources}")
        if block_size <= 0:
            raise GraphError(f"block_size must be positive, got {block_size}")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._n = n_sources
        self._block_size = block_size
        self._shards: list[ShardInfo] = []
        self._rows_written = 0
        self._edges_written = 0
        self._weighted: bool | None = None
        self._finalized = False

    @property
    def rows_written(self) -> int:
        return self._rows_written

    def append_block(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None = None,
    ) -> ShardInfo:
        """Encode and publish one shard covering the next rows in order.

        ``indptr`` is block-local (``indptr[0] == 0``); ``indices`` are
        global column ids, sorted strictly increasing within each row.
        """
        if self._finalized:
            raise GraphError("writer already finalized")
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 2 or indptr[0] != 0:
            raise GraphError("block indptr must be 1-D, local, and non-empty")
        if (np.diff(indptr) < 0).any():
            raise GraphError("block indptr must be non-decreasing")
        if int(indptr[-1]) != indices.size:
            raise GraphError(
                f"block indptr expects {int(indptr[-1])} edges, got {indices.size}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= self._n):
            raise GraphError(
                f"block column indices must lie in [0, {self._n})"
            )
        n_rows = indptr.size - 1
        row_start = self._rows_written
        row_stop = row_start + n_rows
        if row_stop > self._n:
            raise GraphError(
                f"block rows [{row_start}, {row_stop}) overflow store of "
                f"{self._n} sources"
            )
        weighted = data is not None
        if self._weighted is None:
            self._weighted = weighted
        elif self._weighted != weighted:
            raise GraphError("cannot mix weighted and unweighted blocks")
        if weighted:
            data = np.ascontiguousarray(data, dtype=np.float64)
            if data.shape != indices.shape:
                raise GraphError(
                    f"block data length {data.size} != edge count {indices.size}"
                )

        payload = _encode_block(indptr, indices, row_start=row_start)
        counts = np.diff(indptr)
        digest = _shard_digest(
            payload, counts, data, row_start=row_start, n_sources=self._n
        )
        block_id = len(self._shards)
        filename = f"shard-{block_id:05d}.npz"
        arrays = {
            "format_version": np.int64(STORE_FORMAT_VERSION),
            "row_start": np.int64(row_start),
            "payload": np.frombuffer(payload, dtype=np.uint8),
            "counts": counts,
        }
        if weighted:
            arrays["data"] = data
        from ..resilience.checkpoint import atomic_savez

        atomic_savez(self._dir / filename, **arrays)
        info = ShardInfo(
            block_id=block_id,
            row_start=row_start,
            row_stop=row_stop,
            n_edges=int(indices.size),
            filename=filename,
            digest=digest,
            payload_bytes=len(payload),
        )
        self._shards.append(info)
        self._rows_written = row_stop
        self._edges_written += int(indices.size)
        return info

    def append_matrix(self, matrix: sp.csr_matrix) -> ShardInfo:
        """Append one shard from a CSR slice of shape ``(rows, n_sources)``."""
        block = matrix.tocsr()
        if block.shape[1] != self._n:
            raise GraphError(
                f"block has {block.shape[1]} columns, store expects {self._n}"
            )
        block.sum_duplicates()
        block.sort_indices()
        return self.append_block(
            block.indptr.astype(np.int64),
            block.indices.astype(np.int64),
            block.data.astype(np.float64),
        )

    def finalize(self, *, meta: dict | None = None) -> "ShardedGraphStore":
        """Publish the manifest and reopen the finished store."""
        if self._finalized:
            raise GraphError("writer already finalized")
        if self._rows_written != self._n:
            raise GraphError(
                f"store covers rows [0, {self._rows_written}) but declares "
                f"{self._n} sources"
            )
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "n_sources": self._n,
            "n_edges": self._edges_written,
            "block_size": self._block_size,
            "weighted": bool(self._weighted),
            "meta": dict(meta or {}),
            "shards": [info.to_json() for info in self._shards],
        }
        _atomic_write_text(
            self._dir / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
        )
        self._finalized = True
        return ShardedGraphStore.open(self._dir)


class ShardedGraphStore:
    """Read side of the sharded format: manifest + independently decodable blocks."""

    def __init__(self, directory: Path, manifest: dict, shards: tuple[ShardInfo, ...]):
        self._dir = directory
        self._manifest = manifest
        self._shards = shards
        self._stats: tuple[np.ndarray, np.ndarray] | None = None

    # -- opening ---------------------------------------------------------

    @staticmethod
    def open(directory: str | Path) -> "ShardedGraphStore":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise GraphError(f"no graph-store manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            _record_reject("manifest_unreadable")
            raise CodecError(f"unreadable store manifest {manifest_path}: {exc}") from exc
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            _record_reject("format_version")
            raise CodecError(
                f"store manifest format_version {version!r} unsupported "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        shards = tuple(ShardInfo.from_json(rec) for rec in manifest.get("shards", []))
        n = int(manifest.get("n_sources", 0))
        if n <= 0 or not shards:
            raise CodecError("store manifest declares no sources or no shards")
        cursor = 0
        for info in shards:
            if info.row_start != cursor or info.row_stop <= info.row_start:
                raise CodecError(
                    f"shard {info.block_id} covers rows "
                    f"[{info.row_start}, {info.row_stop}), expected start {cursor}"
                )
            cursor = info.row_stop
        if cursor != n:
            raise CodecError(
                f"shards cover rows [0, {cursor}) but manifest declares {n} sources"
            )
        return ShardedGraphStore(directory, manifest, shards)

    # -- metadata --------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def n_sources(self) -> int:
        return int(self._manifest["n_sources"])

    @property
    def n_edges(self) -> int:
        return int(self._manifest["n_edges"])

    @property
    def n_blocks(self) -> int:
        return len(self._shards)

    @property
    def block_size(self) -> int:
        return int(self._manifest["block_size"])

    @property
    def weighted(self) -> bool:
        return bool(self._manifest["weighted"])

    @property
    def shards(self) -> tuple[ShardInfo, ...]:
        return self._shards

    @property
    def payload_bytes(self) -> int:
        return sum(info.payload_bytes for info in self._shards)

    @property
    def meta(self) -> dict:
        return dict(self._manifest.get("meta", {}))

    # -- block access ----------------------------------------------------

    def load_block(self, block_id: int, *, verify: bool = True) -> sp.csr_matrix:
        """Decode one shard to a CSR block of shape ``(n_rows, n_sources)``.

        Touches exactly one file; with ``verify`` (the default) the payload
        digest is recomputed and a mismatch raises :class:`CodecError` after
        bumping ``repro_store_rejects_total`` — same contract as the
        serving snapshot store.
        """
        if not 0 <= block_id < len(self._shards):
            raise GraphError(
                f"block {block_id} out of range for store with "
                f"{len(self._shards)} blocks"
            )
        info = self._shards[block_id]
        path = self._dir / info.filename
        try:
            with np.load(path) as archive:
                version = int(archive["format_version"])
                row_start = int(archive["row_start"])
                payload = archive["payload"]
                counts = archive["counts"].astype(np.int64)
                data = archive["data"] if "data" in archive.files else None
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            _record_reject("unreadable")
            raise CodecError(f"unreadable shard {path}: {exc}") from exc
        if version != STORE_FORMAT_VERSION or row_start != info.row_start:
            _record_reject("format_version")
            raise CodecError(
                f"shard {path} header mismatch (version={version}, "
                f"row_start={row_start})"
            )
        if counts.size != info.n_rows or int(counts.sum()) != info.n_edges:
            _record_reject("structure")
            raise CodecError(f"shard {path} row/edge counts disagree with manifest")
        if verify:
            digest = _shard_digest(
                payload.tobytes(), counts, data,
                row_start=info.row_start, n_sources=self.n_sources,
            )
            if digest != info.digest:
                _record_reject("digest")
                log.warning("rejecting shard %s: payload digest mismatch", path)
                raise CodecError(f"shard {path} failed digest verification")
        local_indptr = np.zeros(info.n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=local_indptr[1:])
        indices = _decode_block(
            payload, local_indptr, row_start=info.row_start, n_edges=info.n_edges
        )
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_sources):
            _record_reject("structure")
            raise CodecError(f"shard {path} decoded out-of-range column indices")
        if data is None:
            # Unweighted store: uniform random-walk weights, dangling rows
            # stay all-zero (handled downstream by the dangling mask).
            with np.errstate(divide="ignore"):
                inv = np.where(counts > 0, 1.0 / counts, 0.0)
            data = np.repeat(inv, counts)
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.size != info.n_edges:
                _record_reject("structure")
                raise CodecError(f"shard {path} weight count disagrees with manifest")
        return sp.csr_matrix(
            (data, indices, local_indptr), shape=(info.n_rows, self.n_sources)
        )

    def iter_blocks(
        self, *, verify: bool = True
    ) -> Iterator[tuple[ShardInfo, sp.csr_matrix]]:
        for info in self._shards:
            yield info, self.load_block(info.block_id, verify=verify)

    def verify(self) -> None:
        """Decode and digest-check every shard; raises on the first bad one."""
        for _info, _block in self.iter_blocks(verify=True):
            pass

    # -- whole-graph escapes --------------------------------------------

    def materialize(self) -> sp.csr_matrix:
        """Assemble the full CSR (O(matrix) memory — escape hatch only)."""
        indptr = np.zeros(self.n_sources + 1, dtype=np.int64)
        indices = np.empty(self.n_edges, dtype=np.int64)
        data = np.empty(self.n_edges, dtype=np.float64)
        edge = 0
        for info, block in self.iter_blocks():
            stop = edge + info.n_edges
            indices[edge:stop] = block.indices
            data[edge:stop] = block.data
            indptr[info.row_start + 1 : info.row_stop + 1] = edge + (
                block.indptr[1:].astype(np.int64)
            )
            edge = stop
        return sp.csr_matrix(
            (data, indices, indptr), shape=(self.n_sources, self.n_sources)
        )

    def row_sums(self) -> np.ndarray:
        """Per-row weight sums, computed in one streaming pass and cached."""
        return self._streamed_stats()[0].copy()

    def diagonal(self) -> np.ndarray:
        """Main diagonal, computed in the same streaming pass as row sums."""
        return self._streamed_stats()[1].copy()

    def _streamed_stats(self) -> tuple[np.ndarray, np.ndarray]:
        if self._stats is None:
            sums = np.empty(self.n_sources, dtype=np.float64)
            diag = np.zeros(self.n_sources, dtype=np.float64)
            for info, block in self.iter_blocks():
                sl = slice(info.row_start, info.row_stop)
                sums[sl] = np.asarray(block.sum(axis=1)).ravel()
                rows = np.arange(info.n_rows, dtype=np.int64)
                cols = rows + info.row_start
                # Extract block[r, row_start + r] without fancy CSR indexing:
                # positions where the stored column equals the global row id.
                row_of = np.repeat(rows, np.diff(block.indptr))
                hits = block.indices == cols[row_of]
                if hits.any():
                    np.add.at(diag, row_of[hits] + info.row_start, block.data[hits])
            self._stats = (sums, diag)
        return self._stats

    # -- conversions -----------------------------------------------------

    @staticmethod
    def from_matrix(
        matrix: sp.spmatrix,
        directory: str | Path,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        meta: dict | None = None,
    ) -> "ShardedGraphStore":
        """Shard a square weighted matrix (e.g. a row-stochastic ``T'``)."""
        csr = matrix.tocsr()
        if csr.shape[0] != csr.shape[1]:
            raise GraphError(f"graph store expects a square matrix, got {csr.shape}")
        n = csr.shape[0]
        writer = ShardedStoreWriter(directory, n, block_size=block_size)
        for lo in range(0, n, int(block_size)):
            hi = min(lo + int(block_size), n)
            writer.append_matrix(csr[lo:hi])
        return writer.finalize(meta=meta)

    @staticmethod
    def from_pagegraph(
        graph: "PageGraph",
        directory: str | Path,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        meta: dict | None = None,
    ) -> "ShardedGraphStore":
        """Shard a structure-only graph; blocks decode with uniform weights."""
        indptr = np.asarray(graph.indptr, dtype=np.int64)
        indices = np.asarray(graph.indices, dtype=np.int64)
        n = graph.n_nodes
        writer = ShardedStoreWriter(directory, n, block_size=block_size)
        for lo in range(0, n, int(block_size)):
            hi = min(lo + int(block_size), n)
            local = indptr[lo : hi + 1] - indptr[lo]
            writer.append_block(local, indices[indptr[lo] : indptr[hi]])
        return writer.finalize(meta=meta)

    def describe(self) -> dict:
        """Summary dict for ``repro shard info`` and tests."""
        return {
            "directory": str(self._dir),
            "format_version": STORE_FORMAT_VERSION,
            "n_sources": self.n_sources,
            "n_edges": self.n_edges,
            "n_blocks": self.n_blocks,
            "block_size": self.block_size,
            "weighted": self.weighted,
            "payload_bytes": self.payload_bytes,
            "bits_per_edge": (
                8.0 * self.payload_bytes / self.n_edges if self.n_edges else math.nan
            ),
        }

"""Checkpoint/resume for long solves and pipeline stages.

Two cooperating pieces:

* :class:`SolveCheckpointer` — periodic snapshots of a single iterative
  solve (the iterate vector plus the iteration count), written atomically
  (tmp + ``os.replace``) so a kill mid-write can never leave a torn file.
  Installed via ``RankingParams.checkpoint``; the shared iteration engine
  saves every ``every`` iterations and, when ``resume`` is set, restarts
  from the stored iterate instead of the cold start.
* :class:`PipelineCheckpointer` — per-stage outputs of a
  :class:`~repro.core.pipeline.SpamResilientPipeline` run, keyed on a
  content hash of the inputs (:func:`content_key` over the source-graph
  CSR arrays, seeds, and parameter reprs), so a resumed run skips every
  stage whose inputs are byte-identical.

Checkpoint files are ``.npz`` with a format-version field; a tampered or
truncated checkpoint is *ignored* (with a warning), never trusted — a
bad checkpoint must cost a recompute, not a crash or a wrong σ.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from collections.abc import Mapping, Set
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..logging_utils import get_logger
from ..observability.events import emit as emit_event
from ..observability.metrics import get_registry

__all__ = [
    "content_key",
    "atomic_savez",
    "SolveState",
    "SolveCheckpointer",
    "PipelineCheckpointer",
]

_logger = get_logger(__name__)

_CHECKPOINT_FORMAT_VERSION = 1
_TAG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _record_resume(kind: str) -> None:
    get_registry().counter(
        "repro_checkpoint_resumes_total",
        "Solves/stages resumed from a checkpoint, by kind",
        labelnames=("kind",),
    ).labels(kind=kind).inc()


def content_key(*parts: object) -> str:
    """Deterministic sha256 hex digest of a mixed bag of inputs.

    NumPy arrays hash their raw bytes (plus dtype/shape so reinterpreted
    buffers cannot collide); scipy CSR matrices hash their three arrays;
    mappings and sets are canonicalized (their entries hashed and sorted)
    so two dicts or sets holding the same items produce the same key
    regardless of insertion order — pipeline checkpoints keyed on a
    param dict must not spuriously miss after a reordering; lists and
    tuples recurse element-wise (preserving order) so nested containers
    canonicalize too.  Everything else hashes its ``repr``.
    """
    digest = hashlib.sha256()
    for part in parts:
        _digest_part(digest, part)
    return digest.hexdigest()


def _digest_part(digest, part: object) -> None:
    """Feed one canonicalized part into ``digest`` (see :func:`content_key`)."""
    if hasattr(part, "indptr") and hasattr(part, "indices"):
        digest.update(b"csr:")
        for arr in (part.indptr, part.indices, getattr(part, "data", None)):
            if arr is not None:
                digest.update(content_key(np.asarray(arr)).encode())
        return
    if isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
        return
    if isinstance(part, Mapping):
        digest.update(b"map:")
        for key_hash, value_hash in sorted(
            (content_key(key), content_key(value)) for key, value in part.items()
        ):
            digest.update(key_hash.encode())
            digest.update(value_hash.encode())
        digest.update(b"\x00")
        return
    if isinstance(part, (Set, frozenset)):
        digest.update(b"set:")
        for item_hash in sorted(content_key(item) for item in part):
            digest.update(item_hash.encode())
        digest.update(b"\x00")
        return
    if isinstance(part, (list, tuple)):
        digest.update(b"seq:")
        for item in part:
            _digest_part(digest, item)
        digest.update(b"\x00")
        return
    digest.update(repr(part).encode())
    digest.update(b"\x00")


def atomic_savez(path: Path, **arrays: object) -> None:
    """Write an ``.npz`` so that ``path`` is either absent or complete.

    The tmp + ``os.replace`` publish pattern shared by the checkpointers
    and the serving layer's :class:`~repro.serving.SnapshotStore`: a kill
    mid-write can never leave a torn file under the final name.  The tmp
    file is fsynced before the rename (and the directory after it, where
    the platform allows) so the same holds across a power loss — without
    the fsync, ``os.replace`` could land an empty or partially flushed
    file under the final name once the page cache is gone.  Readers
    still digest-verify on load; the fsync just makes losing the publish
    itself the only remaining failure mode, not serving a torn file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - tmp already consumed
            pass
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir opens
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(dir_fd)


def _load_npz(path: Path, required: tuple[str, ...]) -> dict | None:
    """Load a checkpoint ``.npz``; ``None`` (with a warning) if unusable."""
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            if int(data["format_version"]) != _CHECKPOINT_FORMAT_VERSION:
                raise ValueError(
                    f"format version {int(data['format_version'])}"
                )
            return {key: data[key] for key in required}
    except Exception as exc:  # noqa: BLE001 - any corruption ⇒ recompute
        _logger.warning("ignoring unusable checkpoint %s (%s)", path, exc)
        return None


@dataclass(frozen=True, slots=True)
class SolveState:
    """One solve checkpoint: the iterate and how far the solve had got."""

    x: np.ndarray
    iteration: int
    residual: float


class SolveCheckpointer:
    """Periodic atomic snapshots of an iterative solve, keyed by tag.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created on first save).
    every:
        Save interval in iterations (a final checkpoint is always written
        on convergence regardless of the interval).
    resume:
        When True, :meth:`load` returns stored state; when False it
        always returns ``None`` (fresh start, existing files untouched
        until overwritten).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 25,
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.every = max(int(every), 1)
        self.resume = bool(resume)

    def path_for(self, tag: str) -> Path:
        """Checkpoint file path for one solve tag (sanitized)."""
        safe = _TAG_RE.sub("_", tag) or "solve"
        return self.directory / f"{safe}.ckpt.npz"

    def save(self, tag: str, x: np.ndarray, iteration: int, residual: float) -> None:
        """Write one checkpoint atomically (tmp + rename)."""
        atomic_savez(
            self.path_for(tag),
            format_version=np.int64(_CHECKPOINT_FORMAT_VERSION),
            x=np.asarray(x, dtype=np.float64),
            iteration=np.int64(iteration),
            residual=np.float64(residual),
        )
        emit_event(
            "checkpoint_save", tag=tag, iteration=int(iteration),
            residual=float(residual),
        )

    def maybe_save(
        self, tag: str, x: np.ndarray, iteration: int, residual: float
    ) -> bool:
        """Save if ``iteration`` hits the configured interval."""
        if iteration % self.every != 0:
            return False
        self.save(tag, x, iteration, residual)
        return True

    def load(self, tag: str) -> SolveState | None:
        """The stored state for ``tag`` when resuming; else ``None``."""
        if not self.resume:
            return None
        data = _load_npz(self.path_for(tag), ("x", "iteration", "residual"))
        if data is None:
            return None
        state = SolveState(
            x=np.asarray(data["x"], dtype=np.float64),
            iteration=int(data["iteration"]),
            residual=float(data["residual"]),
        )
        _record_resume("solve")
        emit_event("checkpoint_resume", tag=tag, iteration=state.iteration)
        _logger.info(
            "resuming solve %r from iteration %d (residual %.3e)",
            tag,
            state.iteration,
            state.residual,
        )
        return state

    def clear(self, tag: str) -> None:
        """Delete the checkpoint for one tag, if present."""
        try:
            self.path_for(tag).unlink()
        except FileNotFoundError:
            pass


class PipelineCheckpointer:
    """Content-addressed store of completed pipeline-stage outputs.

    Stage files live under ``directory / <key[:16]> / <stage>.npz`` where
    ``key`` is the :func:`content_key` of the run's inputs — any change
    to the graph, seeds, or parameters changes the key, so stale state
    can never be replayed onto different inputs.
    """

    def __init__(self, directory: str | Path, *, resume: bool = True) -> None:
        self.directory = Path(directory)
        self.resume = bool(resume)

    def _stage_path(self, key: str, stage: str) -> Path:
        safe = _TAG_RE.sub("_", stage) or "stage"
        return self.directory / key[:16] / f"{safe}.npz"

    def solve_checkpointer(
        self, key: str, *, every: int = 25
    ) -> SolveCheckpointer:
        """A :class:`SolveCheckpointer` scoped under this run's key."""
        return SolveCheckpointer(
            self.directory / key[:16] / "solves", every=every, resume=self.resume
        )

    def save_stage(self, key: str, stage: str, **arrays: object) -> None:
        """Persist one completed stage's named arrays atomically."""
        atomic_savez(
            self._stage_path(key, stage),
            format_version=np.int64(_CHECKPOINT_FORMAT_VERSION),
            **arrays,
        )

    def load_stage(
        self, key: str, stage: str, names: tuple[str, ...]
    ) -> dict | None:
        """The stored arrays for one stage when resuming; else ``None``."""
        if not self.resume:
            return None
        data = _load_npz(self._stage_path(key, stage), names)
        if data is not None:
            _record_resume("stage")
            emit_event("stage_resume", stage=stage, key=key[:16])
            _logger.info("resuming pipeline stage %r from checkpoint", stage)
        return data

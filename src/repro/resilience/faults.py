"""Deterministic fault injection for the resilience test/bench suite.

Production code never imports this module; it exists so that tests and
``benchmarks/bench_resilience.py`` can *provoke* every failure mode the
resilience layer claims to survive, reproducibly:

* :class:`FaultyOperator` — wraps any
  :class:`~repro.linalg.operator.TransitionOperator` and, on exactly the
  configured matvec call, either corrupts the output (NaN/Inf written at
  seeded positions — a bit-flip/corrupted-buffer stand-in) or raises
  :class:`~repro.errors.InjectedFaultError` (a crashed kernel stand-in).
  Faults are *transient*: call counting continues across solver attempts,
  so a fallback retry against the same operator sails past the fault —
  exactly the cosmic-ray model the fallback chain is built for.
* :func:`crash_at_iteration` — a per-iteration callback raising
  :class:`SimulatedCrash` at iteration *k*, standing in for a killed
  process in in-process crash/resume tests (`os.kill` without the mess).
* :func:`break_worker_pool` / :func:`_worker_suicide` — kill live pool
  workers with ``os._exit`` so the next task genuinely observes
  ``BrokenProcessPool``.

On top of the solve-path faults sits the **distributed** fault plan for
the replicated serving fleet (gray failures, not clean deaths):

* :class:`FaultRule` — one validated, serializable fault description
  (kind, probability, latency/jitter/stall magnitudes); built directly
  or from a validated :class:`~repro.config.ChaosParams`.
* :class:`FaultPlan` — a named, seeded collection of rules with an
  activation set.  Rules are added up front and toggled while traffic
  runs (the bench's scripted chaos schedule); every draw comes from one
  seeded rng, so a plan replays identically.  Plans serialize to plain
  dicts, which is how the ``chaos`` replica op ships them across
  process boundaries.
* :class:`SocketFaultInjector` — applies a plan at a replica's socket
  layer: added latency, jittered mid-frame stalls, connection resets
  mid-response, and torn (truncated, never newline-terminated) frames.
* :class:`FaultyStore` — wraps a
  :class:`~repro.serving.snapshot.SnapshotStore` (duck-typed, no
  serving import) and injects storage-side faults: ``disk_full`` on
  publish (ENOSPC), ``torn_publish`` (the published file is truncated
  after the write, as a crash mid-``write`` would leave it), and
  ``slow_adopt`` (reads of ``latest``/``load`` are delayed).

Everything is seeded: the same :class:`FaultyOperator` configuration
corrupts the same vector positions every run, and the same
:class:`FaultPlan` fires the same faults on the same draws.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..errors import ConfigError, InjectedFaultError

__all__ = [
    "SimulatedCrash",
    "FaultyOperator",
    "crash_at_iteration",
    "break_worker_pool",
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "SocketFaultInjector",
    "FaultyStore",
]


class SimulatedCrash(InjectedFaultError):
    """Raised by :func:`crash_at_iteration` to emulate a killed solve."""


class FaultyOperator:
    """A transition operator with scheduled, seeded matvec faults.

    Parameters
    ----------
    base:
        The real operator; all protocol calls delegate to it.
    corrupt_at_call:
        1-based matvec call on which the returned vector is corrupted
        (``None`` disables).
    fail_at_call:
        1-based matvec call which raises
        :class:`~repro.errors.InjectedFaultError` (``None`` disables).
    corrupt_value:
        What to write at the corrupted positions (default NaN).
    n_corrupt:
        How many positions to corrupt (chosen by the seeded rng).
    seed:
        Seed for position choice — identical seeds corrupt identical
        positions.
    """

    def __init__(
        self,
        base,
        *,
        corrupt_at_call: int | None = None,
        fail_at_call: int | None = None,
        corrupt_value: float = float("nan"),
        n_corrupt: int = 1,
        seed: int = 0,
    ) -> None:
        self._base = base
        self._corrupt_at = corrupt_at_call
        self._fail_at = fail_at_call
        self._corrupt_value = float(corrupt_value)
        self._n_corrupt = max(int(n_corrupt), 1)
        self._rng = np.random.default_rng(seed)
        self.calls = 0
        self.faults_fired = 0

    @property
    def n(self) -> int:
        """Operator order (delegated)."""
        return self._base.n

    @property
    def kernel(self) -> str:
        """The base operator's kernel name (delegated)."""
        return self._base.kernel

    @property
    def matrix(self):
        """The base operator's explicit CSR (faults apply to matvecs only)."""
        return self._base.matrix

    @property
    def dangling_mask(self) -> np.ndarray:
        """The base operator's dangling mask (delegated)."""
        return self._base.dangling_mask

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Delegate to the base matvec, injecting the scheduled fault."""
        self.calls += 1
        if self._fail_at is not None and self.calls == self._fail_at:
            self.faults_fired += 1
            raise InjectedFaultError(
                f"injected matvec failure on call {self.calls}"
            )
        y = self._base.rmatvec(x)
        if self._corrupt_at is not None and self.calls == self._corrupt_at:
            self.faults_fired += 1
            y = np.array(y, dtype=np.float64, copy=True)
            where = self._rng.choice(
                y.size, size=min(self._n_corrupt, y.size), replace=False
            )
            y[where] = self._corrupt_value
        return y

    def materialize(self):
        """The base operator's explicit matrix (faults apply to matvecs only)."""
        return self._base.materialize()

    def close(self) -> None:
        """Delegate resource release to the base operator."""
        self._base.close()

    def __repr__(self) -> str:
        return (
            f"FaultyOperator(n={self.n}, calls={self.calls}, "
            f"corrupt_at={self._corrupt_at}, fail_at={self._fail_at})"
        )


def crash_at_iteration(
    k: int, *, action: Callable[[], None] | None = None
) -> Callable[[int, float], None]:
    """A solver ``callback`` that dies at iteration ``k``.

    ``action`` runs first when given (e.g. ``lambda: os._exit(3)`` for a
    real process kill in a subprocess harness); otherwise — and for the
    in-process tests — :class:`SimulatedCrash` is raised.
    """
    k = int(k)

    def _callback(iteration: int, residual: float) -> None:
        if iteration == k:
            if action is not None:
                action()
            raise SimulatedCrash(f"simulated crash at iteration {iteration}")

    return _callback


def _worker_suicide() -> None:
    """Pool task that kills its worker process outright (not an exception)."""
    os._exit(1)


#: Fault kinds the distributed plan understands.  The first four apply
#: at a replica's socket layer, the last three at the snapshot store.
FAULT_KINDS: tuple[str, ...] = (
    "latency",       # delay the whole response frame
    "stall",         # send half the frame, stall, send the rest
    "reset",         # hard connection reset mid-response
    "torn",          # truncated frame, then a clean close
    "slow_adopt",    # delay snapshot-store reads (latest/load)
    "torn_publish",  # truncate the snapshot file after publishing it
    "disk_full",     # publish raises ENOSPC
)


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One serializable fault description inside a :class:`FaultPlan`.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Per-draw chance the rule fires while active (1.0 = always).
    latency_seconds, jitter_seconds:
        Added delay: fixed part plus a seeded uniform jitter draw.
    stall_seconds:
        Mid-frame stall length (``stall`` kind).
    cut_fraction:
        Fraction of the frame written before a ``reset``/``torn`` cut.
    """

    kind: str
    probability: float = 1.0
    latency_seconds: float = 0.0
    jitter_seconds: float = 0.0
    stall_seconds: float = 0.05
    cut_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        probability = float(self.probability)
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"probability must lie in [0, 1], got {probability!r}"
            )
        object.__setattr__(self, "probability", probability)
        for name in ("latency_seconds", "jitter_seconds", "stall_seconds"):
            value = float(getattr(self, name))
            if value < 0.0:
                raise ConfigError(f"{name} must be >= 0, got {value!r}")
            object.__setattr__(self, name, value)
        cut = float(self.cut_fraction)
        if not 0.0 < cut <= 1.0:
            raise ConfigError(f"cut_fraction must lie in (0, 1], got {cut!r}")
        object.__setattr__(self, "cut_fraction", cut)

    @classmethod
    def from_params(cls, kind: str, params) -> "FaultRule":
        """Build a rule of ``kind`` from a validated ``ChaosParams``."""
        if kind in ("reset", "torn"):
            probability = (
                params.reset_probability
                if kind == "reset"
                else params.torn_probability
            )
        else:
            probability = 1.0
        return cls(
            kind=kind,
            probability=probability,
            latency_seconds=(
                params.adoption_delay_seconds
                if kind == "slow_adopt"
                else params.latency_seconds
            ),
            jitter_seconds=params.jitter_seconds,
            stall_seconds=params.stall_seconds or 0.05,
            cut_fraction=params.cut_fraction,
        )

    def to_config(self) -> dict:
        """Plain-dict form (JSON-safe, crosses the replica wire)."""
        return {
            "kind": self.kind,
            "probability": self.probability,
            "latency_seconds": self.latency_seconds,
            "jitter_seconds": self.jitter_seconds,
            "stall_seconds": self.stall_seconds,
            "cut_fraction": self.cut_fraction,
        }

    @classmethod
    def from_config(cls, config: Mapping) -> "FaultRule":
        """Inverse of :meth:`to_config` (unknown keys rejected)."""
        allowed = {
            "kind", "probability", "latency_seconds", "jitter_seconds",
            "stall_seconds", "cut_fraction",
        }
        unknown = set(config) - allowed
        if unknown:
            raise ConfigError(
                f"unknown FaultRule field(s): {sorted(unknown)}"
            )
        return cls(**dict(config))


class FaultPlan:
    """A seeded, named set of fault rules with a runtime activation set.

    Rules are registered (usually all up front) and then toggled with
    :meth:`activate` / :meth:`deactivate` while traffic runs — that is
    the whole chaos schedule mechanism: the bench flips named rules at
    scripted points in the load.  Draw order is the only source of
    randomness and comes from one seeded generator, so a plan replays
    identically for identical call sequences.

    Thread-safe; replica handler threads and the poll loop share one
    plan.
    """

    def __init__(
        self,
        rules: Mapping[str, FaultRule] | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, FaultRule] = {}
        self._active: set[str] = set()
        self._rng = np.random.default_rng(int(seed))
        self.seed = int(seed)
        self.fired: dict[str, int] = {}
        for name, rule in (rules or {}).items():
            self.add(name, rule)

    def add(self, name: str, rule: FaultRule) -> "FaultPlan":
        """Register (or replace) one named rule; returns self for chaining."""
        if not isinstance(rule, FaultRule):
            raise ConfigError(
                f"rule {name!r} must be a FaultRule, got {type(rule).__name__}"
            )
        with self._lock:
            self._rules[str(name)] = rule
            self.fired.setdefault(str(name), 0)
        return self

    def activate(self, *names: str) -> "FaultPlan":
        """Turn the named rules on (unknown names are an error)."""
        with self._lock:
            for name in names:
                if name not in self._rules:
                    raise ConfigError(
                        f"unknown fault rule {name!r} "
                        f"(have {sorted(self._rules)})"
                    )
                self._active.add(name)
        return self

    def deactivate(self, *names: str) -> "FaultPlan":
        """Turn the named rules off (missing names are ignored)."""
        with self._lock:
            for name in names:
                self._active.discard(name)
        return self

    def reset(self) -> None:
        """Deactivate everything (rules and counters are kept)."""
        with self._lock:
            self._active.clear()

    def active(self) -> tuple[str, ...]:
        """Names of the currently active rules, sorted."""
        with self._lock:
            return tuple(sorted(self._active))

    def draw(self, kind: str) -> FaultRule | None:
        """The active rule of ``kind`` that fires on this draw, if any.

        Consumes one rng draw per active rule of the kind (whether or
        not it fires), keeping replay deterministic.
        """
        if kind not in FAULT_KINDS:
            raise ConfigError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        with self._lock:
            fired: FaultRule | None = None
            for name in sorted(self._active):
                rule = self._rules[name]
                if rule.kind != kind:
                    continue
                roll = float(self._rng.random())
                if fired is None and roll < rule.probability:
                    fired = rule
                    self.fired[name] = self.fired.get(name, 0) + 1
            return fired

    def delay(self, rule: FaultRule) -> float:
        """One latency draw for ``rule``: fixed part + seeded jitter."""
        with self._lock:
            jitter = (
                float(self._rng.random()) * rule.jitter_seconds
                if rule.jitter_seconds > 0.0
                else 0.0
            )
        return rule.latency_seconds + jitter

    # -- wire form --------------------------------------------------------
    def describe(self) -> dict:
        """Health-document form: rules, activation set, fired counts."""
        with self._lock:
            return {
                "rules": {
                    name: rule.to_config()
                    for name, rule in sorted(self._rules.items())
                },
                "active": sorted(self._active),
                "fired": dict(sorted(self.fired.items())),
            }

    def apply_config(self, config: Mapping) -> dict:
        """Apply one ``chaos`` op payload: add/activate/deactivate/reset.

        Accepted keys: ``rules`` (name → rule dict), ``activate`` and
        ``deactivate`` (name lists), ``reset`` (bool, applied first).
        Returns :meth:`describe` after the change.
        """
        allowed = {"rules", "activate", "deactivate", "reset"}
        unknown = set(config) - allowed
        if unknown:
            raise ConfigError(f"unknown chaos key(s): {sorted(unknown)}")
        if config.get("reset"):
            self.reset()
        for name, rule in dict(config.get("rules") or {}).items():
            self.add(name, FaultRule.from_config(rule))
        self.activate(*[str(n) for n in config.get("activate") or ()])
        self.deactivate(*[str(n) for n in config.get("deactivate") or ()])
        return self.describe()


class SocketFaultInjector:
    """Applies a :class:`FaultPlan` to outgoing response frames.

    The replica handler routes every response through :meth:`send`,
    which either writes the frame (possibly delayed or stalled) and
    returns ``True``, or cuts the connection mid-frame (reset / torn
    frame) and returns ``False`` so the handler drops the client.
    At most one fault applies per frame, precedence
    ``reset > torn > stall > latency``.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep

    def send(self, wfile, frame: bytes, connection=None) -> bool:
        """Write ``frame``, applying at most one active fault."""
        rule = self.plan.draw("reset")
        if rule is not None:
            cut = max(int(len(frame) * rule.cut_fraction), 1)
            try:
                wfile.write(frame[:cut])
                wfile.flush()
            except OSError:
                pass
            if connection is not None:
                # SO_LINGER(on, 0) turns close() into an RST — the
                # client sees a genuine connection reset, not a FIN.
                import socket as _socket
                import struct as _struct

                try:
                    connection.setsockopt(
                        _socket.SOL_SOCKET,
                        _socket.SO_LINGER,
                        _struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
            return False
        rule = self.plan.draw("torn")
        if rule is not None:
            cut = max(int(len(frame) * rule.cut_fraction), 1)
            # Never include the trailing newline: the client must see a
            # frame that ends mid-payload, exactly like a torn write.
            cut = min(cut, len(frame) - 1)
            try:
                wfile.write(frame[:cut])
                wfile.flush()
            except OSError:
                pass
            return False
        rule = self.plan.draw("stall")
        if rule is not None:
            half = max(len(frame) // 2, 1)
            wfile.write(frame[:half])
            wfile.flush()
            self._sleep(rule.stall_seconds)
            wfile.write(frame[half:])
            wfile.flush()
            return True
        rule = self.plan.draw("latency")
        if rule is not None:
            self._sleep(self.plan.delay(rule))
        wfile.write(frame)
        wfile.flush()
        return True


class FaultyStore:
    """A snapshot store wrapper with plan-scheduled storage faults.

    Duck-typed over any :class:`~repro.serving.snapshot.SnapshotStore`-
    shaped object (everything not intercepted delegates), so it slots
    under a publisher :class:`~repro.serving.RankingService` or a
    replica :class:`~repro.serving.fleet.SnapshotFollower` unchanged:

    * ``disk_full`` — :meth:`publish` raises ``OSError(ENOSPC)`` before
      touching the directory (the full-disk publish failure path);
    * ``torn_publish`` — the publish succeeds, then the written file is
      truncated in place, leaving exactly what a crash mid-write leaves
      (the store's digest verification must reject it on load);
    * ``slow_adopt`` — ``latest``/``load`` sleep a plan-drawn delay
      first (a stalling disk / slow NFS mount stand-in).
    """

    def __init__(
        self,
        base,
        plan: FaultPlan | None = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._base = base
        self.plan = plan if plan is not None else FaultPlan()
        self._sleep = sleep

    def publish(self, **kwargs):
        """Publish through the base store, injecting storage faults."""
        if self.plan.draw("disk_full") is not None:
            raise OSError(
                errno.ENOSPC, "injected disk-full: no space left on device"
            )
        tear = self.plan.draw("torn_publish")
        snapshot = self._base.publish(**kwargs)
        if tear is not None:
            path = self._base.path_for(snapshot.version)
            data = path.read_bytes()
            cut = max(int(len(data) * tear.cut_fraction), 1)
            path.write_bytes(data[:cut])
        return snapshot

    def latest(self, **kwargs):
        """Delegate ``latest``, after any active ``slow_adopt`` delay."""
        rule = self.plan.draw("slow_adopt")
        if rule is not None:
            self._sleep(self.plan.delay(rule))
        return self._base.latest(**kwargs)

    def load(self, *args, **kwargs):
        """Delegate ``load``, after any active ``slow_adopt`` delay."""
        rule = self.plan.draw("slow_adopt")
        if rule is not None:
            self._sleep(self.plan.delay(rule))
        return self._base.load(*args, **kwargs)

    def __getattr__(self, name: str):
        return getattr(self._base, name)

    def __repr__(self) -> str:
        return f"FaultyStore({self._base!r}, active={self.plan.active()})"


def break_worker_pool(pool, *, n_kills: int = 1, wait: bool = True) -> None:
    """Kill ``n_kills`` live workers of a pool so its next use breaks.

    Accepts a :class:`~repro.parallel.executor.WorkerPool` (or anything
    with ``submit``).  With ``wait`` (the default) each suicide future is
    awaited, which blocks until the executor has actually observed the
    worker death and marked itself broken — without it the next batch
    can race the death notice and succeed on the surviving workers.
    """
    for _ in range(max(int(n_kills), 1)):
        try:
            future = pool.submit(_worker_suicide)
        except Exception:  # noqa: BLE001 - pool may already be broken
            return
        if wait:
            try:
                future.result(timeout=30)
            except Exception:  # noqa: BLE001 - BrokenProcessPool expected
                pass

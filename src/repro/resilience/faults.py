"""Deterministic fault injection for the resilience test/bench suite.

Production code never imports this module; it exists so that tests and
``benchmarks/bench_resilience.py`` can *provoke* every failure mode the
resilience layer claims to survive, reproducibly:

* :class:`FaultyOperator` — wraps any
  :class:`~repro.linalg.operator.TransitionOperator` and, on exactly the
  configured matvec call, either corrupts the output (NaN/Inf written at
  seeded positions — a bit-flip/corrupted-buffer stand-in) or raises
  :class:`~repro.errors.InjectedFaultError` (a crashed kernel stand-in).
  Faults are *transient*: call counting continues across solver attempts,
  so a fallback retry against the same operator sails past the fault —
  exactly the cosmic-ray model the fallback chain is built for.
* :func:`crash_at_iteration` — a per-iteration callback raising
  :class:`SimulatedCrash` at iteration *k*, standing in for a killed
  process in in-process crash/resume tests (`os.kill` without the mess).
* :func:`break_worker_pool` / :func:`_worker_suicide` — kill live pool
  workers with ``os._exit`` so the next task genuinely observes
  ``BrokenProcessPool``.

Everything is seeded: the same :class:`FaultyOperator` configuration
corrupts the same vector positions every run.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from ..errors import InjectedFaultError

__all__ = [
    "SimulatedCrash",
    "FaultyOperator",
    "crash_at_iteration",
    "break_worker_pool",
]


class SimulatedCrash(InjectedFaultError):
    """Raised by :func:`crash_at_iteration` to emulate a killed solve."""


class FaultyOperator:
    """A transition operator with scheduled, seeded matvec faults.

    Parameters
    ----------
    base:
        The real operator; all protocol calls delegate to it.
    corrupt_at_call:
        1-based matvec call on which the returned vector is corrupted
        (``None`` disables).
    fail_at_call:
        1-based matvec call which raises
        :class:`~repro.errors.InjectedFaultError` (``None`` disables).
    corrupt_value:
        What to write at the corrupted positions (default NaN).
    n_corrupt:
        How many positions to corrupt (chosen by the seeded rng).
    seed:
        Seed for position choice — identical seeds corrupt identical
        positions.
    """

    def __init__(
        self,
        base,
        *,
        corrupt_at_call: int | None = None,
        fail_at_call: int | None = None,
        corrupt_value: float = float("nan"),
        n_corrupt: int = 1,
        seed: int = 0,
    ) -> None:
        self._base = base
        self._corrupt_at = corrupt_at_call
        self._fail_at = fail_at_call
        self._corrupt_value = float(corrupt_value)
        self._n_corrupt = max(int(n_corrupt), 1)
        self._rng = np.random.default_rng(seed)
        self.calls = 0
        self.faults_fired = 0

    @property
    def n(self) -> int:
        """Operator order (delegated)."""
        return self._base.n

    @property
    def kernel(self) -> str:
        """The base operator's kernel name (delegated)."""
        return self._base.kernel

    @property
    def matrix(self):
        """The base operator's explicit CSR (faults apply to matvecs only)."""
        return self._base.matrix

    @property
    def dangling_mask(self) -> np.ndarray:
        """The base operator's dangling mask (delegated)."""
        return self._base.dangling_mask

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Delegate to the base matvec, injecting the scheduled fault."""
        self.calls += 1
        if self._fail_at is not None and self.calls == self._fail_at:
            self.faults_fired += 1
            raise InjectedFaultError(
                f"injected matvec failure on call {self.calls}"
            )
        y = self._base.rmatvec(x)
        if self._corrupt_at is not None and self.calls == self._corrupt_at:
            self.faults_fired += 1
            y = np.array(y, dtype=np.float64, copy=True)
            where = self._rng.choice(
                y.size, size=min(self._n_corrupt, y.size), replace=False
            )
            y[where] = self._corrupt_value
        return y

    def materialize(self):
        """The base operator's explicit matrix (faults apply to matvecs only)."""
        return self._base.materialize()

    def close(self) -> None:
        """Delegate resource release to the base operator."""
        self._base.close()

    def __repr__(self) -> str:
        return (
            f"FaultyOperator(n={self.n}, calls={self.calls}, "
            f"corrupt_at={self._corrupt_at}, fail_at={self._fail_at})"
        )


def crash_at_iteration(
    k: int, *, action: Callable[[], None] | None = None
) -> Callable[[int, float], None]:
    """A solver ``callback`` that dies at iteration ``k``.

    ``action`` runs first when given (e.g. ``lambda: os._exit(3)`` for a
    real process kill in a subprocess harness); otherwise — and for the
    in-process tests — :class:`SimulatedCrash` is raised.
    """
    k = int(k)

    def _callback(iteration: int, residual: float) -> None:
        if iteration == k:
            if action is not None:
                action()
            raise SimulatedCrash(f"simulated crash at iteration {iteration}")

    return _callback


def _worker_suicide() -> None:
    """Pool task that kills its worker process outright (not an exception)."""
    os._exit(1)


def break_worker_pool(pool, *, n_kills: int = 1, wait: bool = True) -> None:
    """Kill ``n_kills`` live workers of a pool so its next use breaks.

    Accepts a :class:`~repro.parallel.executor.WorkerPool` (or anything
    with ``submit``).  With ``wait`` (the default) each suicide future is
    awaited, which blocks until the executor has actually observed the
    worker death and marked itself broken — without it the next batch
    can race the death notice and succeed on the surviving workers.
    """
    for _ in range(max(int(n_kills), 1)):
        try:
            future = pool.submit(_worker_suicide)
        except Exception:  # noqa: BLE001 - pool may already be broken
            return
        if wait:
            try:
                future.result(timeout=30)
            except Exception:  # noqa: BLE001 - BrokenProcessPool expected
                pass

"""Solver fallback chains: when a guard trips, try the next solver.

A :class:`FallbackChain` strings registered solvers together
(``gauss_seidel → jacobi → power`` or any other order).  Each attempt
runs through the normal :class:`~repro.linalg.registry.SolverRegistry`
dispatch; when it fails with a :class:`~repro.errors.ConvergenceError`
(including the guard subclasses — NaN, divergence, stagnation, deadline)
the chain *warm-starts* the next solver from the failed attempt's last
finite iterate (``err.last_iterate``) rather than from cold, so progress
already paid for is never thrown away.

Every attempt is recorded in a :class:`SolveAttempt`; the winning
:class:`~repro.ranking.base.RankingResult` carries the full tuple as its
``provenance``, and each engaged fallback increments
``repro_fallbacks_total{kind="solver"}`` in the global metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError, ConvergenceError
from ..linalg.registry import solver_registry
from ..logging_utils import get_logger
from ..observability.events import emit as emit_event
from ..observability.metrics import get_registry

__all__ = ["SolveAttempt", "FallbackChain", "record_fallback"]

_logger = get_logger(__name__)


def record_fallback(kind: str) -> None:
    """Count one recovery action in the global metrics registry.

    Also lands a ``fallback`` event on the ambient event log, so the
    recovery shows up in the run's correlated timeline, not just as an
    aggregate counter.
    """
    get_registry().counter(
        "repro_fallbacks_total",
        "Recovery actions by kind (solver/pool_rebuild/serial_degrade)",
        labelnames=("kind",),
    ).labels(kind=kind).inc()
    emit_event("fallback", fallback_kind=kind)


@dataclass(frozen=True, slots=True)
class SolveAttempt:
    """Provenance record of one solver attempt inside a chain.

    ``error`` is ``None`` on the successful attempt; ``warm_started``
    says whether the attempt began from a previous attempt's iterate.
    """

    solver: str
    error: str | None = None
    error_type: str | None = None
    warm_started: bool = False
    iterations: int = 0
    residual: float = float("nan")

    @property
    def succeeded(self) -> bool:
        """Whether this attempt produced the final result."""
        return self.error is None


class FallbackChain:
    """Ordered solver chain with warm-started failover.

    Parameters
    ----------
    solvers:
        Solver names tried in order; each must resolve in ``registry``.
    registry:
        Solver registry to dispatch through (the process-global one by
        default).
    catch:
        Exception types that trigger failover to the next solver.  Other
        exceptions propagate immediately — a chain must never mask a
        programming error as a numerical failure.

    Examples
    --------
    >>> from repro.config import RankingParams
    >>> chain = FallbackChain(("gauss_seidel", "jacobi", "power"))
    >>> chain.solvers
    ('gauss_seidel', 'jacobi', 'power')
    """

    def __init__(
        self,
        solvers: Sequence[str],
        *,
        registry=solver_registry,
        catch: tuple[type[BaseException], ...] = (ConvergenceError,),
    ) -> None:
        solvers = tuple(str(s) for s in solvers)
        if not solvers:
            raise ConfigError("FallbackChain needs at least one solver")
        for name in solvers:
            registry.validate(name)
        self.solvers = solvers
        self.registry = registry
        self.catch = tuple(catch)

    def solve(
        self,
        operand,
        params,
        *,
        label: str = "",
        x0: np.ndarray | None = None,
        **kwargs,
    ):
        """Run the chain until one solver converges.

        Parameters mirror :meth:`repro.linalg.registry.SolverRegistry.solve`;
        ``params.solver`` is overridden by each chain entry in turn, and
        ``params.strict`` is forced True per attempt so a non-converged
        attempt raises (and fails over) instead of returning a bad σ.

        Returns the winning :class:`~repro.ranking.base.RankingResult`
        with :class:`SolveAttempt` provenance attached.

        Raises
        ------
        ConvergenceError
            The last attempt's error, when every solver in the chain
            fails.  Its ``attempts`` attribute holds the full record.
        """
        attempts: list[SolveAttempt] = []
        last_error: BaseException | None = None
        for position, name in enumerate(self.solvers):
            attempt_params = params.with_(solver=name, strict=True)
            tag = f"{label or 'solve'}[{name}]"
            warm = x0 is not None and position > 0
            try:
                result = self.registry.solve(
                    operand,
                    attempt_params,
                    solver=name,
                    label=tag,
                    x0=x0,
                    **kwargs,
                )
            except self.catch as err:
                info = (
                    err
                    if isinstance(err, ConvergenceError)
                    else None
                )
                attempts.append(
                    SolveAttempt(
                        solver=name,
                        error=str(err),
                        error_type=type(err).__name__,
                        warm_started=warm,
                        iterations=getattr(info, "iterations", 0) or 0,
                        residual=float(getattr(info, "residual", float("nan"))),
                    )
                )
                last_error = err
                if position + 1 < len(self.solvers):
                    record_fallback("solver")
                carried = getattr(err, "last_iterate", None)
                if carried is not None:
                    x0 = np.asarray(carried, dtype=np.float64)
                _logger.warning(
                    "solver %r failed (%s: %s); %s",
                    name,
                    type(err).__name__,
                    err,
                    "falling back"
                    if position + 1 < len(self.solvers)
                    else "chain exhausted",
                )
                continue
            attempts.append(
                SolveAttempt(
                    solver=name,
                    warm_started=warm,
                    iterations=result.convergence.iterations,
                    residual=result.convergence.residual,
                )
            )
            result.provenance = tuple(attempts)
            return result
        assert last_error is not None
        last_error.attempts = tuple(attempts)  # type: ignore[attr-defined]
        raise last_error

    def as_solver(self):
        """This chain as a solver-contract callable.

        The returned function matches the registry's solver signature, so
        a chain can be :meth:`register`-ed and then selected anywhere a
        solver name is accepted (``RankingParams.solver``, CLI
        ``--solver``) — the whole pipeline gains failover without any
        call-site changes.
        """

        def _solve(operand, params, *, label: str = "", **kwargs):
            return self.solve(operand, params, label=label, **kwargs)

        return _solve

    def register(self, name: str | None = None) -> str:
        """Register this chain in the solver registry; returns the name.

        The default name encodes the chain (``fallback:a>b>c``) so
        identical chains re-registering are idempotent by overwrite.
        """
        name = name or "fallback:" + ">".join(self.solvers)
        self.registry.register(name, self.as_solver(), overwrite=True)
        return name

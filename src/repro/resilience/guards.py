"""Numerical guardrails for the shared iteration engine.

A :class:`SolveGuard` is instantiated by
:func:`repro.linalg.iterate.iterate_to_fixpoint` whenever the active
:class:`~repro.config.RankingParams` carry an enabled
:class:`~repro.config.ResilienceParams`, and its :meth:`SolveGuard.check`
runs once per iteration, after the residual is measured.  It watches for
four distinct ways a long fixed-point solve goes wrong:

* **non-finite iterates** — a NaN or Inf anywhere in the iterate (or a
  non-finite residual), e.g. from a corrupted matvec buffer;
* **divergence** — the residual *growing* for a sustained run of
  iterations, the signature of an unstable splitting (Jacobi/Gauss–Seidel
  on a matrix whose iteration operator has spectral radius ≥ 1);
* **stagnation** — the residual plateauing above tolerance, burning
  iterations without progress;
* **deadline** — a wall-clock budget for the whole solve.

Each trip raises the matching typed subclass of
:class:`~repro.errors.ConvergenceError` with the *last finite iterate*
attached (``err.last_iterate``), so a
:class:`~repro.resilience.fallback.FallbackChain` can warm-start the next
solver from wherever the failed one got to.  Every trip is also counted
in the global metrics registry under ``repro_guard_trips_total{kind=...}``.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import ResilienceParams
from ..errors import (
    DivergenceError,
    NumericalError,
    SolveDeadlineError,
    StagnationError,
)
from ..logging_utils import get_logger
from ..observability.metrics import get_registry

__all__ = ["SolveGuard", "record_guard_trip"]

_logger = get_logger(__name__)


def record_guard_trip(kind: str, label: str = "") -> None:
    """Count one guard trip in the global metrics registry."""
    get_registry().counter(
        "repro_guard_trips_total",
        "Numerical-guard trips by kind (nan/divergence/stagnation/deadline)",
        labelnames=("kind",),
    ).labels(kind=kind).inc()
    _logger.warning("guard trip [%s]%s", kind, f" in {label}" if label else "")


class SolveGuard:
    """Per-solve watchdog evaluating the configured guardrails.

    One instance guards one solve; it is stateful (residual window,
    last-finite-iterate copy, start time) and not reusable across solves.

    Parameters
    ----------
    params:
        The guard configuration.
    tolerance:
        The solve's stopping tolerance (stagnation only fires above it).
    label:
        Solve tag used in log lines.
    clock:
        Monotonic time source, injectable for tests.
    """

    __slots__ = (
        "_params",
        "_tolerance",
        "_label",
        "_clock",
        "_started",
        "_growth_run",
        "_prev_residual",
        "_window",
        "_last_finite",
    )

    def __init__(
        self,
        params: ResilienceParams,
        *,
        tolerance: float,
        label: str = "",
        clock=time.monotonic,
    ) -> None:
        self._params = params
        self._tolerance = float(tolerance)
        self._label = label
        self._clock = clock
        self._started = clock()
        self._growth_run = 0
        self._prev_residual = np.inf
        self._window: list[float] = []
        self._last_finite: np.ndarray | None = None

    @property
    def last_finite(self) -> np.ndarray | None:
        """Copy of the most recent iterate that passed the finite scan."""
        return self._last_finite

    def _raise(self, err) -> None:
        err.last_iterate = self._last_finite
        raise err

    def check(self, iteration: int, x: np.ndarray, residual: float) -> None:
        """Evaluate all enabled guards against one iteration's outcome.

        Raises
        ------
        NumericalError
            Non-finite residual, or non-finite iterate on a scan step.
        DivergenceError
            ``divergence_window`` consecutive residual increases.
        StagnationError
            Relative improvement below ``stagnation_rtol`` across a full
            ``stagnation_window`` while the residual sits above tolerance.
        SolveDeadlineError
            Wall clock beyond ``deadline_seconds``.
        """
        p = self._params

        # --- non-finite iterate / residual ---------------------------------
        if not np.isfinite(residual):
            record_guard_trip("nan", self._label)
            self._raise(
                NumericalError(iteration, residual, self._tolerance, what="residual")
            )
        if p.check_finite_every and iteration % p.check_finite_every == 0:
            if not np.isfinite(x).all():
                record_guard_trip("nan", self._label)
                self._raise(
                    NumericalError(
                        iteration, residual, self._tolerance, what="iterate"
                    )
                )
            # np.copy here, not slicing: kernel-owned buffers get recycled.
            self._last_finite = np.array(x, dtype=np.float64, copy=True)

        # --- divergence -----------------------------------------------------
        if p.divergence_window:
            if residual > self._prev_residual:
                self._growth_run += 1
                if self._growth_run >= p.divergence_window:
                    record_guard_trip("divergence", self._label)
                    self._raise(
                        DivergenceError(
                            iteration,
                            residual,
                            self._tolerance,
                            window=self._growth_run,
                        )
                    )
            else:
                self._growth_run = 0
        self._prev_residual = residual

        # --- stagnation -----------------------------------------------------
        if p.stagnation_window and residual > self._tolerance:
            self._window.append(residual)
            if len(self._window) > p.stagnation_window:
                oldest = self._window.pop(0)
                improvement = (
                    (oldest - residual) / oldest if oldest > 0 else 0.0
                )
                if improvement < p.stagnation_rtol:
                    record_guard_trip("stagnation", self._label)
                    self._raise(
                        StagnationError(
                            iteration,
                            residual,
                            self._tolerance,
                            window=p.stagnation_window,
                            improvement=improvement,
                        )
                    )

        # --- wall-clock deadline -------------------------------------------
        if p.deadline_seconds is not None:
            elapsed = self._clock() - self._started
            if elapsed > p.deadline_seconds:
                record_guard_trip("deadline", self._label)
                self._raise(
                    SolveDeadlineError(
                        iteration,
                        residual,
                        self._tolerance,
                        deadline_seconds=p.deadline_seconds,
                        elapsed_seconds=elapsed,
                    )
                )

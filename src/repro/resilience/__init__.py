"""Resilience layer: guardrails, fallback chains, checkpoint/resume, faults.

A production ranking service cannot afford to lose a long Eq. 3 power
iteration to a single NaN, a broken worker pool, or a killed process.
This package makes every iterative solve in the library survivable:

* :mod:`~repro.resilience.guards` — per-iteration numerical guardrails
  (NaN/Inf iterates, sustained divergence, stagnation above tolerance,
  wall-clock deadline) configured through
  :class:`~repro.config.ResilienceParams` and enforced inside
  :func:`repro.linalg.iterate.iterate_to_fixpoint`, raising typed
  :class:`~repro.errors.ConvergenceError` subclasses;
* :mod:`~repro.resilience.fallback` — :class:`FallbackChain` warm-starts
  the next registered solver from the last finite iterate when a guard
  trips, recording per-attempt provenance on the result;
* :mod:`~repro.resilience.checkpoint` — atomic (tmp+rename) solve
  checkpoints and content-hash-keyed pipeline-stage checkpoints, wired
  to the CLI as ``--checkpoint-dir`` / ``--resume``;
* :mod:`~repro.resilience.faults` — the seeded, deterministic
  fault-injection harness the resilience tests and
  ``benchmarks/bench_resilience.py`` drive.

Recoveries surface in the metrics registry as
``repro_guard_trips_total{kind=...}``, ``repro_fallbacks_total{kind=...}``
and ``repro_checkpoint_resumes_total{kind=...}``.  See the "Resilience"
section of ``docs/architecture.md``.
"""

from .checkpoint import (
    PipelineCheckpointer,
    SolveCheckpointer,
    SolveState,
    content_key,
)
from .fallback import FallbackChain, SolveAttempt, record_fallback
from .faults import (
    FaultyOperator,
    SimulatedCrash,
    break_worker_pool,
    crash_at_iteration,
)
from .guards import SolveGuard, record_guard_trip

__all__ = [
    "SolveGuard",
    "record_guard_trip",
    "FallbackChain",
    "SolveAttempt",
    "record_fallback",
    "SolveCheckpointer",
    "SolveState",
    "PipelineCheckpointer",
    "content_key",
    "FaultyOperator",
    "SimulatedCrash",
    "crash_at_iteration",
    "break_worker_pool",
]

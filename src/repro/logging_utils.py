"""Library logging helpers.

The library never configures the root logger; it logs under the ``"repro"``
namespace and stays silent unless the host application opts in (standard
library-logging etiquette).  :func:`enable_console_logging` is a convenience
for scripts and benchmarks.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["get_logger", "enable_console_logging", "log_duration"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger in the library namespace.

    Parameters
    ----------
    name:
        Dotted suffix under ``"repro"``; ``None`` returns the library root
        logger.  Passing a fully-qualified module ``__name__`` that already
        starts with ``repro`` is also accepted.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library root logger.

    Returns the handler so callers can detach it again.  Calling this twice
    does not duplicate handlers.
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in logger.handlers:
        if getattr(handler, "_repro_console", False):
            logger.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    handler._repro_console = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


@contextmanager
def log_duration(logger: logging.Logger, label: str) -> Iterator[None]:
    """Log the wall-clock duration of the enclosed block at DEBUG level."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.debug("%s took %.3f s", label, elapsed)

"""Rank stability under random vs adversarial perturbation.

The paper contrasts the folklore that "PageRank has typically been
thought to provide fairly stable rankings (e.g., [27])" with its
experiments showing that *targeted* link manipulation has "a profound
impact".  The two statements are compatible: stability results like Ng,
Zheng & Jordan's bound perturbations of the *whole* ranking under small
random changes, while a spammer concentrates the same edge budget on one
target.  This module measures both regimes so the contrast is a number:

* :func:`random_perturbation_stability` — add the attacker's edge budget
  as uniformly random edges, measure whole-ranking agreement;
* :func:`adversarial_impact` — spend the same budget on one target and
  measure its percentile movement.

``bench_stability.py`` reports the two side by side for PageRank and
Spam-Resilient SourceRank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RankingParams
from ..errors import ConfigError
from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..ranking.base import RankingResult
from ..ranking.pagerank import pagerank

__all__ = [
    "StabilityReport",
    "random_perturbation_stability",
    "adversarial_impact",
]


@dataclass(frozen=True, slots=True)
class StabilityReport:
    """Whole-ranking agreement after a perturbation."""

    n_edges_added: int
    spearman: float
    top_100_overlap: float
    max_percentile_shift: float
    mean_percentile_shift: float


def _agreement(before: RankingResult, after: RankingResult) -> StabilityReport:
    from scipy import stats

    n = before.n
    rho, _ = stats.spearmanr(before.scores, after.scores[:n])
    before_pct = before.percentiles()
    # Compare the original items only (perturbations may add nodes).
    after_sub = RankingResult(after.scores[:n], after.convergence)
    after_pct = after_sub.percentiles()
    shifts = np.abs(after_pct - before_pct)
    k = min(100, n)
    top_before = set(before.top(k).tolist())
    top_after = set(after_sub.top(k).tolist())
    return StabilityReport(
        n_edges_added=0,  # caller overwrites
        spearman=float(rho),
        top_100_overlap=len(top_before & top_after) / k,
        max_percentile_shift=float(shifts.max()),
        mean_percentile_shift=float(shifts.mean()),
    )


def random_perturbation_stability(
    graph: PageGraph,
    n_edges: int,
    rng: np.random.Generator,
    params: RankingParams | None = None,
    *,
    before: RankingResult | None = None,
) -> StabilityReport:
    """Measure PageRank agreement after adding ``n_edges`` random edges.

    This is the Ng/Zheng/Jordan regime: diffuse, untargeted change.
    """
    n_edges = int(n_edges)
    if n_edges < 1:
        raise ConfigError(f"n_edges must be >= 1, got {n_edges}")
    params = params or RankingParams()
    if before is None:
        before = pagerank(graph, params)
    src = rng.integers(0, graph.n_nodes, n_edges)
    dst = rng.integers(0, graph.n_nodes, n_edges)
    perturbed = add_edges(graph, src, dst)
    after = pagerank(perturbed, params, x0=before.scores)
    report = _agreement(before, after)
    return StabilityReport(
        n_edges_added=n_edges,
        spearman=report.spearman,
        top_100_overlap=report.top_100_overlap,
        max_percentile_shift=report.max_percentile_shift,
        mean_percentile_shift=report.mean_percentile_shift,
    )


def adversarial_impact(
    graph: PageGraph,
    target_page: int,
    n_edges: int,
    params: RankingParams | None = None,
    *,
    before: RankingResult | None = None,
) -> tuple[StabilityReport, float]:
    """Spend the same edge budget on one target (new pages, one link
    each) and measure both the whole-ranking agreement and the target's
    percentile gain.

    Returns ``(report, target_percentile_gain)``.
    """
    n_edges = int(n_edges)
    if n_edges < 1:
        raise ConfigError(f"n_edges must be >= 1, got {n_edges}")
    target_page = int(target_page)
    if not 0 <= target_page < graph.n_nodes:
        raise ConfigError(f"target_page {target_page} out of range")
    params = params or RankingParams()
    if before is None:
        before = pagerank(graph, params)
    first_new = graph.n_nodes
    new_pages = np.arange(first_new, first_new + n_edges, dtype=np.int64)
    attacked = add_edges(
        graph,
        new_pages,
        np.full(n_edges, target_page, dtype=np.int64),
        n_nodes=first_new + n_edges,
    )
    x0 = np.full(attacked.n_nodes, 1.0 / attacked.n_nodes)
    x0[: before.n] = before.scores
    after = pagerank(attacked, params, x0=x0)
    report = _agreement(before, after)
    after_sub = RankingResult(after.scores[: before.n], after.convergence)
    gain = float(
        after_sub.percentiles()[target_page] - before.percentiles()[target_page]
    )
    return (
        StabilityReport(
            n_edges_added=n_edges,
            spearman=report.spearman,
            top_100_overlap=report.top_100_overlap,
            max_percentile_shift=report.max_percentile_shift,
            mean_percentile_shift=report.mean_percentile_shift,
        ),
        gain,
    )

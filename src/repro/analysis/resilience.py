"""Spam-resilience metrics of the Section 6 experiments.

Fig. 6 and Fig. 7 report the *average ranking percentile increase* of the
target page (under PageRank) and target source (under Spam-Resilient
SourceRank) across attack cases.  This module aggregates per-target
:class:`~repro.analysis.amplification.AmplificationRecord` measurements
into those figures' series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import GraphError
from .amplification import AmplificationRecord

__all__ = ["percentile_increase", "resilience_summary", "ResilienceRecord"]


@dataclass(frozen=True, slots=True)
class ResilienceRecord:
    """Aggregated attack impact for one (ranking, case) cell of Fig. 6/7."""

    label: str
    case: int
    mean_percentile_before: float
    mean_percentile_after: float
    mean_percentile_gain: float
    mean_amplification: float
    n_targets: int

    def as_dict(self) -> dict[str, float | int | str]:
        """Plain-dict view for table rendering."""
        return {
            "label": self.label,
            "case": self.case,
            "pct_before": self.mean_percentile_before,
            "pct_after": self.mean_percentile_after,
            "pct_gain": self.mean_percentile_gain,
            "amplification": self.mean_amplification,
            "n_targets": self.n_targets,
        }


def percentile_increase(records: Sequence[AmplificationRecord]) -> float:
    """Mean percentile-point gain across targets (a Fig. 6/7 data point)."""
    if not records:
        raise GraphError("percentile_increase requires at least one record")
    return float(np.mean([r.percentile_gain for r in records]))


def resilience_summary(
    label: str, case: int, records: Sequence[AmplificationRecord]
) -> ResilienceRecord:
    """Aggregate per-target records into one Fig. 6/7 cell."""
    if not records:
        raise GraphError("resilience_summary requires at least one record")
    return ResilienceRecord(
        label=label,
        case=int(case),
        mean_percentile_before=float(np.mean([r.percentile_before for r in records])),
        mean_percentile_after=float(np.mean([r.percentile_after for r in records])),
        mean_percentile_gain=percentile_increase(records),
        mean_amplification=float(np.mean([r.amplification for r in records])),
        n_targets=len(records),
    )

"""Section 4 spam-resilience analysis: closed forms and empirical metrics.

* :mod:`repro.analysis.closed_form` — every formula derived in Section 4
  (optimal configurations, boost factors, colluding-source equivalences,
  PageRank's unbounded boost);
* :mod:`repro.analysis.amplification` — empirical score/rank amplification
  measured on actual graphs, for validating the closed forms;
* :mod:`repro.analysis.resilience` — the percentile-change metrics of the
  Section 6 experiments.
"""

from .closed_form import (
    sigma_single_source,
    optimal_sigma_single_source,
    self_tuning_boost,
    colluding_contribution,
    sigma_with_colluders,
    equivalent_colluders_ratio,
    additional_sources_pct,
    pagerank_boost,
    pagerank_score,
    pagerank_amplification,
    srsr_amplification_scenario1,
    srsr_amplification_scenario2,
    srsr_amplification_scenario3,
)
from .amplification import score_amplification, measure_amplification
from .resilience import percentile_increase, resilience_summary, ResilienceRecord
from .stability import (
    StabilityReport,
    adversarial_impact,
    random_perturbation_stability,
)

__all__ = [
    "sigma_single_source",
    "optimal_sigma_single_source",
    "self_tuning_boost",
    "colluding_contribution",
    "sigma_with_colluders",
    "equivalent_colluders_ratio",
    "additional_sources_pct",
    "pagerank_boost",
    "pagerank_score",
    "pagerank_amplification",
    "srsr_amplification_scenario1",
    "srsr_amplification_scenario2",
    "srsr_amplification_scenario3",
    "score_amplification",
    "measure_amplification",
    "percentile_increase",
    "resilience_summary",
    "ResilienceRecord",
    "StabilityReport",
    "adversarial_impact",
    "random_perturbation_stability",
]

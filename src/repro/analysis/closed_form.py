"""Closed-form spam-resilience results of Section 4.

Every function here is a direct transcription of a formula derived in the
paper; the property-based tests verify them against simulation on actual
source graphs, and the Fig. 2/3/4 benchmarks plot them.

Notation: ``alpha`` is the mixing parameter, ``kappa`` a throttling factor,
``n_sources = |S|``, ``n_pages = |P|``, ``z`` the aggregate incoming score
from sources outside the spammer's control, ``x`` the number of colluding
sources, ``tau`` the number of colluding pages.

All functions accept NumPy arrays for their leading parameter and broadcast,
so the figure benchmarks can sweep without loops.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = [
    "sigma_single_source",
    "optimal_sigma_single_source",
    "self_tuning_boost",
    "colluding_contribution",
    "sigma_with_colluders",
    "equivalent_colluders_ratio",
    "additional_sources_pct",
    "pagerank_boost",
    "pagerank_score",
    "pagerank_amplification",
    "srsr_amplification_scenario1",
    "srsr_amplification_scenario2",
    "srsr_amplification_scenario3",
]

_ArrayLike = float | np.ndarray


def _check_alpha(alpha: float) -> float:
    alpha = float(alpha)
    if not 0.0 <= alpha < 1.0:
        raise ConfigError(f"alpha must lie in [0, 1), got {alpha}")
    return alpha


def _check_kappa(kappa: _ArrayLike, *, open_right: bool = False) -> np.ndarray:
    arr = np.asarray(kappa, dtype=np.float64)
    hi_ok = (arr < 1.0).all() if open_right else (arr <= 1.0).all()
    if not ((arr >= 0.0).all() and hi_ok):
        raise ConfigError(f"kappa must lie in [0, 1{')' if open_right else ']'}")
    return arr


def sigma_single_source(
    self_weight: _ArrayLike, z: float, alpha: float, n_sources: int
) -> np.ndarray:
    """σ_t of a single source with self-weight ``w(s_t, s_t)`` (Section 4.1).

    .. math::

        \\sigma_t = \\frac{\\alpha z + (1-\\alpha)/|S|}
                        {1 - \\alpha \\, w(s_t, s_t)}
    """
    alpha = _check_alpha(alpha)
    w = np.asarray(self_weight, dtype=np.float64)
    if ((w < 0) | (w > 1)).any():
        raise ConfigError("self_weight must lie in [0, 1]")
    return (alpha * z + (1.0 - alpha) / n_sources) / (1.0 - alpha * w)


def optimal_sigma_single_source(z: float, alpha: float, n_sources: int) -> float:
    """σ*_t — Eq. 4: the score at the optimal config ``w(s_t, s_t) = 1``."""
    return float(sigma_single_source(1.0, z, alpha, n_sources))


def self_tuning_boost(kappa: _ArrayLike, alpha: float) -> np.ndarray:
    """Maximum score gain from tuning the self-weight κ → 1 (Fig. 2).

    .. math::

        \\sigma^{*}_t / \\sigma_t = (1 - \\alpha\\kappa)/(1 - \\alpha)

    At κ=0 and α=0.85 this is 6.67×; at κ=0.8 exactly 2×; at κ=1, 1×
    (no gain — the source is already fully throttled).
    """
    alpha = _check_alpha(alpha)
    kappa = _check_kappa(kappa)
    return (1.0 - alpha * kappa) / (1.0 - alpha)


def colluding_contribution(
    x: _ArrayLike,
    kappa: float,
    alpha: float,
    n_sources: int,
    z_i: float = 0.0,
) -> np.ndarray:
    """Δσ contributed to the target by ``x`` optimal colluders (Eq. 5).

    .. math::

        \\Delta\\sigma = \\frac{\\alpha}{1-\\alpha} \\, x \\, (1-\\kappa)
            \\frac{\\alpha z_i + (1-\\alpha)/|S|}{1 - \\alpha\\kappa}

    assuming all colluders share the same throttle κ and incoming score
    ``z_i``.
    """
    alpha = _check_alpha(alpha)
    kappa = float(_check_kappa(kappa))
    x = np.asarray(x, dtype=np.float64)
    sigma_i = (alpha * z_i + (1.0 - alpha) / n_sources) / (1.0 - alpha * kappa)
    return (alpha / (1.0 - alpha)) * x * (1.0 - kappa) * sigma_i


def sigma_with_colluders(
    x: _ArrayLike, kappa: float, alpha: float, n_sources: int
) -> np.ndarray:
    """σ₀(x, κ) — the target's score with ``x`` optimal colluders, z=0.

    .. math::

        \\sigma_0(x, \\kappa) = \\frac{\\left(
            \\frac{\\alpha(1-\\kappa)x}{1-\\alpha\\kappa} + 1\\right)
            \\frac{1-\\alpha}{|S|}}{1-\\alpha}
    """
    alpha = _check_alpha(alpha)
    kappa = float(_check_kappa(kappa))
    x = np.asarray(x, dtype=np.float64)
    numer = (alpha * (1.0 - kappa) * x / (1.0 - alpha * kappa) + 1.0) * (
        (1.0 - alpha) / n_sources
    )
    return numer / (1.0 - alpha)


def equivalent_colluders_ratio(
    kappa: float, kappa_prime: _ArrayLike, alpha: float
) -> np.ndarray:
    """x'/x — colluders needed at throttle κ' per colluder at throttle κ.

    .. math::

        \\frac{x'}{x} = \\frac{1-\\alpha\\kappa'}{1-\\alpha\\kappa}
                       \\cdot \\frac{1-\\kappa}{1-\\kappa'}
    """
    alpha = _check_alpha(alpha)
    kappa = float(_check_kappa(kappa, open_right=True))
    kp = _check_kappa(kappa_prime, open_right=True)
    return ((1.0 - alpha * kp) / (1.0 - alpha * kappa)) * (
        (1.0 - kappa) / (1.0 - kp)
    )


def additional_sources_pct(kappa_prime: _ArrayLike, alpha: float) -> np.ndarray:
    """Fig. 3's y-axis: percent extra sources needed versus κ=0.

    ``(x'/x − 1) · 100`` with the baseline κ=0.  The paper's calibration
    points at α=0.85: 23 % at κ'=0.6, 60 % at 0.8, 135 % at 0.9, 1485 % at
    0.99.
    """
    return 100.0 * (equivalent_colluders_ratio(0.0, kappa_prime, alpha) - 1.0)


# ----------------------------------------------------------------------
# PageRank side (Section 4.3)
# ----------------------------------------------------------------------

def pagerank_boost(tau: _ArrayLike, alpha: float, n_pages: int) -> np.ndarray:
    """Δτ(π₀) — PageRank gained from τ colluding pages (Section 4.3).

    .. math::

        \\Delta_\\tau(\\pi_0) = \\tau \\alpha (1 - \\alpha) / |P|

    Unbounded in τ: PageRank has no influence throttling.
    """
    alpha = _check_alpha(alpha)
    tau = np.asarray(tau, dtype=np.float64)
    if (tau < 0).any():
        raise ConfigError("tau must be non-negative")
    return tau * alpha * (1.0 - alpha) / n_pages


def pagerank_score(
    tau: _ArrayLike, alpha: float, n_pages: int, z: float = 0.0
) -> np.ndarray:
    """π₀ — the target page's PageRank with τ colluding pages.

    .. math::

        \\pi_0 = z + (1-\\alpha)/|P| + \\tau\\alpha(1-\\alpha)/|P|
    """
    alpha = _check_alpha(alpha)
    return z + (1.0 - alpha) / n_pages + pagerank_boost(tau, alpha, n_pages)


def pagerank_amplification(tau: _ArrayLike, alpha: float, n_pages: int, z: float = 0.0) -> np.ndarray:
    """π₀(τ)/π₀(0) — the PageRank amplification factor plotted in Fig. 4.

    With z=0 this is ``1 + τα`` — "the PageRank score of the target page
    jumps by a factor of nearly 100 times with only 100 colluding pages"
    (1 + 100·0.85 = 86).
    """
    return pagerank_score(tau, alpha, n_pages, z) / pagerank_score(0, alpha, n_pages, z)


# ----------------------------------------------------------------------
# Spam-Resilient SourceRank amplification per Fig. 4 scenario
# ----------------------------------------------------------------------

def srsr_amplification_scenario1(
    tau: _ArrayLike, kappa: float, alpha: float
) -> np.ndarray:
    """Scenario 1: colluding pages *inside* the target source (Fig. 4a).

    Intra-source links collapse onto the self-edge, so the only gain is
    the one-time self-tuning boost ``(1 − ακ)/(1 − α)`` — independent of
    τ (for any τ ≥ 1; τ = 0 means no attack, amplification 1).
    """
    alpha = _check_alpha(alpha)
    kappa = float(_check_kappa(kappa))
    tau = np.asarray(tau, dtype=np.float64)
    boost = (1.0 - alpha * kappa) / (1.0 - alpha)
    return np.where(tau > 0, boost, 1.0)


def srsr_amplification_scenario2(
    tau: _ArrayLike, kappa: float, alpha: float, n_sources: int
) -> np.ndarray:
    """Scenario 2: colluding pages in *one* colluding source (Fig. 4b).

    The colluding source contributes at most ``Δσ`` for x=1 colluder
    regardless of how many pages it holds, so the amplification over the
    un-attacked optimal score is capped:

    .. math::

        1 + \\frac{\\alpha(1-\\kappa)}{1-\\alpha\\kappa}

    ≤ 2× for the κ values shown in the paper (α=0.85: 1.85× at κ=0,
    1.30× at κ=0.5, 1.13× at κ=0.8).
    """
    alpha = _check_alpha(alpha)
    kappa = float(_check_kappa(kappa))
    tau = np.asarray(tau, dtype=np.float64)
    with_colluder = sigma_with_colluders(1, kappa, alpha, n_sources)
    without = sigma_with_colluders(0, kappa, alpha, n_sources)
    return np.where(tau > 0, float(with_colluder / without), 1.0)


def srsr_amplification_scenario3(
    x: _ArrayLike, kappa: float, alpha: float, n_sources: int
) -> np.ndarray:
    """Scenario 3: colluding pages spread over ``x`` sources (Fig. 4c).

    σ₀(x, κ)/σ₀(0, κ) — grows with x but is suppressed by the throttle:
    each extra source adds only ``α(1-κ)/(1-ακ)`` to the numerator sum.
    """
    alpha = _check_alpha(alpha)
    kappa = float(_check_kappa(kappa))
    x = np.asarray(x, dtype=np.float64)
    return sigma_with_colluders(x, kappa, alpha, n_sources) / sigma_with_colluders(
        0, kappa, alpha, n_sources
    )

"""Empirical score amplification: before-vs-after attack measurement.

These helpers quantify a spammer's gain exactly the way Fig. 4 plots it —
the ratio of the target's score after the attack to its score before —
and are used by the property tests to validate the Section 4 closed forms
against real ranking runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from ..ranking.base import RankingResult

__all__ = ["score_amplification", "measure_amplification", "AmplificationRecord"]


@dataclass(frozen=True, slots=True)
class AmplificationRecord:
    """One before/after measurement of an attack's effect on a target."""

    target: int
    score_before: float
    score_after: float
    rank_before: int
    rank_after: int
    percentile_before: float
    percentile_after: float

    @property
    def amplification(self) -> float:
        """score_after / score_before (the Fig. 4 y-axis)."""
        return self.score_after / self.score_before

    @property
    def percentile_gain(self) -> float:
        """Percentile-point increase (the Fig. 6/7 y-axis)."""
        return self.percentile_after - self.percentile_before


def score_amplification(
    before: RankingResult, after: RankingResult, target: int
) -> float:
    """Score ratio for a target present in both rankings.

    ``after`` may rank more items than ``before`` (attacks add pages); the
    target id must refer to the same logical item in both.
    """
    target = int(target)
    if target >= before.n or target >= after.n:
        raise GraphError(
            f"target {target} out of range (before n={before.n}, after n={after.n})"
        )
    b = before.score_of(target)
    if b <= 0:
        raise GraphError(f"target {target} has non-positive score before the attack")
    return after.score_of(target) / b


def measure_amplification(
    before: RankingResult, after: RankingResult, target: int
) -> AmplificationRecord:
    """Full before/after record (scores, ranks, percentiles) for a target."""
    target = int(target)
    if target >= before.n or target >= after.n:
        raise GraphError(
            f"target {target} out of range (before n={before.n}, after n={after.n})"
        )
    ranks_before = before.ranks()
    ranks_after = after.ranks()
    pct_before = before.percentiles()
    pct_after = after.percentiles()
    return AmplificationRecord(
        target=target,
        score_before=before.score_of(target),
        score_after=after.score_of(target),
        rank_before=int(ranks_before[target]),
        rank_after=int(ranks_after[target]),
        percentile_before=float(pct_before[target]),
        percentile_after=float(pct_after[target]),
    )

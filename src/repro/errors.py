"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure domain (graph construction, numerical
convergence, configuration, IO, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "EmptyGraphError",
    "NodeIndexError",
    "SourceAssignmentError",
    "ThrottleError",
    "ConvergenceError",
    "NumericalError",
    "DivergenceError",
    "StagnationError",
    "SolveDeadlineError",
    "AuditError",
    "ServingError",
    "AdmissionError",
    "DeadlineExceededError",
    "FleetError",
    "InjectedFaultError",
    "ConfigError",
    "DatasetError",
    "CodecError",
    "ScenarioError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or inconsistent graph inputs."""


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class NodeIndexError(GraphError, IndexError):
    """Raised when a node identifier is outside the valid ``[0, n)`` range."""

    def __init__(self, node: int, n_nodes: int) -> None:
        super().__init__(f"node {node} out of range for graph with {n_nodes} nodes")
        self.node = int(node)
        self.n_nodes = int(n_nodes)


class SourceAssignmentError(ReproError):
    """Raised when a page-to-source assignment is malformed or incomplete."""


class ThrottleError(ReproError):
    """Raised for invalid throttling vectors or throttle transforms."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to reach its tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm when iteration stopped.
    tolerance:
        The requested stopping tolerance.
    last_iterate:
        The last *finite* iterate seen before failure (a NumPy vector), or
        ``None`` when no finite iterate is available.  Fallback chains use
        it to warm-start the next solver in line.
    """

    def __init__(
        self,
        iterations: int,
        residual: float,
        tolerance: float,
        message: str | None = None,
    ) -> None:
        super().__init__(
            message
            or f"solver failed to converge: residual {residual:.3e} > "
            f"tolerance {tolerance:.3e} after {iterations} iterations"
        )
        self.iterations = int(iterations)
        self.residual = float(residual)
        self.tolerance = float(tolerance)
        self.last_iterate: object | None = None


class NumericalError(ConvergenceError):
    """Raised when an iterate (or its residual) turns NaN/Inf mid-solve."""

    def __init__(
        self, iterations: int, residual: float, tolerance: float, *, what: str = "iterate"
    ) -> None:
        super().__init__(
            iterations,
            residual,
            tolerance,
            f"non-finite {what} at iteration {iterations} "
            f"(residual {residual!r})",
        )
        self.what = what


class DivergenceError(ConvergenceError):
    """Raised on sustained residual growth (the solve is moving away)."""

    def __init__(
        self, iterations: int, residual: float, tolerance: float, *, window: int
    ) -> None:
        super().__init__(
            iterations,
            residual,
            tolerance,
            f"solver diverging: residual grew for {window} consecutive "
            f"iterations, reaching {residual:.3e} at iteration {iterations}",
        )
        self.window = int(window)


class StagnationError(ConvergenceError):
    """Raised when the residual plateaus above tolerance (no progress)."""

    def __init__(
        self,
        iterations: int,
        residual: float,
        tolerance: float,
        *,
        window: int,
        improvement: float,
    ) -> None:
        super().__init__(
            iterations,
            residual,
            tolerance,
            f"solver stagnated: residual {residual:.3e} improved only "
            f"{improvement:.1%} over the last {window} iterations "
            f"(tolerance {tolerance:.3e} still out of reach)",
        )
        self.window = int(window)
        self.improvement = float(improvement)


class SolveDeadlineError(ConvergenceError):
    """Raised when a solve exceeds its wall-clock deadline."""

    def __init__(
        self,
        iterations: int,
        residual: float,
        tolerance: float,
        *,
        deadline_seconds: float,
        elapsed_seconds: float,
    ) -> None:
        super().__init__(
            iterations,
            residual,
            tolerance,
            f"solve deadline exceeded: {elapsed_seconds:.2f}s elapsed "
            f"(deadline {deadline_seconds:.2f}s) after {iterations} iterations "
            f"at residual {residual:.3e}",
        )
        self.deadline_seconds = float(deadline_seconds)
        self.elapsed_seconds = float(elapsed_seconds)


class AuditError(ReproError):
    """Raised when a strict-mode correctness audit finds invariant violations.

    Attributes
    ----------
    violations:
        The :class:`~repro.audit.invariants.InvariantViolation` records
        that tripped the audit (at least one).
    """

    def __init__(self, violations: tuple) -> None:
        violations = tuple(violations)
        if violations:
            detail = "; ".join(str(v) for v in violations[:5])
            if len(violations) > 5:
                detail += f"; ... ({len(violations) - 5} more)"
        else:  # pragma: no cover - defensive
            detail = "unspecified violation"
        super().__init__(
            f"correctness audit failed with {max(len(violations), 1)} "
            f"violation(s): {detail}"
        )
        self.violations = violations


class ServingError(ReproError):
    """Raised by the ranking service when a query cannot be answered."""


class AdmissionError(ServingError):
    """Raised when a serving component refuses to admit a request.

    Attributes
    ----------
    reason:
        Why admission was refused: ``"read_only"`` (the service has
        degraded past its last fallback and accepts no writes),
        ``"queue_full"`` (bounded-queue admission control on the
        updater), or ``"overload"`` (front-door load shedding while
        deadlines are burning).
    retry_after:
        Suggested wait (seconds) before retrying, or ``None`` when the
        refusal is not load-related (e.g. ``read_only``).
    """

    def __init__(
        self, reason: str, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = None if retry_after is None else float(retry_after)


class DeadlineExceededError(ServingError):
    """Raised when a read burns through its per-operation deadline budget.

    Attributes
    ----------
    op:
        The operation whose budget ran out (``"score"``, ``"top_k"``,
        ...), or ``None`` when raised by the blocking client.
    deadline_seconds:
        The budget that was exceeded.
    elapsed_seconds:
        Wall-clock time actually spent before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str | None = None,
        deadline_seconds: float | None = None,
        elapsed_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.deadline_seconds = (
            None if deadline_seconds is None else float(deadline_seconds)
        )
        self.elapsed_seconds = (
            None if elapsed_seconds is None else float(elapsed_seconds)
        )


class FleetError(ServingError):
    """Raised by the replicated serving fleet (spawn, transport, exhaustion).

    Attributes
    ----------
    replica:
        Id of the replica involved, or ``None`` when the failure is not
        attributable to a single replica (e.g. every replica evicted).
    """

    def __init__(self, message: str, *, replica: int | None = None) -> None:
        super().__init__(message)
        self.replica = replica


class InjectedFaultError(ReproError):
    """Raised by the deterministic fault-injection harness (tests/benches)."""


class ConfigError(ReproError, ValueError):
    """Raised when a configuration parameter is out of its legal domain."""


class DatasetError(ReproError):
    """Raised by dataset generators and the dataset registry."""


class CodecError(ReproError):
    """Raised by the compressed-graph codecs on malformed byte streams."""


class ScenarioError(ReproError):
    """Raised when a spam scenario cannot be assembled on a given graph."""


class ObservabilityError(ReproError, ValueError):
    """Raised for invalid metric/label names or misused metric families."""

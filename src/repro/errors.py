"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure domain (graph construction, numerical
convergence, configuration, IO, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "EmptyGraphError",
    "NodeIndexError",
    "SourceAssignmentError",
    "ThrottleError",
    "ConvergenceError",
    "ConfigError",
    "DatasetError",
    "CodecError",
    "ScenarioError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or inconsistent graph inputs."""


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class NodeIndexError(GraphError, IndexError):
    """Raised when a node identifier is outside the valid ``[0, n)`` range."""

    def __init__(self, node: int, n_nodes: int) -> None:
        super().__init__(f"node {node} out of range for graph with {n_nodes} nodes")
        self.node = int(node)
        self.n_nodes = int(n_nodes)


class SourceAssignmentError(ReproError):
    """Raised when a page-to-source assignment is malformed or incomplete."""


class ThrottleError(ReproError):
    """Raised for invalid throttling vectors or throttle transforms."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to reach its tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm when iteration stopped.
    tolerance:
        The requested stopping tolerance.
    """

    def __init__(self, iterations: int, residual: float, tolerance: float) -> None:
        super().__init__(
            f"solver failed to converge: residual {residual:.3e} > "
            f"tolerance {tolerance:.3e} after {iterations} iterations"
        )
        self.iterations = int(iterations)
        self.residual = float(residual)
        self.tolerance = float(tolerance)


class ConfigError(ReproError, ValueError):
    """Raised when a configuration parameter is out of its legal domain."""


class DatasetError(ReproError):
    """Raised by dataset generators and the dataset registry."""


class CodecError(ReproError):
    """Raised by the compressed-graph codecs on malformed byte streams."""


class ScenarioError(ReproError):
    """Raised when a spam scenario cannot be assembled on a given graph."""


class ObservabilityError(ReproError, ValueError):
    """Raised for invalid metric/label names or misused metric families."""

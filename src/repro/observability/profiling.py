"""Opt-in profiling hooks: per-stage cProfile plus wall/CPU accounting.

A :class:`Profiler` collects one :class:`ProfileRecord` per profiled
block.  The outermost block on each thread runs under :mod:`cProfile`
(deterministic call counts and a cumulative-time top table); nested
blocks — a solver inside an already-profiled pipeline stage — record
wall and thread-CPU seconds only, because CPython allows a single active
deterministic profiler per thread.

Nothing here runs unless explicitly enabled
(``ObservabilityParams(profile=True)`` or the CLI ``--profile`` flag):
the pipeline, the solvers, and the serving updater call the ambient
:func:`profile_block`, which is a context-variable lookup and a ``None``
check when no profiler is active — the same zero-cost contract as
:func:`repro.observability.tracing.span` and
:func:`repro.observability.events.emit`.

The wall-vs-CPU split is the useful signal for this library: a stage
whose ``cpu_seconds`` is far below its ``wall_seconds`` is blocked on
I/O or lock contention, not numerics.

Examples
--------
>>> profiler = Profiler(top=3)
>>> with profiler.profile("stage:rank"):
...     _ = sum(range(1000))
>>> record = profiler.records[0]
>>> record.name
'stage:rank'
>>> record.wall_seconds >= record.cpu_seconds >= 0.0 or True
True
"""

from __future__ import annotations

import cProfile
import pstats
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ObservabilityError

__all__ = ["ProfileRecord", "Profiler", "profile_block", "current_profiler"]


@dataclass(slots=True)
class ProfileRecord:
    """Profile of one named block.

    ``top`` holds the cumulative-time hottest functions (empty for
    nested blocks, which run without a deterministic profiler);
    ``calls`` is the total function-call count, ``None`` when unknown.
    """

    name: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    calls: int | None = None
    top: list[dict] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def cpu_fraction(self) -> float:
        """Thread-CPU seconds per wall second (≈1 ⇒ compute-bound)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        out: dict[str, object] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "cpu_fraction": self.cpu_fraction,
        }
        if self.calls is not None:
            out["calls"] = self.calls
        if self.top:
            out["top"] = [dict(entry) for entry in self.top]
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


def _top_functions(profile: cProfile.Profile, top: int) -> tuple[list[dict], int]:
    """The ``top`` hottest rows (by cumulative time) plus total call count."""
    stats = pstats.Stats(profile)
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{line}({func})",
                "calls": int(nc),
                "tottime_seconds": float(tt),
                "cumtime_seconds": float(ct),
            }
        )
    rows.sort(key=lambda r: r["cumtime_seconds"], reverse=True)
    return rows[:top], int(stats.total_calls)


class Profiler:
    """Thread-safe collector of :class:`ProfileRecord` blocks.

    Parameters
    ----------
    top:
        How many hottest functions each cProfile'd block retains.
    """

    def __init__(self, *, top: int = 10) -> None:
        if int(top) < 1:
            raise ObservabilityError(f"top must be >= 1, got {top!r}")
        self.top = int(top)
        self._records: list[ProfileRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def records(self) -> list[ProfileRecord]:
        """Snapshot of the collected records, completion order."""
        with self._lock:
            return list(self._records)

    @contextmanager
    def profile(self, name: str, **meta: object) -> Iterator[ProfileRecord]:
        """Profile one block; cProfile for the outermost block per thread."""
        record = ProfileRecord(name=str(name))
        if meta:
            record.meta.update(meta)
        nested = getattr(self._local, "active", False)
        prof: cProfile.Profile | None = None
        if not nested:
            prof = cProfile.Profile()
            self._local.active = True
        wall0 = time.perf_counter()
        cpu0 = time.thread_time()
        if prof is not None:
            prof.enable()
        try:
            yield record
        finally:
            if prof is not None:
                prof.disable()
                self._local.active = False
            record.wall_seconds = time.perf_counter() - wall0
            record.cpu_seconds = time.thread_time() - cpu0
            if prof is not None:
                record.top, record.calls = _top_functions(prof, self.top)
            with self._lock:
                self._records.append(record)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation of every collected record."""
        return {"profiles": [r.as_dict() for r in self.records]}

    def find(self, name: str) -> list[ProfileRecord]:
        """Every record with the given name, completion order."""
        return [r for r in self.records if r.name == name]

    @contextmanager
    def activate(self) -> Iterator["Profiler"]:
        """Install this profiler as the ambient one for :func:`profile_block`.

        Ambience is per-thread (a context variable): worker threads
        re-activate inside the thread body.
        """
        token = _active_profiler.set(self)
        try:
            yield self
        finally:
            _active_profiler.reset(token)


_active_profiler: ContextVar[Profiler | None] = ContextVar(
    "repro_active_profiler", default=None
)


def current_profiler() -> Profiler | None:
    """The ambient profiler installed by :meth:`Profiler.activate`, if any."""
    return _active_profiler.get()


@contextmanager
def profile_block(name: str, **meta: object) -> Iterator[ProfileRecord | None]:
    """Profile against the ambient profiler; a no-op when none is active.

    >>> with profile_block("orphan") as record:    # no active profiler
    ...     record is None
    True
    """
    profiler = _active_profiler.get()
    if profiler is None:
        yield None
        return
    with profiler.profile(name, **meta) as record:
        yield record

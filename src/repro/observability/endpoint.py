"""Live telemetry scrape endpoint: a stdlib HTTP thread, no dependencies.

:class:`TelemetryServer` serves the process's telemetry *while it runs*,
instead of the dump-at-exit model of
:func:`repro.observability.export.write_metrics`:

* ``GET /metrics`` — the :class:`~repro.observability.metrics.MetricsRegistry`
  in Prometheus text exposition format;
* ``GET /health`` — a JSON health document from the host's ``health_fn``
  (for :class:`~repro.serving.RankingService`: degradation-ladder state,
  breaker detail, staleness, read-latency p50/p99), stamped with the
  event log's ``run_id`` when one is attached;
* ``GET /trace`` — recent spans of the attached tracer as Chrome
  trace-event JSON (load it in ``chrome://tracing`` / Perfetto);
* ``GET /events?limit=N`` — the tail of the attached event log.

The server is a :class:`~http.server.ThreadingHTTPServer` on a daemon
thread: scrapes run concurrently with each other and with the host's
work, and a hung scraper cannot block the process.  Handlers only ever
*read* snapshots (the registry, tracer, and event log are all internally
locked), so scraping is safe in every serving degradation state.

Bind with ``port=0`` (the default) to let the OS pick a free port; the
bound address is available as :attr:`TelemetryServer.address` after
:meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

from ..errors import ObservabilityError
from ..logging_utils import get_logger
from .events import EventLog
from .export import to_chrome_trace
from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer

__all__ = ["TelemetryServer"]

_logger = get_logger(__name__)

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetryServer:
    """Serve ``/metrics``, ``/health``, ``/trace``, ``/events`` over HTTP.

    Parameters
    ----------
    registry:
        Metrics registry to expose (the process-global one by default).
    health_fn:
        Zero-argument callable returning a JSON-ready health dict; when
        omitted ``/health`` reports ``{"ready": true}``.
    tracer:
        Tracer whose recent spans ``/trace`` exports; omitted ⇒ an empty
        trace document.
    event_log:
        Event log whose tail ``/events`` serves and whose ``run_id``
        stamps ``/health``.
    host, port:
        Bind address; ``port=0`` picks a free port.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        health_fn: Callable[[], dict] | None = None,
        tracer: Tracer | None = None,
        event_log: EventLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.health_fn = health_fn
        self.tracer = tracer
        self.event_log = event_log
        self._host = host
        self._port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Payload builders (shared by the HTTP handler and direct callers)
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The Prometheus exposition payload."""
        return (self.registry or get_registry()).to_prometheus()

    def health_payload(self) -> dict:
        """The ``/health`` JSON document."""
        payload = dict(self.health_fn()) if self.health_fn is not None else {
            "ready": True
        }
        if self.event_log is not None:
            payload.setdefault("run_id", self.event_log.run_id)
            payload.setdefault("events_emitted", len(self.event_log))
        return payload

    def trace_payload(self) -> dict:
        """The ``/trace`` Chrome trace-event document."""
        if self.tracer is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return to_chrome_trace(self.tracer)

    def events_payload(self, limit: int | None = None) -> list[dict]:
        """The ``/events`` tail (empty without an attached log)."""
        if self.event_log is None:
            return []
        return self.event_log.events(limit=limit)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port resolved after start)."""
        with self._lock:
            if self._server is not None:
                return self._server.server_address[:2]
        return (self._host, self._port)

    def url(self, path: str = "/metrics") -> str:
        """Full URL of one endpoint on the bound address."""
        host, port = self.address
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{host}:{port}{path}"

    def start(self) -> "TelemetryServer":
        """Bind and start serving on a daemon thread (idempotent)."""
        with self._lock:
            if self._server is not None:
                return self
            endpoint = self

            class _Handler(BaseHTTPRequestHandler):
                # One handler class per server instance: the closure is the
                # only state shared with the host, and it is read-only.
                def log_message(self, *args: object) -> None:  # noqa: D102
                    pass

                def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                    try:
                        parsed = urlparse(self.path)
                        route = parsed.path.rstrip("/") or "/"
                        if route == "/metrics":
                            body = endpoint.metrics_text().encode("utf-8")
                            content_type = _PROMETHEUS_CONTENT_TYPE
                        elif route == "/health":
                            body = _json_bytes(endpoint.health_payload())
                            content_type = "application/json"
                        elif route == "/trace":
                            body = _json_bytes(endpoint.trace_payload())
                            content_type = "application/json"
                        elif route == "/events":
                            query = parse_qs(parsed.query)
                            limit = None
                            if "limit" in query:
                                limit = int(query["limit"][0])
                            body = _json_bytes(endpoint.events_payload(limit))
                            content_type = "application/json"
                        else:
                            self.send_error(404, "unknown endpoint")
                            return
                    except Exception as exc:  # noqa: BLE001 - scrape must not kill serving
                        _logger.exception("telemetry endpoint %s failed", self.path)
                        self.send_error(500, f"{type(exc).__name__}: {exc}")
                        return
                    self.send_response(200)
                    self.send_header("Content-Type", content_type)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)

            try:
                server = ThreadingHTTPServer((self._host, self._port), _Handler)
            except OSError as exc:
                raise ObservabilityError(
                    f"cannot bind telemetry endpoint on "
                    f"{self._host}:{self._port}: {exc}"
                ) from exc
            server.daemon_threads = True
            thread = threading.Thread(
                target=server.serve_forever,
                name="repro-telemetry-endpoint",
                daemon=True,
            )
            self._server = server
            self._thread = thread
            thread.start()
            _logger.info(
                "telemetry endpoint listening on http://%s:%d",
                *server.server_address[:2],
            )
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        with self._lock:
            server = self._server
            thread = self._thread
            self._server = None
            self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=10)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, default=_json_default).encode("utf-8")


def _json_default(value: object) -> object:
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)

"""The perf-trajectory ledger: benchmark results as one trend table.

Every benchmark under ``benchmarks/`` writes a ``BENCH_<name>.json``
payload; each PR that touches performance regenerates one or more of
them.  Individually those files answer "how fast is it now?" — the
ledger answers "how fast has it *been*?" and, in CI, "did this change
make it worse?".

``benchmarks/results/LEDGER.json`` is a schema-validated, append-only
trend table::

    {"schema_version": 1,
     "entries": [{"bench": "operator", "label": "PR2",
                  "source": "BENCH_operator.json",
                  "metrics": {"single_solve.lazy_seconds": 0.027, ...}},
                 ...]}

Entries are **flattened**: every numeric leaf of a benchmark payload
becomes one dotted-path metric (booleans count as 1.0/0.0, so gates
like ``all_recovered`` are trendable too).  The latest entry per bench
is the reference :func:`compare` gates against.

The gate itself is :data:`TRACKED_METRICS` — the explicit contract of
what must not regress.  Each tracked metric has a direction
(``lower``/``higher`` is better), a *relative* tolerance against the
ledger's reference value (timings get a generous band, correctness
gates get zero), and optionally an *absolute* bound that holds
regardless of history (the telemetry-overhead budget).  ``repro ledger
compare`` exits nonzero on any violation — a CI job fails the PR.

All functions here are pure stdlib + in-repo imports; the thin
``benchmarks/ledger.py`` wrapper and the ``repro ledger`` CLI
subcommand both delegate to this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import ObservabilityError
from ..logging_utils import get_logger

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "BACKFILL_LABELS",
    "TrackedMetric",
    "TRACKED_METRICS",
    "LedgerEntry",
    "Ledger",
    "Finding",
    "flatten_metrics",
    "compare_payload",
    "compare_dir",
    "discover_bench_files",
    "ingest_file",
    "backfill",
    "format_findings",
    "format_trend",
]

_logger = get_logger(__name__)

LEDGER_SCHEMA_VERSION = 1

#: Which PR originally produced each committed ``BENCH_*.json`` — the
#: labels the backfill importer stamps on historical entries.
BACKFILL_LABELS: dict[str, str] = {
    "operator": "PR2",
    "resilience": "PR4",
    "audit": "PR4",
    "serving": "PR5",
    "sharding": "PR7",
    "fleet": "PR9",
    "chaos": "PR10",
}


@dataclass(frozen=True, slots=True)
class TrackedMetric:
    """One metric the regression gate watches.

    Attributes
    ----------
    bench:
        Benchmark name (``BENCH_<bench>.json``).
    metric:
        Dotted path of the flattened metric.
    direction:
        ``"lower"`` or ``"higher"`` — which way is better.
    rel_tolerance:
        Allowed fractional slack against the ledger reference value
        (``0.5`` = may be up to 50 % worse).  Zero means any worsening
        fails.  Timings need a wide band (machines differ); correctness
        gates get zero.
    abs_limit:
        Optional absolute bound on the *current* value that applies
        regardless of history: for ``lower`` the value must be
        ``<= abs_limit``, for ``higher`` it must be ``>= abs_limit``.
    required:
        When True, a payload missing the metric fails the gate (instead
        of being skipped) — for metrics every future run must report.
    """

    bench: str
    metric: str
    direction: str
    rel_tolerance: float = 0.0
    abs_limit: float | None = None
    required: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ObservabilityError(
                f"direction must be 'lower' or 'higher', got {self.direction!r}"
            )
        if self.rel_tolerance < 0:
            raise ObservabilityError(
                f"rel_tolerance must be >= 0, got {self.rel_tolerance!r}"
            )


#: The regression contract.  Timing metrics carry a wide relative band
#: (CI boxes and laptops disagree by far more than a real regression
#: needs to show); correctness/robustness gates are exact; the
#: telemetry-overhead budget is an absolute bound.
TRACKED_METRICS: tuple[TrackedMetric, ...] = (
    TrackedMetric("operator", "single_solve.lazy_seconds", "lower", 0.5),
    TrackedMetric("operator", "kappa_sweep.lazy_seconds", "lower", 0.5),
    TrackedMetric("operator", "kappa_sweep.speedup", "higher", 0.25),
    TrackedMetric(
        "operator", "single_solve.max_score_diff", "lower", 0.0,
        abs_limit=1e-9,
    ),
    TrackedMetric("operator", "equivalent", "higher", 0.0, abs_limit=1.0),
    TrackedMetric(
        "operator",
        "telemetry_overhead.overhead_fraction",
        "lower",
        0.0,
        abs_limit=0.05,
        required=False,
    ),
    TrackedMetric("resilience", "all_recovered", "higher", 0.0, abs_limit=1.0),
    TrackedMetric(
        "resilience", "scenarios.nan_fallback.recovered", "higher", 0.0
    ),
    TrackedMetric("audit", "passed", "higher", 0.0, abs_limit=1.0),
    TrackedMetric("audit", "parts.overhead.enabled_overhead", "lower", 0.0,
                  abs_limit=0.05),
    TrackedMetric("serving", "phases.soak.reads_failed", "lower", 0.0,
                  abs_limit=0.0),
    TrackedMetric("serving", "gates.chaos_ok", "higher", 0.0, abs_limit=1.0),
    TrackedMetric("serving", "phases.soak.max_staleness_observed", "lower", 0.0,
                  abs_limit=8.0),
    # Telemetry v2 soak contract: the live endpoint answers every scrape
    # (≥500 of them, across every degradation state) and every event
    # carries the soak's run id.  Historical (PR5) entries predate these
    # fields, so they are not ``required`` — but once present they gate.
    TrackedMetric("serving", "telemetry.scrapes.failed", "lower", 0.0,
                  abs_limit=0.0),
    TrackedMetric("serving", "gates.scrapes_ok", "higher", 0.0, abs_limit=1.0),
    TrackedMetric("serving", "gates.scraped_all_states", "higher", 0.0,
                  abs_limit=1.0),
    TrackedMetric("serving", "gates.events_correlated", "higher", 0.0,
                  abs_limit=1.0),
    TrackedMetric("serving", "gates.ladder_ok", "higher", 0.0, abs_limit=1.0),
    # Sharded out-of-core substrate (PR7): blocked==in-memory equivalence
    # is exact-to-1e-9; solve time must stay near-flat across block
    # counts (max/min ratio bounded); the sharded solve's peak RSS must
    # stay below the materialized baseline's; decode throughput gets the
    # usual wide timing band.
    TrackedMetric(
        "sharding", "equivalence.max_score_diff", "lower", 0.0,
        abs_limit=1e-9, required=True,
    ),
    TrackedMetric(
        "sharding", "scaling.max_over_min_ratio", "lower", 0.5,
        abs_limit=2.5, required=True,
    ),
    TrackedMetric(
        "sharding", "memory.sharded_over_baseline", "lower", 0.5,
        abs_limit=0.9,
    ),
    TrackedMetric("sharding", "decode.edges_per_second", "higher", 0.5),
    # Replicated serving fleet (PR9): the committed full run must drive
    # ≥1M reads across the fleet with not one failed read — including
    # through a kill+restart — and every replica must converge to the
    # publisher's newest σ exactly (1e-9).  The open-loop p99 gets a
    # wide timing band plus a 1s absolute ceiling.
    TrackedMetric(
        "fleet", "load.reads.failed", "lower", 0.0,
        abs_limit=0.0, required=True,
    ),
    TrackedMetric(
        "fleet", "load.reads.total", "higher", 0.25,
        abs_limit=1_000_000, required=True,
    ),
    TrackedMetric(
        "fleet", "gates.zero_failed_reads", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "fleet", "gates.chaos_recovered", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "fleet", "gates.outage_survived", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "fleet", "gates.replicas_converged", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "fleet", "adoption.sigma_max_diff", "lower", 0.0,
        abs_limit=1e-9, required=True,
    ),
    TrackedMetric(
        "fleet", "gates.singletons_coalesced", "higher", 0.0, abs_limit=1.0,
    ),
    TrackedMetric(
        "fleet", "load.latency.overall.p99_seconds", "lower", 1.0,
        abs_limit=1.0,
    ),
    # SLO guardrails under scripted chaos (PR10): the committed full run
    # drives ≥500k open-loop reads through a slow replica, a lossy link,
    # and a publisher disk-full burst with not one client-visible failed
    # read.  Each guardrail must demonstrably *cycle*: hedges win against
    # the slow replica, which is quarantined and then reinstated; the
    # lossy replica is evicted and taken back; shedding engages during
    # the overload burst and releases after.  Deadline burn (elapsed over
    # budget) stays under 1.0 at p99, and the post-chaos σ is exact.
    TrackedMetric(
        "chaos", "load.reads.failed", "lower", 0.0,
        abs_limit=0.0, required=True,
    ),
    TrackedMetric(
        "chaos", "load.reads.ok", "higher", 0.25,
        abs_limit=500_000, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.zero_failed_reads", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.hedged_reads_won", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.slow_replica_quarantined", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.slow_replica_reinstated", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.lossy_link_survived", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.shedding_engaged", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.shedding_released", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "slo.deadline_burn_p99.worst", "lower", 1.0,
        abs_limit=1.0, required=True,
    ),
    TrackedMetric(
        "chaos", "recovery.sigma_max_diff", "lower", 0.0,
        abs_limit=1e-9, required=True,
    ),
    TrackedMetric(
        "chaos", "gates.publisher_healthy", "higher", 0.0,
        abs_limit=1.0, required=True,
    ),
)


def flatten_metrics(payload: Mapping, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested benchmark payload as dotted paths.

    Booleans become 1.0/0.0; strings, lists, and ``None`` are skipped
    (lists hold per-point curves — the scalars beside them carry the
    trendable summary).
    """
    flat: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, path))
        elif isinstance(value, bool):
            flat[path] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


@dataclass(frozen=True, slots=True)
class LedgerEntry:
    """One benchmark run folded into the trend table."""

    bench: str
    label: str
    source: str
    metrics: dict[str, float]
    meta: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "bench": self.bench,
            "label": self.label,
            "source": self.source,
            "metrics": dict(self.metrics),
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    @staticmethod
    def from_dict(raw: Mapping) -> "LedgerEntry":
        _require(isinstance(raw, Mapping), f"entry must be an object, got {raw!r}")
        for key in ("bench", "label", "source", "metrics"):
            _require(key in raw, f"entry missing required key {key!r}")
        _require(
            isinstance(raw["metrics"], Mapping),
            f"entry metrics must be an object, got {raw['metrics']!r}",
        )
        metrics: dict[str, float] = {}
        for name, value in raw["metrics"].items():
            _require(
                isinstance(value, (int, float)) and not isinstance(value, str),
                f"metric {name!r} must be numeric, got {value!r}",
            )
            metrics[str(name)] = float(value)
        meta = raw.get("meta", {})
        _require(
            isinstance(meta, Mapping), f"entry meta must be an object, got {meta!r}"
        )
        return LedgerEntry(
            bench=str(raw["bench"]),
            label=str(raw["label"]),
            source=str(raw["source"]),
            metrics=metrics,
            meta=dict(meta),
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ObservabilityError(f"invalid ledger: {message}")


class Ledger:
    """The trend table: ordered entries, newest last per bench."""

    def __init__(self, entries: Iterable[LedgerEntry] = ()) -> None:
        self.entries: list[LedgerEntry] = list(entries)

    # -- persistence ---------------------------------------------------
    @staticmethod
    def load(path: str | Path) -> "Ledger":
        """Parse and schema-validate a ``LEDGER.json``."""
        path = Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ObservabilityError(f"cannot read ledger {path}: {exc}") from exc
        _require(isinstance(raw, Mapping), "top level must be an object")
        version = raw.get("schema_version")
        _require(
            version == LEDGER_SCHEMA_VERSION,
            f"schema_version must be {LEDGER_SCHEMA_VERSION}, got {version!r}",
        )
        _require(isinstance(raw.get("entries"), list), "entries must be a list")
        return Ledger(LedgerEntry.from_dict(e) for e in raw["entries"])

    @staticmethod
    def load_or_empty(path: str | Path) -> "Ledger":
        """Load the ledger, or start a fresh one when the file is absent."""
        if not Path(path).exists():
            return Ledger()
        return Ledger.load(path)

    def save(self, path: str | Path) -> Path:
        """Write the ledger (stable key order, trailing newline)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "entries": [e.as_dict() for e in self.entries],
        }
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        return path

    # -- queries and mutation ------------------------------------------
    def latest(self, bench: str) -> LedgerEntry | None:
        """The newest entry for one bench (None when untracked)."""
        for entry in reversed(self.entries):
            if entry.bench == bench:
                return entry
        return None

    def history(self, bench: str) -> list[LedgerEntry]:
        """All entries for one bench, oldest first."""
        return [e for e in self.entries if e.bench == bench]

    def benches(self) -> list[str]:
        """Bench names present, in first-appearance order."""
        seen: list[str] = []
        for entry in self.entries:
            if entry.bench not in seen:
                seen.append(entry.bench)
        return seen

    def ingest(
        self,
        bench: str,
        payload: Mapping,
        *,
        label: str,
        source: str = "",
        meta: Mapping[str, object] | None = None,
    ) -> LedgerEntry:
        """Fold one benchmark payload into the table (appended).

        Re-ingesting the same ``(bench, label)`` replaces the earlier
        entry instead of duplicating it — regenerating a PR's numbers
        must not fork the trend.
        """
        entry = LedgerEntry(
            bench=str(bench),
            label=str(label),
            source=source or f"BENCH_{bench}.json",
            metrics=flatten_metrics(payload),
            meta=dict(meta or {}),
        )
        self.entries = [
            e
            for e in self.entries
            if not (e.bench == entry.bench and e.label == entry.label)
        ]
        self.entries.append(entry)
        return entry


@dataclass(frozen=True, slots=True)
class Finding:
    """One regression-gate verdict for a tracked metric."""

    bench: str
    metric: str
    status: str  # "ok" | "regression" | "missing" | "no_reference"
    current: float | None = None
    reference: float | None = None
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")


def compare_payload(
    ledger: Ledger,
    bench: str,
    payload: Mapping,
    *,
    tracked: Iterable[TrackedMetric] = TRACKED_METRICS,
) -> list[Finding]:
    """Gate one current benchmark payload against the ledger.

    Every tracked metric for ``bench`` is checked two ways: against the
    newest ledger entry's value under the metric's relative tolerance,
    and against its absolute bound when one is set.  Metrics absent
    from both the payload and the tracking contract are ignored — the
    gate is the explicit :data:`TRACKED_METRICS` list, nothing implicit.
    """
    flat = flatten_metrics(payload)
    reference = ledger.latest(bench)
    findings: list[Finding] = []
    for tm in tracked:
        if tm.bench != bench:
            continue
        current = flat.get(tm.metric)
        if current is None:
            if tm.required:
                findings.append(
                    Finding(bench, tm.metric, "missing",
                            detail="required metric absent from payload")
                )
            continue
        ref_value = None if reference is None else reference.metrics.get(tm.metric)
        status = "ok"
        detail = ""
        if tm.abs_limit is not None:
            if tm.direction == "lower" and current > tm.abs_limit:
                status = "regression"
                detail = f"{current:g} exceeds absolute limit {tm.abs_limit:g}"
            elif tm.direction == "higher" and current < tm.abs_limit:
                status = "regression"
                detail = f"{current:g} below absolute floor {tm.abs_limit:g}"
        if status == "ok" and ref_value is not None:
            if tm.direction == "lower":
                bound = ref_value * (1.0 + tm.rel_tolerance)
                if current > bound:
                    status = "regression"
                    detail = (
                        f"{current:g} worse than reference {ref_value:g} "
                        f"(allowed up to {bound:g})"
                    )
            else:
                bound = ref_value * (1.0 - tm.rel_tolerance)
                if current < bound:
                    status = "regression"
                    detail = (
                        f"{current:g} worse than reference {ref_value:g} "
                        f"(allowed down to {bound:g})"
                    )
        if status == "ok" and ref_value is None and tm.abs_limit is None:
            status = "no_reference"
            detail = "no ledger entry to compare against"
        findings.append(
            Finding(bench, tm.metric, status, current, ref_value, detail)
        )
    return findings


def _read_payload(path: Path) -> Mapping:
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"cannot read benchmark payload {path}: {exc}"
        ) from exc
    _require(isinstance(raw, Mapping), f"{path} top level must be an object")
    return raw


def discover_bench_files(results_dir: str | Path) -> dict[str, Path]:
    """``BENCH_<name>.json`` files under a results directory, by name."""
    found: dict[str, Path] = {}
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        found[path.stem[len("BENCH_"):]] = path
    return found


def ingest_file(
    ledger_path: str | Path,
    bench: str,
    payload_path: str | Path,
    *,
    label: str,
    meta: Mapping[str, object] | None = None,
) -> LedgerEntry:
    """Ingest one benchmark file into the ledger on disk (load→fold→save)."""
    ledger = Ledger.load_or_empty(ledger_path)
    entry = ledger.ingest(
        bench,
        _read_payload(Path(payload_path)),
        label=label,
        source=Path(payload_path).name,
        meta=meta,
    )
    ledger.save(ledger_path)
    return entry


def backfill(
    results_dir: str | Path,
    ledger_path: str | Path,
    *,
    labels: Mapping[str, str] | None = None,
) -> Ledger:
    """Fold every committed ``BENCH_*.json`` into the ledger.

    Historical files are labeled by the PR that originally produced
    them (:data:`BACKFILL_LABELS`); files the label map does not know
    get ``"backfill"``.  Idempotent: re-running replaces rather than
    duplicates (same bench+label).
    """
    labels = dict(BACKFILL_LABELS if labels is None else labels)
    ledger = Ledger.load_or_empty(ledger_path)
    for bench, path in discover_bench_files(results_dir).items():
        label = labels.get(bench, "backfill")
        ledger.ingest(
            bench, _read_payload(path), label=label, source=path.name
        )
        _logger.info("backfilled %s as %s (%s)", path.name, bench, label)
    ledger.save(ledger_path)
    return ledger


def compare_dir(
    results_dir: str | Path,
    ledger_path: str | Path,
    *,
    tracked: Iterable[TrackedMetric] = TRACKED_METRICS,
) -> list[Finding]:
    """Gate every benchmark file in a directory against the ledger."""
    ledger = Ledger.load(ledger_path)
    findings: list[Finding] = []
    for bench, path in discover_bench_files(results_dir).items():
        findings.extend(
            compare_payload(
                ledger, bench, _read_payload(path), tracked=tracked
            )
        )
    return findings


def format_findings(findings: Iterable[Finding]) -> str:
    """One line per verdict, regressions first."""
    ordered = sorted(findings, key=lambda f: (not f.failed, f.bench, f.metric))
    lines = []
    for f in ordered:
        mark = "FAIL" if f.failed else ("  ok" if f.status == "ok" else "  --")
        value = "-" if f.current is None else f"{f.current:g}"
        ref = "-" if f.reference is None else f"{f.reference:g}"
        line = f"{mark}  {f.bench}:{f.metric}  current={value} reference={ref}"
        if f.detail:
            line += f"  ({f.detail})"
        lines.append(line)
    return "\n".join(lines)


def format_trend(ledger: Ledger, *, bench: str | None = None) -> str:
    """Render the tracked-metric trajectory as an aligned text table."""
    lines: list[str] = []
    for name in ledger.benches():
        if bench is not None and name != bench:
            continue
        entries = ledger.history(name)
        tracked = [tm for tm in TRACKED_METRICS if tm.bench == name]
        metrics = [tm.metric for tm in tracked] or sorted(
            entries[-1].metrics
        )[:8]
        lines.append(f"bench {name} ({len(entries)} entries)")
        width = max((len(m) for m in metrics), default=10)
        header = " ".join(f"{e.label:>12}" for e in entries)
        lines.append(f"  {'metric':<{width}} {header}")
        for metric in metrics:
            cells = []
            for entry in entries:
                value = entry.metrics.get(metric)
                cells.append("           -" if value is None else f"{value:>12.6g}")
            lines.append(f"  {metric:<{width}} {' '.join(cells)}")
        lines.append("")
    return "\n".join(lines).rstrip()

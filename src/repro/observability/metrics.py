"""Metrics primitives: counters, gauges, histograms, and their registry.

A :class:`MetricsRegistry` is a named collection of metric *families*.
Each family has a type (counter / gauge / histogram), a help string, and —
optionally — a fixed set of label names; labeled families hold one child
per distinct label-value combination (the Prometheus data model).  The
registry renders itself both as plain JSON (:meth:`MetricsRegistry.as_dict`)
and in the Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`).

The library instruments itself against a process-global registry obtained
via :func:`get_registry`; hosts that want isolation (tests, benchmarks)
can swap it with :func:`reset_registry` or instantiate their own.

All updates are thread-safe.  Metric updates happen at *stage* granularity
(a handful per pipeline run), never per solver iteration — the per-iteration
path is covered by :mod:`repro.observability.progress` and costs nothing
unless a callback is installed.

Examples
--------
>>> reg = MetricsRegistry()
>>> reg.counter("repro_runs_total", "Completed runs").inc()
>>> reg.counter("repro_runs_total", "Completed runs").inc(2)
>>> reg.counter("repro_runs_total", "Completed runs").value
3.0
>>> h = reg.histogram("repro_seconds", "Stage time", labelnames=("stage",),
...                   buckets=(0.1, 1.0))
>>> h.labels(stage="rank").observe(0.05)
>>> h.labels(stage="rank").count
1
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Iterable, Mapping

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "diff_snapshots",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_ITERATION_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Prometheus-style latency buckets (seconds), tuned for solver stages.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0,
)

#: Buckets for iteration counts of the ranking solvers.
DEFAULT_ITERATION_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ObservabilityError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {names!r}")
    return names


def _escape_label_value(value: str) -> str:
    # Exposition format: label values escape backslash, double-quote, and
    # newline (backslash first — escaping must not double-process its own
    # output).
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (quotes are legal there).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Child:
    """Base for one (labelset, value) sample of a metric family."""

    __slots__ = ("_labels", "_lock")

    def __init__(self, labels: Mapping[str, str], lock: threading.Lock) -> None:
        self._labels = dict(labels)
        self._lock = lock

    @property
    def label_values(self) -> dict[str, str]:
        """The label key→value mapping of this child."""
        return dict(self._labels)


class Counter(_Child):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, labels: Mapping[str, str], lock: threading.Lock) -> None:
        super().__init__(labels, lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        amount = float(amount)
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class Gauge(_Child):
    """Value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self, labels: Mapping[str, str], lock: threading.Lock) -> None:
        super().__init__(labels, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value


class Histogram(_Child):
    """Cumulative-bucket histogram of observed values."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        labels: Mapping[str, str],
        lock: threading.Lock,
        bounds: tuple[float, ...],
    ) -> None:
        super().__init__(labels, lock)
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self._bounds, self._counts[:-1]):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate (``None`` when empty).

        Linear interpolation inside the bucket holding the q-th
        observation, the standard Prometheus ``histogram_quantile``
        estimate.  Observations beyond the last finite bound clamp to
        that bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must lie in [0, 1], got {q!r}")
        with self._lock:
            total = self._count
            if total == 0:
                return None
            rank = q * total
            running = 0
            lower = 0.0
            for bound, count in zip(self._bounds, self._counts[:-1]):
                if running + count >= rank and count > 0:
                    fraction = (rank - running) / count
                    return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
                running += count
                lower = bound
            return self._bounds[-1] if self._bounds else None


class _Family:
    """A named metric family holding one child per label combination."""

    __slots__ = ("name", "help", "kind", "labelnames", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        lock: threading.Lock,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple[str, ...], _Child] = {}
        self._lock = lock
        if not labelnames:
            self._children[()] = self._make_child({})

    def _make_child(self, labels: Mapping[str, str]) -> _Child:
        if self.kind == "counter":
            return Counter(labels, self._lock)
        if self.kind == "gauge":
            return Gauge(labels, self._lock)
        return Histogram(labels, self._lock, self.buckets or DEFAULT_SECONDS_BUCKETS)

    def labels(self, **labels: str) -> _Child:
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child(dict(zip(self.labelnames, key)))
                self._children[key] = child
        return child

    def children(self) -> list[_Child]:
        """All existing children, creation order."""
        with self._lock:
            return list(self._children.values())

    # -- unlabeled convenience: the family proxies its single child --
    def _solo(self) -> _Child:
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name!r} is labeled by {self.labelnames}; "
                "call .labels(...) first"
            )
        return self._children[()]


class _CounterFamily(_Family):
    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self._solo().value  # type: ignore[union-attr]


class _GaugeFamily(_Family):
    def set(self, value: float) -> None:
        self._solo().set(value)  # type: ignore[union-attr]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self._solo().value  # type: ignore[union-attr]


class _HistogramFamily(_Family):
    def observe(self, value: float) -> None:
        self._solo().observe(value)  # type: ignore[union-attr]

    @property
    def count(self) -> int:
        return self._solo().count  # type: ignore[union-attr]

    @property
    def sum(self) -> float:
        return self._solo().sum  # type: ignore[union-attr]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        return self._solo().cumulative_buckets()  # type: ignore[union-attr]

    def quantile(self, q: float) -> float | None:
        return self._solo().quantile(q)  # type: ignore[union-attr]


_FAMILY_CLASSES = {
    "counter": _CounterFamily,
    "gauge": _GaugeFamily,
    "histogram": _HistogramFamily,
}


class MetricsRegistry:
    """Thread-safe collection of metric families.

    Re-registering a name with the same kind returns the existing family
    (so call sites need not coordinate); re-registering with a *different*
    kind raises :class:`~repro.errors.ObservabilityError`.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Iterable[str],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        _check_name(name)
        labelnames = _check_labelnames(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.labelnames}"
                    )
                return family
            if buckets is not None:
                buckets = tuple(sorted(float(b) for b in buckets))
                if not buckets:
                    raise ObservabilityError("histogram needs at least one bucket")
            family = _FAMILY_CLASSES[kind](name, help_text, kind, labelnames, self._lock, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", *, labelnames: Iterable[str] = ()
    ) -> _CounterFamily:
        """Get or create a counter family."""
        return self._register(name, help_text, "counter", labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", *, labelnames: Iterable[str] = ()
    ) -> _GaugeFamily:
        """Get or create a gauge family."""
        return self._register(name, help_text, "gauge", labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> _HistogramFamily:
        """Get or create a histogram family."""
        return self._register(name, help_text, "histogram", labelnames, buckets)  # type: ignore[return-value]

    def families(self) -> list[_Family]:
        """All registered families, sorted by name."""
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def clear(self) -> None:
        """Drop every family (tests / registry reuse)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, dict]:
        """JSON-ready representation: ``{name: {type, help, samples}}``."""
        out: dict[str, dict] = {}
        for family in self.families():
            samples = []
            for child in family.children():
                sample: dict[str, object] = {"labels": child.label_values}
                if isinstance(child, Histogram):
                    sample["count"] = child.count
                    sample["sum"] = child.sum
                    sample["buckets"] = [
                        {"le": "+Inf" if b == math.inf else b, "count": c}
                        for b, c in child.cumulative_buckets()
                    ]
                else:
                    sample["value"] = child.value  # type: ignore[union-attr]
                samples.append(sample)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """The :meth:`as_dict` payload serialized to JSON text."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                labels = child.label_values
                if isinstance(child, Histogram):
                    for bound, cum in child.cumulative_buckets():
                        le = _render_labels(labels, f'le="{_fmt_value(bound)}"')
                        lines.append(f"{family.name}_bucket{le} {cum}")
                    plain = _render_labels(labels)
                    lines.append(f"{family.name}_sum{plain} {_fmt_value(child.sum)}")
                    lines.append(f"{family.name}_count{plain} {child.count}")
                else:
                    plain = _render_labels(labels)
                    value = _fmt_value(child.value)  # type: ignore[union-attr]
                    lines.append(f"{family.name}{plain} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # Snapshots (benchmark deltas)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat ``{"name{labels}": value}`` view for delta computation.

        Histograms contribute their ``_count`` and ``_sum`` series.
        """
        flat: dict[str, float] = {}
        for family in self.families():
            for child in family.children():
                key = family.name + _render_labels(child.label_values)
                if isinstance(child, Histogram):
                    flat[f"{key}:count"] = float(child.count)
                    flat[f"{key}:sum"] = child.sum
                else:
                    flat[key] = child.value  # type: ignore[union-attr]
        return flat


def diff_snapshots(
    before: Mapping[str, float], after: Mapping[str, float]
) -> dict[str, float]:
    """Per-series change between two :meth:`MetricsRegistry.snapshot` calls.

    Series that did not change are omitted; series new in ``after`` report
    their full value.

    >>> diff_snapshots({"a": 1.0}, {"a": 3.0, "b": 2.0})
    {'a': 2.0, 'b': 2.0}
    """
    delta: dict[str, float] = {}
    for key, value in after.items():
        change = value - before.get(key, 0.0)
        if change != 0.0:
            delta[key] = change
    return delta


_global_registry = MetricsRegistry()
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry the library instruments itself against."""
    return _global_registry


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests / benchmarks) and return it."""
    global _global_registry
    with _global_lock:
        _global_registry = MetricsRegistry()
        return _global_registry

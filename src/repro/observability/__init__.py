"""Observability: metrics registry, pipeline tracing, solver telemetry.

Three cooperating layers, all optional and all zero-cost when unused:

* :mod:`~repro.observability.metrics` — process-global
  :class:`MetricsRegistry` of counters / gauges / histograms with JSON and
  Prometheus-text exposition.  The pipeline records stage timings and
  solver iteration counts here at *stage* granularity.
* :mod:`~repro.observability.tracing` — nestable :func:`span` context
  managers building a per-run trace tree
  (:class:`~repro.core.pipeline.SpamResilientPipeline` traces its five
  stages; solvers attach nested spans when a tracer is active).
* :mod:`~repro.observability.progress` — the :class:`ProgressCallback`
  per-iteration hook threaded through ``RankingParams.progress``, with
  :class:`SolverTelemetry` as the standard collector of residual curves,
  matvec timings, kernel choice, and dangling-mass stats.

See the "Observability" section of ``docs/architecture.md``.
"""

from .export import build_metrics_payload, write_metrics
from .metrics import (
    DEFAULT_ITERATION_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    reset_registry,
)
from .progress import ProgressCallback, SolverRun, SolverTelemetry
from .tracing import SpanRecord, Tracer, current_tracer, format_tree, span

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "reset_registry",
    "diff_snapshots",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_ITERATION_BUCKETS",
    # tracing
    "Tracer",
    "SpanRecord",
    "span",
    "current_tracer",
    "format_tree",
    # solver telemetry
    "ProgressCallback",
    "SolverRun",
    "SolverTelemetry",
    # export
    "build_metrics_payload",
    "write_metrics",
]

"""Observability: metrics, tracing, events, profiling, live endpoint.

Cooperating layers, all optional and all zero-cost when unused:

* :mod:`~repro.observability.metrics` — process-global
  :class:`MetricsRegistry` of counters / gauges / histograms with JSON and
  Prometheus-text exposition.  The pipeline records stage timings and
  solver iteration counts here at *stage* granularity.
* :mod:`~repro.observability.tracing` — nestable :func:`span` context
  managers building a per-run trace tree
  (:class:`~repro.core.pipeline.SpamResilientPipeline` traces its five
  stages; solvers attach nested spans when a tracer is active).  Safe to
  share across threads: each thread nests independently.
* :mod:`~repro.observability.events` — the correlated JSON-lines event
  log: one ``run_id`` stitches a run together from admission to snapshot
  publish, across pipeline stages, solves, fallbacks, checkpoints, and
  the serving updater.
* :mod:`~repro.observability.profiling` — opt-in per-stage cProfile and
  wall/CPU accounting behind ``ObservabilityParams(profile=True)`` /
  ``--profile``.
* :mod:`~repro.observability.endpoint` — :class:`TelemetryServer`, the
  live scrape endpoint (``/metrics``, ``/health``, ``/trace``,
  ``/events``) on a stdlib HTTP daemon thread.
* :mod:`~repro.observability.progress` — the :class:`ProgressCallback`
  per-iteration hook threaded through ``RankingParams.progress``, with
  :class:`SolverTelemetry` as the standard collector of residual curves,
  matvec timings, kernel choice, and dangling-mass stats.
* :mod:`~repro.observability.ledger` — the perf-trajectory ledger:
  committed benchmark results folded into one schema-validated trend
  table with a CI regression gate (``repro ledger compare``).

See the "Observability" section of ``docs/architecture.md``.
"""

from .endpoint import TelemetryServer
from .events import (
    EventLog,
    current_event_log,
    current_run_id,
    emit,
    new_run_id,
    read_events,
)
from .export import build_metrics_payload, to_chrome_trace, write_metrics
from .metrics import (
    DEFAULT_ITERATION_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    reset_registry,
)
from .profiling import ProfileRecord, Profiler, current_profiler, profile_block
from .progress import ProgressCallback, SolverRun, SolverTelemetry
from .tracing import SpanRecord, Tracer, current_tracer, format_tree, span

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "reset_registry",
    "diff_snapshots",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_ITERATION_BUCKETS",
    # tracing
    "Tracer",
    "SpanRecord",
    "span",
    "current_tracer",
    "format_tree",
    # events
    "EventLog",
    "new_run_id",
    "emit",
    "current_event_log",
    "current_run_id",
    "read_events",
    # profiling
    "Profiler",
    "ProfileRecord",
    "profile_block",
    "current_profiler",
    # endpoint
    "TelemetryServer",
    # solver telemetry
    "ProgressCallback",
    "SolverRun",
    "SolverTelemetry",
    # export
    "build_metrics_payload",
    "write_metrics",
    "to_chrome_trace",
]

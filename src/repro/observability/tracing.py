"""Lightweight wall-clock tracing: nestable spans forming a per-run tree.

A :class:`Tracer` records :class:`SpanRecord` nodes; entering
``tracer.span("stage")`` pushes a node under the current one, exiting
stamps its duration.  :meth:`Tracer.activate` installs the tracer in a
:mod:`contextvars` variable so that *lower layers* (the solvers) can
attach spans via the module-level :func:`span` helper without threading a
tracer argument through every call — and at zero cost when no tracer is
active (the helper yields ``None`` without touching the clock).

A tracer may be shared across threads: the open-span stack is kept in
thread-local storage, so spans opened by one thread (say, the serving
updater) nest only under that thread's own open spans and can never
interleave into another thread's trace.  Each thread's outermost spans
become roots; the roots list itself is lock-protected, and every record
carries the opening thread's ``tid``.  A ``max_roots`` bound turns the
roots list into a ring buffer for long-lived tracers (a serving process
tracing every update would otherwise grow without bound).

Times come from :func:`time.perf_counter`; span ``start`` offsets are
relative to the tracer's construction, which keeps the records portable.

Examples
--------
>>> tracer = Tracer()
>>> with tracer.span("outer"):
...     with tracer.span("inner", detail=42):
...         pass
>>> [root.name for root in tracer.roots]
['outer']
>>> tracer.roots[0].children[0].meta["detail"]
42
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SpanRecord", "Tracer", "span", "current_tracer", "format_tree"]


@dataclass(slots=True)
class SpanRecord:
    """One timed span: a node of the trace tree.

    ``start`` is seconds since the owning tracer's epoch; ``duration`` is
    filled in when the span exits (``-1.0`` while still open).  ``tid``
    is the identity of the thread that opened the span.
    """

    name: str
    start: float
    duration: float = -1.0
    meta: dict[str, object] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    tid: int = 0

    def walk(self) -> Iterator["SpanRecord"]:
        """This span followed by all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, object]:
        """JSON-ready nested representation."""
        out: dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class Tracer:
    """Collects a tree of timed spans for one run.

    Safe to share across threads: each thread nests spans independently
    (thread-local open-span stack) and finished outermost spans land in
    the shared roots list under a lock.  ``max_roots`` (optional) caps
    that list, dropping the oldest roots first.
    """

    __slots__ = ("_roots", "_local", "_lock", "_epoch", "max_roots")

    def __init__(self, *, max_roots: int | None = None) -> None:
        if max_roots is not None and int(max_roots) < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots!r}")
        self._roots: list[SpanRecord] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self.max_roots = None if max_roots is None else int(max_roots)

    @property
    def roots(self) -> list[SpanRecord]:
        """Snapshot of the root spans (oldest first)."""
        with self._lock:
            return list(self._roots)

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[SpanRecord]:
        """Open a child span under this thread's innermost open span."""
        record = SpanRecord(
            name=name,
            start=time.perf_counter() - self._epoch,
            tid=threading.get_ident(),
        )
        if meta:
            record.meta.update(meta)
        stack = self._stack()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self._roots.append(record)
                if self.max_roots is not None and len(self._roots) > self.max_roots:
                    del self._roots[: len(self._roots) - self.max_roots]
        stack.append(record)
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - t0
            stack.pop()

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the ambient one for :func:`span`.

        Ambience is per-thread/per-task (a context variable): a worker
        thread that should feed the same tracer re-activates inside the
        thread body.
        """
        token = _active_tracer.set(self)
        try:
            yield self
        finally:
            _active_tracer.reset(token)

    def walk(self) -> Iterator[SpanRecord]:
        """All spans, depth-first across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[SpanRecord]:
        """Every span with the given name, in traversal order."""
        return [s for s in self.walk() if s.name == name]

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation of the whole trace."""
        return {"spans": [root.as_dict() for root in self.roots]}


_active_tracer: ContextVar[Tracer | None] = ContextVar(
    "repro_active_tracer", default=None
)


def current_tracer() -> Tracer | None:
    """The ambient tracer installed by :meth:`Tracer.activate`, if any."""
    return _active_tracer.get()


@contextmanager
def span(name: str, **meta: object) -> Iterator[SpanRecord | None]:
    """Span against the ambient tracer; a no-op when none is active.

    Lower layers use this so instrumentation costs nothing unless a run
    opted into tracing:

    >>> with span("orphan") as record:      # no active tracer
    ...     record is None
    True
    """
    tracer = _active_tracer.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **meta) as record:
        yield record


def format_tree(node: SpanRecord | Tracer, *, indent: int = 0) -> str:
    """Render a span tree (or a whole tracer) as an indented text outline."""
    if isinstance(node, Tracer):
        return "\n".join(format_tree(root) for root in node.roots)
    pad = "  " * indent
    meta = ""
    if node.meta:
        meta = "  [" + ", ".join(f"{k}={v}" for k, v in node.meta.items()) + "]"
    lines = [f"{pad}{node.name}: {node.duration * 1e3:.2f} ms{meta}"]
    for child in node.children:
        lines.append(format_tree(child, indent=indent + 1))
    return "\n".join(lines)

"""Structured JSON-lines event log with run correlation IDs.

One :class:`EventLog` records everything that *happened* during a run —
pipeline stages, solver starts/stops, fallbacks, checkpoint saves and
resumes, snapshot publishes, serving state transitions — as one JSON
object per line, each stamped with a monotone sequence number and the
log's **run id**.  The run id is generated once at pipeline or service
start and rides on every event, so a single ``run_id`` stitches a solve
together from admission to snapshot publish across layers and threads.

Layers below the pipeline never hold a log reference: they call the
module-level :func:`emit`, which writes to the *ambient* log installed
by :meth:`EventLog.activate` (a :mod:`contextvars` variable, mirroring
:func:`repro.observability.tracing.span`).  With no active log the call
is a dict lookup and a ``None`` check — effectively free, so
instrumentation can stay unconditional.

Context variables do not cross thread boundaries: a component that owns
worker threads (the serving updater) re-activates its log inside the
thread body instead of relying on ambience.

Event schema (every event)::

    {"run_id": "run-8f13…", "seq": 17, "ts": 1754650000.123,
     "kind": "solve_end", ...kind-specific fields}

``ts`` is wall-clock epoch seconds; ``seq`` is unique and ordered per
log (not per thread).  Kind-specific fields are flat JSON scalars; numpy
scalars are coerced, anything else falls back to ``repr``.

Examples
--------
>>> log = EventLog(run_id="run-test")
>>> with log.activate():
...     _ = emit("stage_start", stage="rank")
>>> log.events()[0]["kind"]
'stage_start'
>>> log.events()[0]["run_id"]
'run-test'
>>> emit("orphan") is None   # no active log: a no-op
True
"""

from __future__ import annotations

import io
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Callable, Iterator

from ..errors import ObservabilityError

__all__ = [
    "EventLog",
    "new_run_id",
    "emit",
    "current_event_log",
    "current_run_id",
    "read_events",
]


def new_run_id() -> str:
    """A fresh correlation id (``run-`` + 12 hex chars)."""
    return "run-" + uuid.uuid4().hex[:12]


def _json_default(value: object) -> object:
    """Coerce non-JSON values: numpy scalars to numbers, rest to repr."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, Path):
        return str(value)
    return repr(value)


class EventLog:
    """Thread-safe JSON-lines event sink for one run.

    Parameters
    ----------
    path:
        File to append events to (one JSON object per line).  ``None``
        keeps events in memory only — the ring buffer still fills, so
        the scrape endpoint and tests can read them.
    run_id:
        Correlation id stamped on every event; generated when omitted.
    buffer:
        How many recent events the in-memory ring buffer retains.
    clock:
        Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        run_id: str | None = None,
        buffer: int = 4096,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if int(buffer) < 1:
            raise ObservabilityError(f"buffer must be >= 1, got {buffer!r}")
        self.run_id = run_id or new_run_id()
        self.path = None if path is None else Path(path)
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()
        self._buffer: deque[dict] = deque(maxlen=int(buffer))
        self._file: io.TextIOWrapper | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")

    def emit(self, kind: str, **fields: object) -> dict:
        """Record one event; returns the event dict (already stamped)."""
        with self._lock:
            self._seq += 1
            event: dict = {
                "run_id": self.run_id,
                "seq": self._seq,
                "ts": self._clock(),
                "kind": str(kind),
            }
            event.update(fields)
            self._buffer.append(event)
            if self._file is not None:
                self._file.write(
                    json.dumps(event, default=_json_default, sort_keys=False)
                    + "\n"
                )
                self._file.flush()
        return event

    def events(
        self, kind: str | None = None, *, limit: int | None = None
    ) -> list[dict]:
        """Recent events (oldest first), optionally filtered by kind."""
        with self._lock:
            out = list(self._buffer)
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        if limit is not None:
            out = out[-int(limit):]
        return out

    def __len__(self) -> int:
        """Events emitted so far (including any rotated out of the buffer)."""
        with self._lock:
            return self._seq

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @contextmanager
    def activate(self) -> Iterator["EventLog"]:
        """Install this log as the ambient sink for :func:`emit`.

        Ambience is per-thread (a context variable): worker threads must
        re-activate inside the thread body.
        """
        token = _active_log.set(self)
        try:
            yield self
        finally:
            _active_log.reset(token)


_active_log: ContextVar[EventLog | None] = ContextVar(
    "repro_active_event_log", default=None
)


def current_event_log() -> EventLog | None:
    """The ambient log installed by :meth:`EventLog.activate`, if any."""
    return _active_log.get()


def current_run_id() -> str | None:
    """Run id of the ambient event log (``None`` when none is active)."""
    log = _active_log.get()
    return None if log is None else log.run_id


def emit(kind: str, **fields: object) -> dict | None:
    """Emit against the ambient log; a no-op returning ``None`` without one."""
    log = _active_log.get()
    if log is None:
        return None
    return log.emit(kind, **fields)


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSON-lines event file back into event dicts.

    Torn trailing lines (a crash mid-write) are skipped, never raised:
    an event log must stay readable after the process it described died.
    """
    out: list[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return out

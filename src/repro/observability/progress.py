"""Solver telemetry: the per-iteration hook and its standard collector.

The iterative solvers (:func:`repro.ranking.power.power_iteration`,
Jacobi, Gauss–Seidel) accept an optional :class:`ProgressCallback` via
``RankingParams.progress``.  When it is ``None`` — the default — the hot
loop performs **no** timing calls and **no** per-iteration allocation;
when set, the solver emits:

* ``on_solve_start``: solve shape (label, solver, kernel choice, matrix
  order, dangling-row count, stopping rule);
* ``on_iteration``: residual, step wall-time, and (power solver) the
  current dangling mass;
* ``on_solve_end``: the final :class:`~repro.ranking.base.ConvergenceInfo`.

:class:`SolverTelemetry` is the batteries-included collector: it records
every solve as a :class:`SolverRun` with full residual curves and step
timings, ready for JSON export via
:func:`repro.observability.export.build_metrics_payload`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

__all__ = ["ProgressCallback", "SolverRun", "SolverTelemetry"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..ranking.base import ConvergenceInfo


class ProgressCallback:
    """No-op base class for solver progress hooks.

    Subclass and override any subset; every method has an empty default so
    partial observers stay forward-compatible when new hooks are added.
    """

    def on_solve_start(
        self,
        label: str,
        *,
        solver: str,
        n: int,
        tolerance: float,
        max_iter: int,
        kernel: str | None = None,
        n_dangling: int = 0,
    ) -> None:
        """A solve is starting."""

    def on_iteration(
        self,
        label: str,
        iteration: int,
        residual: float,
        *,
        step_seconds: float = 0.0,
        dangling_mass: float | None = None,
    ) -> None:
        """One iteration completed."""

    def on_solve_end(self, label: str, info: "ConvergenceInfo") -> None:
        """The solve finished (converged or gave up)."""


@dataclass(slots=True)
class SolverRun:
    """Telemetry of one iterative solve."""

    label: str
    solver: str
    kernel: str | None
    n: int
    tolerance: float
    max_iter: int
    n_dangling: int = 0
    iterations: int = 0
    converged: bool = False
    final_residual: float = float("inf")
    wall_seconds: float = 0.0
    residuals: list[float] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    dangling_mass: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (residual curve included)."""
        out: dict[str, object] = {
            "label": self.label,
            "solver": self.solver,
            "kernel": self.kernel,
            "n": self.n,
            "tolerance": self.tolerance,
            "max_iter": self.max_iter,
            "n_dangling": self.n_dangling,
            "iterations": self.iterations,
            "converged": self.converged,
            "final_residual": self.final_residual,
            "wall_seconds": self.wall_seconds,
            "residuals": list(self.residuals),
            "step_seconds": list(self.step_seconds),
        }
        if self.dangling_mass:
            out["dangling_mass"] = list(self.dangling_mass)
        return out


class SolverTelemetry(ProgressCallback):
    """Collects every solve it observes into :class:`SolverRun` records.

    One instance may observe many sequential solves (a whole pipeline
    run, or a whole experiment sweep); runs are appended in completion
    order.  Nested solves (a solver invoking another solver) are handled
    with a stack.
    """

    def __init__(self) -> None:
        self.runs: list[SolverRun] = []
        self._open: list[tuple[SolverRun, float]] = []

    def on_solve_start(
        self,
        label: str,
        *,
        solver: str,
        n: int,
        tolerance: float,
        max_iter: int,
        kernel: str | None = None,
        n_dangling: int = 0,
    ) -> None:
        run = SolverRun(
            label=label,
            solver=solver,
            kernel=kernel,
            n=int(n),
            tolerance=float(tolerance),
            max_iter=int(max_iter),
            n_dangling=int(n_dangling),
        )
        self._open.append((run, time.perf_counter()))

    def on_iteration(
        self,
        label: str,
        iteration: int,
        residual: float,
        *,
        step_seconds: float = 0.0,
        dangling_mass: float | None = None,
    ) -> None:
        if not self._open:
            return
        run = self._open[-1][0]
        run.iterations = int(iteration)
        run.residuals.append(float(residual))
        run.step_seconds.append(float(step_seconds))
        if dangling_mass is not None:
            run.dangling_mass.append(float(dangling_mass))

    def on_solve_end(self, label: str, info: "ConvergenceInfo") -> None:
        if not self._open:
            return
        run, started = self._open.pop()
        run.wall_seconds = time.perf_counter() - started
        run.iterations = info.iterations
        run.converged = info.converged
        run.final_residual = info.residual
        if not run.residuals and info.residual_history:
            run.residuals = [float(r) for r in info.residual_history]
        self.runs.append(run)

    # ------------------------------------------------------------------
    def iteration_counts(self) -> dict[str, int]:
        """Total iterations per solve label (summed over repeat solves)."""
        counts: dict[str, int] = {}
        for run in self.runs:
            counts[run.label] = counts.get(run.label, 0) + run.iterations
        return counts

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation of all collected runs."""
        return {
            "runs": [run.as_dict() for run in self.runs],
            "iteration_counts": self.iteration_counts(),
        }

    def clear(self) -> None:
        """Drop all collected runs (and any half-open solves)."""
        self.runs.clear()
        self._open.clear()

"""Assemble and write the combined telemetry payload.

The CLI's ``--metrics-out PATH`` flag (on ``rank`` and ``figures``) dumps
one JSON document containing the telemetry sources side by side:

* ``metrics`` — the :class:`~repro.observability.metrics.MetricsRegistry`
  exposition (counters, gauges, histograms);
* ``trace`` — the per-run span tree (pipeline stages with nested solver
  spans);
* ``solvers`` — per-solve :class:`~repro.observability.progress.SolverRun`
  records with full residual curves and step timings;
* ``events`` — the run's correlated event log tail
  (:class:`~repro.observability.events.EventLog`);
* ``profiles`` — per-stage :class:`~repro.observability.profiling.Profiler`
  records when profiling was enabled.

``PATH`` ending in ``.prom`` selects the Prometheus text format instead
(registry only — the other sources have no Prometheus analogue).

:func:`to_chrome_trace` renders any span tree in the Chrome trace-event
format (the ``/trace`` scrape endpoint serves it live): open
``chrome://tracing`` or https://ui.perfetto.dev and load the JSON.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from .events import EventLog
from .metrics import MetricsRegistry, get_registry
from .profiling import Profiler
from .progress import SolverTelemetry
from .tracing import SpanRecord, Tracer

__all__ = ["build_metrics_payload", "write_metrics", "to_chrome_trace"]


def build_metrics_payload(
    *,
    registry: MetricsRegistry | None = None,
    trace: Tracer | SpanRecord | None = None,
    telemetry: SolverTelemetry | None = None,
    events: EventLog | None = None,
    profiler: Profiler | None = None,
    meta: dict[str, object] | None = None,
) -> dict[str, object]:
    """The combined JSON-ready telemetry document."""
    from .. import __version__

    payload: dict[str, object] = {
        "generator": f"repro {__version__}",
        "meta": dict(meta or {}),
        "metrics": (registry or get_registry()).as_dict(),
    }
    if trace is not None:
        payload["trace"] = trace.as_dict()
    if telemetry is not None:
        payload["solvers"] = telemetry.as_dict()
    if events is not None:
        payload["meta"].setdefault("run_id", events.run_id)  # type: ignore[union-attr]
        payload["events"] = events.events()
    if profiler is not None:
        payload["profiles"] = profiler.as_dict()["profiles"]
    return payload


def write_metrics(
    path: str | Path,
    *,
    registry: MetricsRegistry | None = None,
    trace: Tracer | SpanRecord | None = None,
    telemetry: SolverTelemetry | None = None,
    events: EventLog | None = None,
    profiler: Profiler | None = None,
    meta: dict[str, object] | None = None,
) -> Path:
    """Write telemetry to ``path`` (JSON, or Prometheus text for ``.prom``).

    Returns the path written.
    """
    path = Path(path)
    if path.suffix == ".prom":
        text = (registry or get_registry()).to_prometheus()
    else:
        payload = build_metrics_payload(
            registry=registry,
            trace=trace,
            telemetry=telemetry,
            events=events,
            profiler=profiler,
            meta=meta,
        )
        text = json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def _chrome_args(meta: dict[str, object]) -> dict[str, object]:
    out: dict[str, object] = {}
    for key, value in meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def to_chrome_trace(
    trace: Tracer | SpanRecord | Iterable[SpanRecord],
    *,
    pid: int | None = None,
) -> dict[str, object]:
    """Render spans as a Chrome trace-event document.

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur`` relative to the tracer epoch; the span's
    opening thread id becomes the trace ``tid`` so concurrent threads
    (e.g. the serving updater vs. readers) land on separate tracks.
    Still-open spans (``duration < 0``) export with ``dur`` 0 and an
    ``args.open`` marker.
    """
    if isinstance(trace, Tracer):
        roots: Iterable[SpanRecord] = trace.roots
    elif isinstance(trace, SpanRecord):
        roots = (trace,)
    else:
        roots = tuple(trace)
    process = os.getpid() if pid is None else int(pid)
    trace_events: list[dict[str, object]] = []
    for root in roots:
        for record in root.walk():
            args = _chrome_args(record.meta)
            duration = record.duration
            if duration < 0:
                duration = 0.0
                args["open"] = True
            trace_events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": duration * 1e6,
                    "pid": process,
                    "tid": record.tid or 0,
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

"""Assemble and write the combined telemetry payload.

The CLI's ``--metrics-out PATH`` flag (on ``rank`` and ``figures``) dumps
one JSON document containing the three telemetry sources side by side:

* ``metrics`` — the :class:`~repro.observability.metrics.MetricsRegistry`
  exposition (counters, gauges, histograms);
* ``trace`` — the per-run span tree (pipeline stages with nested solver
  spans);
* ``solvers`` — per-solve :class:`~repro.observability.progress.SolverRun`
  records with full residual curves and step timings.

``PATH`` ending in ``.prom`` selects the Prometheus text format instead
(registry only — traces and solver runs have no Prometheus analogue).
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry, get_registry
from .progress import SolverTelemetry
from .tracing import SpanRecord, Tracer

__all__ = ["build_metrics_payload", "write_metrics"]


def build_metrics_payload(
    *,
    registry: MetricsRegistry | None = None,
    trace: Tracer | SpanRecord | None = None,
    telemetry: SolverTelemetry | None = None,
    meta: dict[str, object] | None = None,
) -> dict[str, object]:
    """The combined JSON-ready telemetry document."""
    from .. import __version__

    payload: dict[str, object] = {
        "generator": f"repro {__version__}",
        "meta": dict(meta or {}),
        "metrics": (registry or get_registry()).as_dict(),
    }
    if trace is not None:
        payload["trace"] = trace.as_dict()
    if telemetry is not None:
        payload["solvers"] = telemetry.as_dict()
    return payload


def write_metrics(
    path: str | Path,
    *,
    registry: MetricsRegistry | None = None,
    trace: Tracer | SpanRecord | None = None,
    telemetry: SolverTelemetry | None = None,
    meta: dict[str, object] | None = None,
) -> Path:
    """Write telemetry to ``path`` (JSON, or Prometheus text for ``.prom``).

    Returns the path written.
    """
    path = Path(path)
    if path.suffix == ".prom":
        text = (registry or get_registry()).to_prometheus()
    else:
        payload = build_metrics_payload(
            registry=registry, trace=trace, telemetry=telemetry, meta=meta
        )
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path.write_text(text, encoding="utf-8")
    return path

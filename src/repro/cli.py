"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``rank``
    Rank a URL edge list (or a named synthetic dataset) with
    Spam-Resilient SourceRank, optionally seeded with a spam blocklist.
``figures``
    Regenerate the paper's tables/figures (all, or a named subset).
``dataset``
    Generate a named synthetic dataset and write it to disk
    (edge list + assignment + spam labels).
``stats``
    Print structural statistics of a graph file.
``serve``
    Run the fault-tolerant ranking service demo: bootstrap a snapshot
    store, stream graph updates (optionally fault-injected) through the
    guarded updater, and answer queries with full provenance.
``shard``
    Create or inspect sharded on-disk graph stores: convert an edge list
    (streamed, never materialized) or generate a synthetic source graph
    shard-at-a-time; print manifest/compression stats and verify digests.
    ``rank --graph-store DIR`` then ranks straight from such a store
    out-of-core.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser", "ledger_main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spam-Resilient SourceRank (Caverlee, Webb & Liu, IPPS 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rank = sub.add_parser("rank", help="rank a web with SR-SourceRank")
    src = p_rank.add_mutually_exclusive_group(required=True)
    src.add_argument("--edges", type=Path, help="URL-pair edge list (src<TAB>dst)")
    src.add_argument("--dataset", help="named synthetic dataset (e.g. uk2002_like)")
    src.add_argument(
        "--graph-store",
        type=Path,
        help="sharded on-disk source-graph store (see 'repro shard'); "
        "ranks out-of-core without materializing the matrix",
    )
    p_rank.add_argument(
        "--blocklist", type=Path, help="file of known-spam hosts (or source ids), one per line"
    )
    p_rank.add_argument(
        "--store-cache",
        type=int,
        default=4,
        help="with --graph-store: decoded blocks to keep in memory",
    )
    p_rank.add_argument(
        "--store-workers",
        type=int,
        default=0,
        help="with --graph-store: block-parallel matvec workers "
        "(0 = stream shards serially)",
    )
    p_rank.add_argument("--alpha", type=float, default=0.85)
    p_rank.add_argument(
        "--solver",
        default="power",
        help="ranking solver: power (default), jacobi, gauss_seidel, or any "
        "registered solver name",
    )
    p_rank.add_argument(
        "--kernel",
        choices=("scipy", "chunked", "parallel"),
        default="scipy",
        help="transpose-matvec kernel for the power solver",
    )
    p_rank.add_argument("--top", type=int, default=20, help="how many sources to print")
    p_rank.add_argument(
        "--key", choices=("host", "domain"), default="host", help="source grouping key"
    )
    p_rank.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write metrics + trace + solver telemetry (JSON; .prom for "
        "Prometheus text) to this path",
    )
    p_rank.add_argument(
        "--trace", action="store_true", help="print the per-stage trace tree"
    )
    p_rank.add_argument(
        "--fallback-solvers",
        default=None,
        help="comma-separated solver names to fail over to when the "
        "primary solver trips a guard (e.g. 'jacobi,power')",
    )
    p_rank.add_argument(
        "--audit",
        action="store_true",
        help="enable the runtime correctness audit (stage invariants + "
        "per-iteration mass conservation); violations abort the run "
        "with a typed AuditError",
    )
    p_rank.add_argument(
        "--audit-lenient",
        action="store_true",
        help="with --audit: log and count violations instead of raising",
    )
    p_rank.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for stage + solve checkpoints (enables "
        "crash-resumable runs)",
    )
    p_rank.add_argument(
        "--resume",
        action="store_true",
        help="resume completed stages / partial solves from "
        "--checkpoint-dir instead of recomputing",
    )
    p_rank.add_argument(
        "--events-out",
        type=Path,
        default=None,
        help="append the run's correlated JSON-lines event log "
        "(pipeline stages, solves, fallbacks, checkpoints — one run_id) "
        "to this file",
    )
    p_rank.add_argument(
        "--profile",
        action="store_true",
        help="profile each pipeline stage and solve (cProfile + wall/CPU) "
        "and print the per-stage summary",
    )

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument(
        "artifacts",
        nargs="*",
        default=[],
        help="subset to run: table1 fig2 fig3 fig4 fig5 fig6 fig7 (default: all)",
    )
    p_fig.add_argument("--fast", action="store_true", help="tiny dataset only")
    p_fig.add_argument(
        "--out",
        type=Path,
        default=None,
        help="run EVERY artifact via the manifest runner and write text+JSON here",
    )
    p_fig.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write metrics + trace + solver telemetry (JSON; .prom for "
        "Prometheus text) to this path",
    )
    p_fig.add_argument(
        "--trace", action="store_true", help="print the per-artifact trace tree"
    )

    p_ds = sub.add_parser("dataset", help="generate a synthetic dataset to disk")
    p_ds.add_argument("name", help="registry name (uk2002_like, ...)")
    p_ds.add_argument("out", type=Path, help="output directory")
    p_ds.add_argument("--seed", type=int, default=None)

    p_stats = sub.add_parser("stats", help="print graph statistics")
    p_stats.add_argument("edges", type=Path, help="integer edge list file")

    p_serve = sub.add_parser(
        "serve", help="run the fault-tolerant ranking service demo"
    )
    p_serve.add_argument(
        "--dataset", default="tiny", help="named synthetic dataset to serve"
    )
    p_serve.add_argument(
        "--snapshot-dir",
        type=Path,
        required=True,
        help="snapshot store directory (reused across runs — restart "
        "recovery serves the newest healthy snapshot)",
    )
    p_serve.add_argument(
        "--updates", type=int, default=5, help="graph updates to stream"
    )
    p_serve.add_argument(
        "--queries", type=int, default=20, help="queries to answer per update"
    )
    p_serve.add_argument("--top", type=int, default=5, help="top-k size to print")
    p_serve.add_argument(
        "--inject",
        choices=("none", "nan", "crash"),
        default="none",
        help="fault to inject into every other update: 'nan' corrupts a "
        "matvec (the fallback chain recovers in-update), 'crash' kills "
        "the solve mid-iteration (the service degrades explicitly)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the metrics registry (JSON; .prom for Prometheus "
        "text) to this path on exit",
    )
    p_serve.add_argument(
        "--events-out",
        type=Path,
        default=None,
        help="append the service's correlated JSON-lines event log "
        "(admissions, updates, snapshots, state transitions) to this file",
    )
    p_serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="run the replicated fleet demo: spawn N read-only replica "
        "processes that adopt published snapshots and answer queries "
        "through the load-balancing asyncio front door (0 = "
        "single-process service demo)",
    )
    p_serve.add_argument(
        "--slo-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fleet only: per-read deadline budget at the front door "
        "(reads that burn it get a typed DeadlineExceededError response)",
    )
    p_serve.add_argument(
        "--slo-hedge-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fleet only: floor on the hedging trigger — a backup read "
        "fires on a second replica once the first attempt has been "
        "outstanding this long (or the tracked p95, whichever is larger)",
    )
    p_serve.add_argument(
        "--slo-retry-budget",
        type=float,
        default=None,
        metavar="PER_SECOND",
        help="fleet only: token-bucket refill rate shared by retries and "
        "hedges (burst = 2x the rate)",
    )
    p_serve.add_argument(
        "--slo-max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="fleet only: admission control — reads beyond this many in "
        "flight are shed with a typed AdmissionError carrying retry_after",
    )
    p_serve.add_argument(
        "--slo-eject-latency",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fleet only: quarantine a replica whose windowed p95 attempt "
        "latency exceeds this (slow-but-alive ejection)",
    )
    p_serve.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="REPLICA:KIND[:k=v,...]",
        help="fleet only, repeatable: arm a seeded fault on one replica, "
        "e.g. '0:latency:latency_seconds=0.05,probability=0.5' or "
        "'1:reset:probability=0.2'; kinds: latency stall reset torn "
        "slow_adopt torn_publish disk_full",
    )
    p_serve.add_argument(
        "--endpoint",
        action="store_true",
        help="serve live telemetry over HTTP (/metrics /health /trace "
        "/events) while the demo runs",
    )
    p_serve.add_argument(
        "--endpoint-port",
        type=int,
        default=0,
        help="port for --endpoint (0 = pick a free port)",
    )

    p_comp = sub.add_parser(
        "compress", help="compress an edge list (WebGraph-style codecs)"
    )
    p_comp.add_argument("edges", type=Path, help="integer edge list file")
    p_comp.add_argument("out", type=Path, help="output .npz container")
    p_comp.add_argument(
        "--codec",
        choices=("gaps", "intervals"),
        default="gaps",
        help="gap coding (default, saveable) or interval coding (report only)",
    )

    p_shard = sub.add_parser(
        "shard", help="create/inspect sharded on-disk graph stores"
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)

    p_sc = shard_sub.add_parser(
        "create",
        help="build a store from an edge list (streamed) or a synthetic "
        "generator (shard-at-a-time; never holds the edge list)",
    )
    p_sc.add_argument("out", type=Path, help="store directory to create")
    sc_src = p_sc.add_mutually_exclusive_group(required=True)
    sc_src.add_argument(
        "--edges", type=Path, help="integer edge list file (two-pass stream)"
    )
    sc_src.add_argument(
        "--synthetic-sources",
        type=int,
        help="generate a synthetic source graph with this many sources",
    )
    p_sc.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="rows per shard (default: store's DEFAULT_BLOCK_SIZE)",
    )
    p_sc.add_argument(
        "--mean-degree",
        type=float,
        default=8.0,
        help="with --synthetic-sources: mean out-degree",
    )
    p_sc.add_argument(
        "--seed", type=int, default=2007, help="with --synthetic-sources"
    )

    p_si = shard_sub.add_parser(
        "info", help="print a store's manifest and compression stats"
    )
    p_si.add_argument("store", type=Path, help="store directory")
    p_si.add_argument(
        "--verify",
        action="store_true",
        help="decode every shard and check its digest",
    )

    p_led = sub.add_parser(
        "ledger",
        help="perf-trajectory ledger: fold benchmark results, gate regressions",
    )
    led_sub = p_led.add_subparsers(dest="ledger_command", required=True)

    def _ledger_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger",
            type=Path,
            default=None,
            help="LEDGER.json path (default: <results-dir>/LEDGER.json)",
        )
        p.add_argument(
            "--results-dir",
            type=Path,
            default=Path("benchmarks/results"),
            help="directory holding BENCH_*.json files",
        )

    p_ing = led_sub.add_parser("ingest", help="fold one benchmark file in")
    _ledger_common(p_ing)
    p_ing.add_argument("--bench", required=True, help="benchmark name")
    p_ing.add_argument("--file", type=Path, required=True, help="BENCH JSON file")
    p_ing.add_argument("--label", required=True, help="trend label (e.g. PR6)")

    p_back = led_sub.add_parser(
        "backfill", help="fold every committed BENCH_*.json in, labeled by origin PR"
    )
    _ledger_common(p_back)

    p_cmp = led_sub.add_parser(
        "compare",
        help="gate current BENCH_*.json files against the ledger "
        "(exit 1 on regression — the CI gate)",
    )
    _ledger_common(p_cmp)

    p_show = led_sub.add_parser("show", help="print the tracked-metric trend table")
    _ledger_common(p_show)
    p_show.add_argument("--bench", default=None, help="restrict to one bench")

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _rank_store(args: argparse.Namespace) -> int:
    """The ``rank --graph-store`` path: out-of-core, explicit κ only."""
    from .config import GraphStoreParams, RankingParams
    from .core.pipeline import SpamResilientPipeline
    from .errors import ConfigError
    from .webgraph.store import ShardedGraphStore

    store = ShardedGraphStore.open(args.graph_store)
    print(
        f"store {args.graph_store}: {store.n_sources:,} sources / "
        f"{store.n_edges:,} edges in {store.n_blocks} blocks "
        f"(block size {store.block_size:,})"
    )
    kappa = None
    if args.blocklist:
        lines = [
            line.strip()
            for line in args.blocklist.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        ]
        try:
            ids = np.asarray([int(line) for line in lines], dtype=np.int64)
        except ValueError:
            raise ConfigError(
                "--graph-store stores are anonymous: --blocklist must hold "
                "integer source ids, one per line"
            ) from None
        if ids.size and (ids.min() < 0 or ids.max() >= store.n_sources):
            raise ConfigError(
                f"blocklist source ids must be in [0, {store.n_sources})"
            )
        kappa = np.zeros(store.n_sources)
        kappa[ids] = 1.0
        print(f"throttling {ids.size} blocklisted sources (kappa = 1)")
    params = GraphStoreParams(
        cache_blocks=args.store_cache, workers=args.store_workers
    )
    with SpamResilientPipeline(
        ranking=RankingParams(
            alpha=args.alpha, solver=args.solver, kernel=args.kernel
        )
    ) as pipe:
        result = pipe.rank_store(store, kappa=kappa, store_params=params)
    top_k = min(args.top, store.n_sources)
    order = result.top(top_k)
    print(
        f"\nconverged={result.convergence.converged} after "
        f"{result.convergence.iterations} iterations "
        f"(residual {result.convergence.residual:.2e})"
    )
    print(f"top {top_k} sources:")
    for rank, s in enumerate(order, start=1):
        marker = (
            "  [throttled]" if kappa is not None and kappa[int(s)] >= 1 else ""
        )
        print(
            f"  {rank:3d}. source-{int(s)}  "
            f"score={result.score_of(int(s)):.6f}{marker}"
        )
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    if args.graph_store:
        return _rank_store(args)
    from .config import (
        AuditParams,
        RankingParams,
        ResilienceParams,
        SpamProximityParams,
        ThrottleParams,
    )
    from .core.pipeline import SpamResilientPipeline
    from .datasets.registry import load_dataset
    from .graph.io import read_labeled_edges
    from .observability import SolverTelemetry, format_tree, write_metrics
    from .sources.assignment import SourceAssignment

    telemetry = SolverTelemetry() if (args.metrics_out or args.trace) else None

    if args.dataset:
        ds = load_dataset(args.dataset)
        graph, assignment = ds.graph, ds.assignment
        name_of = lambda s: f"source-{s}"  # noqa: E731 - synthetic sources are anonymous
        seeds: list[int] = ds.spam_sources[: max(1, ds.spam_sources.size // 10)].tolist()
        print(
            f"dataset {args.dataset}: {graph.n_nodes:,} pages, "
            f"{assignment.n_sources:,} sources "
            f"(seeding with {len(seeds)} known spam sources)"
        )
    else:
        graph, url_ids = read_labeled_edges(args.edges)
        urls = sorted(url_ids, key=url_ids.get)
        assignment = SourceAssignment.from_urls(urls, key=args.key)
        name_of = assignment.name_of
        seeds = []
        if args.blocklist:
            wanted = {
                line.strip()
                for line in args.blocklist.read_text().splitlines()
                if line.strip() and not line.startswith("#")
            }
            seeds = [
                s
                for s in range(assignment.n_sources)
                if assignment.name_of(s) in wanted
            ]
            missing = wanted - {assignment.name_of(s) for s in seeds}
            if missing:
                print(f"warning: blocklist hosts not in crawl: {sorted(missing)}", file=sys.stderr)
        print(
            f"crawl {args.edges}: {graph.n_nodes:,} pages, "
            f"{assignment.n_sources:,} sources, {len(seeds)} blocklisted"
        )

    n = assignment.n_sources
    throttle = ThrottleParams(
        top_fraction=min(1.0, max(2 * max(len(seeds), 1), 4) / n)
    )
    resilience = None
    if args.fallback_solvers:
        resilience = ResilienceParams(
            fallback_solvers=tuple(
                name.strip()
                for name in args.fallback_solvers.split(",")
                if name.strip()
            )
        )
    audit = None
    if args.audit:
        audit = AuditParams(strict=not args.audit_lenient)
    observability = None
    if args.events_out or args.profile:
        from .config import ObservabilityParams

        observability = ObservabilityParams(
            events=bool(args.events_out) or args.profile,
            events_path=None if args.events_out is None else str(args.events_out),
            profile=args.profile,
        )
    with SpamResilientPipeline(
        ranking=RankingParams(
            alpha=args.alpha,
            solver=args.solver,
            kernel=args.kernel,
            progress=telemetry,
            resilience=resilience,
            audit=audit,
        ),
        throttle=throttle,
        proximity=SpamProximityParams(
            progress=telemetry, resilience=resilience, audit=audit
        ),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        observability=observability,
    ) as pipe:
        result = pipe.rank(graph, assignment, spam_seeds=seeds or None)
    if args.trace and result.trace is not None:
        print("\ntrace:")
        print(format_tree(result.trace))
    if args.profile and pipe.profiler is not None:
        print("\nprofile (wall / CPU per stage):")
        for record in pipe.profiler.records:
            calls = "" if record.calls is None else f", {record.calls} calls"
            print(
                f"  {record.name}: {record.wall_seconds * 1e3:.1f} ms wall, "
                f"{record.cpu_seconds * 1e3:.1f} ms cpu{calls}"
            )
            for row in record.top[:3]:
                print(
                    f"      {row['function']}  "
                    f"cum={row['cumtime_seconds'] * 1e3:.1f} ms "
                    f"x{row['calls']}"
                )
    if args.events_out and pipe.events is not None:
        print(
            f"wrote {len(pipe.events)} events (run_id {pipe.events.run_id}) "
            f"to {args.events_out}"
        )
    if args.metrics_out:
        path = write_metrics(
            args.metrics_out,
            trace=result.trace,
            telemetry=telemetry,
            events=pipe.events,
            profiler=pipe.profiler,
            meta={"command": "rank", "dataset": args.dataset or str(args.edges)},
        )
        print(f"wrote metrics to {path}")
    top_k = min(args.top, n)
    print(f"\ntop {top_k} sources:")
    for rank, s in enumerate(result.top_sources(top_k), start=1):
        kappa = result.kappa[int(s)]
        marker = "  [throttled]" if kappa >= 1 else ""
        print(
            f"  {rank:3d}. {name_of(int(s))}  "
            f"score={result.scores.score_of(int(s)):.6f}{marker}"
        )
    throttled = result.kappa.fully_throttled()
    if throttled.size:
        print(f"\nthrottled sources ({throttled.size}):")
        for s in throttled[:20]:
            print(f"  - {name_of(int(s))}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .config import (
        ExperimentParams,
        RankingParams,
        SpamProximityParams,
        ThrottleParams,
    )
    from .eval import run_fig2, run_fig3, run_fig4, run_fig5, run_fig6, run_fig7
    from .eval.experiments import run_table1
    from .observability import SolverTelemetry, Tracer, format_tree, write_metrics

    telemetry = SolverTelemetry() if (args.metrics_out or args.trace) else None
    tracer = Tracer()

    def finish() -> None:
        if args.trace and tracer.roots:
            print("\ntrace:")
            print(format_tree(tracer))
        if args.metrics_out:
            path = write_metrics(
                args.metrics_out,
                trace=tracer,
                telemetry=telemetry,
                meta={"command": "figures", "fast": bool(args.fast)},
            )
            print(f"wrote metrics to {path}")

    instrumented = {
        "ranking": RankingParams(progress=telemetry),
        "proximity": SpamProximityParams(progress=telemetry),
    }
    if args.fast:
        dataset = "tiny"
        params = ExperimentParams(
            n_targets=2,
            cases=(1, 10, 100),
            throttle=ThrottleParams(top_fraction=16 / 128),
            seed_fraction=0.25,
            n_buckets=10,
            **instrumented,
        )
    else:
        dataset = "wb2001_like"
        params = ExperimentParams(**instrumented)

    if args.out is not None:
        from .eval import run_all

        with tracer.activate(), tracer.span("manifest"):
            if args.fast:
                manifest = run_all(
                    args.out, params=params, datasets=("tiny",), empirical=False
                )
            else:
                manifest = run_all(args.out, params=params)
        print(
            f"wrote {len(manifest.records)} artifacts to {manifest.out_dir} "
            f"in {manifest.total_seconds():.1f} s"
        )
        finish()
        return 0

    wanted = set(args.artifacts) or {
        "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    }

    def show(text: str) -> None:
        print(text)
        print("=" * 72)

    with tracer.activate():
        if "table1" in wanted and not args.fast:
            with tracer.span("table1"):
                show(run_table1().format())
        if "fig2" in wanted:
            with tracer.span("fig2"):
                show(run_fig2().format())
        if "fig3" in wanted:
            with tracer.span("fig3"):
                show(run_fig3().format())
        if "fig4" in wanted:
            for scenario in (1, 2, 3):
                with tracer.span(f"fig4:{scenario}"):
                    show(run_fig4(scenario).format())
        if "fig5" in wanted:
            with tracer.span("fig5"):
                show(run_fig5(dataset, params).format())
        if "fig6" in wanted:
            with tracer.span("fig6"):
                show(run_fig6(dataset if not args.fast else "tiny", params).format())
        if "fig7" in wanted:
            with tracer.span("fig7"):
                show(run_fig7(dataset if not args.fast else "tiny", params).format())
    finish()
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .datasets.registry import load_dataset
    from .datasets.validation import validate_dataset
    from .graph.io import write_edge_list

    ds = load_dataset(args.name, seed_override=args.seed)
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    write_edge_list(ds.graph, out / "edges.tsv")
    np.savetxt(out / "page_to_source.txt", ds.assignment.page_to_source, fmt="%d")
    np.savetxt(out / "spam_sources.txt", ds.spam_sources, fmt="%d")
    print(
        f"wrote {ds.graph.n_nodes:,} pages / {ds.graph.n_edges:,} edges / "
        f"{ds.n_sources:,} sources / {ds.spam_sources.size} spam sources to {out}"
    )
    report = validate_dataset(ds)
    print()
    print(report.format())
    return 0 if report.passed else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from .eval.reporting import format_table
    from .graph.components import component_summary
    from .graph.io import read_edge_list
    from .graph.stats import compute_stats

    graph = read_edge_list(args.edges)
    stats = compute_stats(graph)
    print(format_table([stats.as_dict()], title=f"stats for {args.edges}"))
    weak = component_summary(graph)
    print(
        f"\nweak components: {weak.n_components} "
        f"(giant covers {100 * weak.giant_fraction:.1f} %)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .config import ServingParams
    from .datasets.registry import load_dataset
    from .errors import AdmissionError
    from .graph import add_edges
    from .observability import write_metrics
    from .resilience.faults import FaultyOperator, crash_at_iteration
    from .serving import RankingService
    from .throttle.vector import ThrottleVector

    rng = np.random.default_rng(args.seed)
    ds = load_dataset(args.dataset)
    kappa = np.zeros(ds.assignment.n_sources)
    kappa[np.asarray(ds.spam_sources, dtype=np.int64)] = 1.0
    kappa = ThrottleVector(kappa)

    observability = None
    if args.events_out or args.endpoint:
        from .config import ObservabilityParams

        observability = ObservabilityParams(
            events=True,
            events_path=(
                None if args.events_out is None else str(args.events_out)
            ),
            endpoint=args.endpoint,
            endpoint_port=args.endpoint_port,
        )
    service = RankingService(
        args.snapshot_dir,
        serving=ServingParams(backoff_base_seconds=0.05, seed=args.seed),
        observability=observability,
    )
    if service.telemetry is not None:
        print(f"telemetry endpoint: {service.telemetry.url('/metrics')}")
    if not service.ready():
        print("empty store: bootstrapping baseline + SR snapshots")
        service.bootstrap(ds.graph, ds.assignment, kappa)
    else:
        print(f"recovered from snapshot store: {service.health()}")

    if args.replicas:
        code = _serve_fleet(args, service, ds, kappa, rng)
        if args.metrics_out:
            path = write_metrics(
                args.metrics_out, events=service.events, meta={"command": "serve"}
            )
            print(f"wrote metrics to {path}")
        if args.events_out and service.events is not None:
            print(
                f"wrote {len(service.events)} events "
                f"(run_id {service.events.run_id}) to {args.events_out}"
            )
        return code

    graph = ds.graph
    for step in range(1, args.updates + 1):
        src = rng.integers(0, graph.n_nodes, size=4)
        dst = rng.integers(0, graph.n_nodes, size=4)
        graph = add_edges(graph, src.tolist(), dst.tolist())
        inject: dict = {}
        faulty = args.inject != "none" and step % 2 == 0
        if faulty and args.inject == "nan":
            inject["operator_wrap"] = lambda op: FaultyOperator(
                op, corrupt_at_call=2, seed=args.seed
            )
        elif faulty and args.inject == "crash":
            inject["callback"] = crash_at_iteration(1)
        try:
            seq = service.submit_update(graph, ds.assignment, kappa, **inject)
        except AdmissionError as exc:
            print(f"update {step}: REFUSED ({exc.reason})")
            continue
        service.run_pending()
        health = service.health()
        print(
            f"update {step} (seq {seq}{', faulty' if faulty else ''}): "
            f"state={health['state']} staleness={health['staleness_updates']} "
            f"snapshot=v{health['snapshot_version']}/{health['snapshot_kind']}"
        )
        for _ in range(args.queries):
            service.score(int(rng.integers(0, ds.assignment.n_sources)))

    response = service.top_k(args.top)
    print(
        f"\ntop {args.top} sources "
        f"(state={response.state}, snapshot v{response.snapshot_version}/"
        f"{response.snapshot_kind}, age {response.snapshot_age:.2f}s, "
        f"staleness {response.staleness}):"
    )
    for rank, s in enumerate(np.asarray(response.value), start=1):
        print(f"  {rank:3d}. source-{int(s)}")
    print(f"\nhealth: {service.health()}")
    if args.metrics_out:
        path = write_metrics(
            args.metrics_out, events=service.events, meta={"command": "serve"}
        )
        print(f"wrote metrics to {path}")
    if args.events_out and service.events is not None:
        print(
            f"wrote {len(service.events)} events "
            f"(run_id {service.events.run_id}) to {args.events_out}"
        )
    service.stop()
    return 0


def _parse_chaos_spec(spec: str) -> tuple[int, str, dict]:
    """``REPLICA:KIND[:k=v,...]`` → ``(replica_id, kind, rule_config)``."""
    from .errors import ConfigError

    parts = spec.split(":", 2)
    if len(parts) < 2:
        raise ConfigError(
            f"--chaos spec {spec!r} must look like "
            "'REPLICA:KIND[:key=value,...]'"
        )
    try:
        replica_id = int(parts[0])
    except ValueError:
        raise ConfigError(
            f"--chaos spec {spec!r}: replica id {parts[0]!r} is not an int"
        ) from None
    kind = parts[1]
    config: dict = {"kind": kind}
    if len(parts) == 3 and parts[2]:
        for pair in parts[2].split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigError(
                    f"--chaos spec {spec!r}: {pair!r} is not 'key=value'"
                )
            config[key.strip()] = float(value)
    return replica_id, kind, config


def _slo_from_args(args: argparse.Namespace):
    """SLOParams with only the provided ``--slo-*`` flags overridden."""
    from .config import SLOParams

    overrides: dict = {}
    if args.slo_deadline is not None:
        overrides["deadline_seconds"] = args.slo_deadline
    if args.slo_hedge_threshold is not None:
        overrides["hedge_threshold_seconds"] = args.slo_hedge_threshold
    if args.slo_retry_budget is not None:
        overrides["retry_budget_per_second"] = args.slo_retry_budget
        overrides["retry_budget_burst"] = 2.0 * args.slo_retry_budget
    if args.slo_max_inflight is not None:
        overrides["max_inflight"] = args.slo_max_inflight
    if args.slo_eject_latency is not None:
        overrides["eject_latency_seconds"] = args.slo_eject_latency
    return SLOParams(**overrides)


def _serve_fleet(args: argparse.Namespace, service, ds, kappa, rng) -> int:
    """The ``serve --replicas N`` path: publisher + replicas + front door."""
    import time

    from .config import FleetParams
    from .errors import AdmissionError
    from .graph import add_edges
    from .serving import ServingFleet

    n = ds.assignment.n_sources
    params = FleetParams(replicas=args.replicas)
    chaos_specs = [_parse_chaos_spec(s) for s in (args.chaos or [])]
    with ServingFleet(service, params, slo=_slo_from_args(args)) as fleet:
        host, port = fleet.frontdoor.address
        print(f"fleet: {args.replicas} replicas behind {host}:{port}")
        for rid, address in sorted(fleet.replica_addresses().items()):
            print(f"  replica {rid}: {address[0]}:{address[1]}")
        for replica_id, kind, config in chaos_specs:
            name = f"cli-{kind}"
            fleet.set_replica_chaos(
                replica_id, rules={name: config}, activate=[name]
            )
            print(f"  chaos: armed {kind!r} on replica {replica_id}")
        with fleet.client() as client:
            graph = ds.graph
            for step in range(1, args.updates + 1):
                src = rng.integers(0, graph.n_nodes, size=4)
                dst = rng.integers(0, graph.n_nodes, size=4)
                graph = add_edges(graph, src.tolist(), dst.tolist())
                try:
                    seq = service.submit_update(graph, ds.assignment, kappa)
                except AdmissionError as exc:
                    print(f"update {step}: REFUSED ({exc.reason})")
                    continue
                # The fleet started the background updater; wait for the
                # publish, then watch the replicas adopt it.
                deadline = time.monotonic() + 120
                while (
                    service.health()["staleness_updates"] > 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
                published = service.health()["snapshot_version"]
                versions: dict = {}
                while time.monotonic() < deadline:
                    versions = {
                        rid: entry.get("snapshot_version")
                        for rid, entry in client.health()["replicas"].items()
                    }
                    if all(v == published for v in versions.values()):
                        break
                    time.sleep(0.05)
                for _ in range(args.queries):
                    client.score([int(rng.integers(0, n))])
                print(
                    f"update {step} (seq {seq}): publisher at "
                    f"v{published}, replicas at "
                    f"{sorted(versions.items())}"
                )
            top = client.top_k(args.top)
            print(
                f"\ntop {args.top} sources via the front door "
                f"(replica {top.get('replica')}, snapshot "
                f"v{top.get('version')}/{top.get('kind')}, "
                f"age {top.get('age', 0.0):.2f}s):"
            )
            for rank, s in enumerate(top["ids"], start=1):
                print(f"  {rank:3d}. source-{int(s)}")
            stats = client.stats()["stats"]
            reads = stats["reads"]
            print(
                f"\nfront door: {reads['ok']:.0f} reads ok, "
                f"{reads['failed']:.0f} failed, "
                f"{reads['rejected']:.0f} rejected"
            )
            for rid, entry in sorted(stats["replicas"].items()):
                latency = entry["latency"]
                p99 = latency["p99_seconds"]
                print(
                    f"  replica {rid}: state={entry['state']} "
                    f"reads={entry['reads']} "
                    f"p99={'n/a' if p99 is None else f'{p99 * 1e3:.2f}ms'}"
                )
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from .graph.io import read_edge_list
    from .webgraph import CompressedGraph, IntervalCompressedGraph, compare_codecs

    graph = read_edge_list(args.edges)
    comparison = compare_codecs(graph)
    print(
        f"{graph.n_nodes:,} nodes / {graph.n_edges:,} edges — "
        f"gap codec {comparison.gap_bits_per_edge:.2f} bits/edge, "
        f"interval codec {comparison.interval_bits_per_edge:.2f} bits/edge"
    )
    if args.codec == "intervals":
        compressed = IntervalCompressedGraph.from_pagegraph(graph)
        print(
            "note: the interval container has no save format yet; writing "
            "the gap container with the measured comparison above"
        )
    compressed = CompressedGraph.from_pagegraph(graph)
    compressed.save(args.out)
    stats = compressed.stats()
    print(
        f"wrote {args.out} ({stats.total_bytes:,} bytes, "
        f"{100 * stats.ratio:.1f} % of CSR int64)"
    )
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from .webgraph.store import ShardedGraphStore

    if args.shard_command == "create":
        if args.synthetic_sources is not None:
            from .datasets.synthetic import (
                SyntheticSourceConfig,
                generate_source_store,
            )

            config = SyntheticSourceConfig(
                n_sources=args.synthetic_sources,
                mean_out_degree=args.mean_degree,
                seed=args.seed,
            )
            store = generate_source_store(
                config, args.out, block_size=args.block_size
            )
        else:
            from .graph.streaming import StreamingBuilder, stream_edge_chunks

            builder = StreamingBuilder()
            for src, dst in stream_edge_chunks(args.edges):
                builder.count(src, dst)
            builder.finish_counting()
            for src, dst in stream_edge_chunks(args.edges):
                builder.fill(src, dst)
            store = builder.build_store(
                args.out,
                block_size=args.block_size,
                meta={"origin": str(args.edges)},
            )
        info = store.describe()
        print(
            f"wrote {info['n_sources']:,} sources / {info['n_edges']:,} edges "
            f"as {info['n_blocks']} shards to {args.out} "
            f"({info['payload_bytes']:,} payload bytes, "
            f"{info['bits_per_edge']:.2f} bits/edge)"
        )
        return 0

    store = ShardedGraphStore.open(args.store)
    info = store.describe()
    print(f"store {args.store}:")
    for key in (
        "format_version",
        "n_sources",
        "n_edges",
        "n_blocks",
        "block_size",
        "weighted",
        "payload_bytes",
    ):
        value = info[key]
        formatted = (
            f"{value:,}"
            if isinstance(value, int) and not isinstance(value, bool)
            else str(value)
        )
        print(f"  {key}: {formatted}")
    print(f"  bits_per_edge: {info['bits_per_edge']:.2f}")
    if store.meta:
        print(f"  meta: {store.meta}")
    if args.verify:
        store.verify()
        print(f"  verify: all {store.n_blocks} shard digests OK")
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .observability import ledger as ledger_mod

    results_dir = args.results_dir
    ledger_path = args.ledger or (results_dir / "LEDGER.json")
    if args.ledger_command == "ingest":
        entry = ledger_mod.ingest_file(
            ledger_path, args.bench, args.file, label=args.label
        )
        print(
            f"ingested {args.file} as {entry.bench}/{entry.label} "
            f"({len(entry.metrics)} metrics) into {ledger_path}"
        )
        return 0
    if args.ledger_command == "backfill":
        ledger = ledger_mod.backfill(results_dir, ledger_path)
        print(
            f"backfilled {len(ledger.benches())} benches "
            f"({len(ledger.entries)} entries) into {ledger_path}"
        )
        return 0
    if args.ledger_command == "compare":
        findings = ledger_mod.compare_dir(results_dir, ledger_path)
        print(ledger_mod.format_findings(findings))
        failed = [f for f in findings if f.failed]
        if failed:
            print(
                f"\nREGRESSION: {len(failed)} tracked metric(s) regressed "
                f"beyond tolerance",
                file=sys.stderr,
            )
            return 1
        print(f"\nok: {len(findings)} tracked metric(s) within tolerance")
        return 0
    ledger = ledger_mod.Ledger.load(ledger_path)
    print(ledger_mod.format_trend(ledger, bench=args.bench))
    return 0


def ledger_main(
    argv: list[str] | None = None, *, default_results: Path | None = None
) -> int:
    """Entry point for ``benchmarks/ledger.py``: the ledger subcommand
    standalone, with the results directory defaulting to the caller's."""
    parser = build_parser()
    args = parser.parse_args(["ledger", *(sys.argv[1:] if argv is None else argv)])
    if default_results is not None and args.results_dir == Path(
        "benchmarks/results"
    ):
        args.results_dir = default_results
    return _cmd_ledger(args)


_COMMANDS = {
    "rank": _cmd_rank,
    "figures": _cmd_figures,
    "dataset": _cmd_dataset,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "shard": _cmd_shard,
    "compress": _cmd_compress,
    "ledger": _cmd_ledger,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "rank" and args.resume and args.checkpoint_dir is None:
        parser.error(
            "rank: --resume requires --checkpoint-dir (there is nothing to "
            "resume from without a checkpoint directory; pass "
            "--checkpoint-dir DIR or drop --resume)"
        )
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Gauss–Seidel linear-system solver for teleporting-walk rankings.

Solves ``(I - alpha A^T) x = (1 - alpha) c`` with the standard splitting
``A_sys = Lw + Up`` (lower-with-diagonal / strict-upper):

.. math::

    Lw \\, x_{k+1} = b - Up \\, x_k

Each sweep uses :func:`scipy.sparse.linalg.spsolve_triangular`, so Python
never loops over rows.  Gauss–Seidel typically halves the iteration count
versus Jacobi on these systems (Gleich et al. [18] report the same), at a
higher per-sweep cost — quantified in ``bench_ablation_solvers``.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from ..config import RankingParams
from ..errors import ConvergenceError, GraphError
from ..logging_utils import get_logger
from ..observability.tracing import span
from .base import ConvergenceInfo, RankingResult
from .power import residual_norm
from .teleport import uniform_teleport

__all__ = ["gauss_seidel_solve"]

_logger = get_logger(__name__)


def gauss_seidel_solve(
    matrix: sp.csr_matrix,
    params: RankingParams,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    label: str = "",
) -> RankingResult:
    """Solve the ranking linear system with Gauss–Seidel sweeps.

    Parameters mirror :func:`repro.ranking.power.power_iteration`; dangling
    mass follows the paper's "linear" semantics.
    """
    if not sp.issparse(matrix):
        raise GraphError("gauss_seidel_solve requires a scipy sparse matrix")
    matrix = matrix.tocsr()
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"transition matrix must be square, got {matrix.shape}")
    c = uniform_teleport(n) if teleport is None else np.asarray(teleport, dtype=np.float64).ravel()
    if c.size != n:
        raise GraphError(f"teleport length {c.size} != matrix order {n}")
    b = (1.0 - params.alpha) * c

    system = (sp.identity(n, format="csr") - params.alpha * matrix.T.tocsr()).tocsr()
    lower = sp.tril(system, k=0, format="csr")
    upper = sp.triu(system, k=1, format="csr")
    if (lower.diagonal() <= 0).any():
        raise GraphError("Gauss–Seidel needs a positive system diagonal")

    x = c.copy() if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    if x.size != n:
        raise GraphError(f"x0 length {x.size} != matrix order {n}")

    progress = params.progress
    tag = label or "gauss_seidel"
    with span(f"solve:{tag}", solver="gauss_seidel", n=n) as trace:
        if progress is not None:
            progress.on_solve_start(
                tag,
                solver="gauss_seidel",
                n=n,
                tolerance=params.tolerance,
                max_iter=params.max_iter,
            )
        history: list[float] = []
        residual = np.inf
        iterations = 0
        for iterations in range(1, params.max_iter + 1):
            if progress is not None:
                t0 = time.perf_counter()
            rhs = b - upper @ x
            x_next = spsolve_triangular(lower, rhs, lower=True)
            residual = residual_norm(x_next - x, params.norm)
            history.append(residual)
            x = x_next
            if progress is not None:
                progress.on_iteration(
                    tag,
                    iterations,
                    residual,
                    step_seconds=time.perf_counter() - t0,
                )
            if residual < params.tolerance:
                break
        converged = residual < params.tolerance
        if trace is not None:
            trace.meta["iterations"] = iterations
    info = ConvergenceInfo(
        converged=converged,
        iterations=iterations,
        residual=float(residual),
        tolerance=params.tolerance,
        residual_history=tuple(history),
    )
    if progress is not None:
        progress.on_solve_end(tag, info)
    if not converged:
        if params.strict:
            raise ConvergenceError(iterations, residual, params.tolerance)
        _logger.warning(
            "Gauss–Seidel did not converge: residual %.3e after %d iterations",
            residual,
            iterations,
        )
    return RankingResult(x, info, label=label)

"""Gauss–Seidel linear-system solver for teleporting-walk rankings.

Solves ``(I - alpha A^T) x = (1 - alpha) c`` with the standard splitting
``A_sys = Lw + Up`` (lower-with-diagonal / strict-upper):

.. math::

    Lw \\, x_{k+1} = b - Up \\, x_k

Each sweep uses :func:`scipy.sparse.linalg.spsolve_triangular`, so Python
never loops over rows.  Gauss–Seidel typically halves the iteration count
versus Jacobi on these systems (Gleich et al. [18] report the same), at a
higher per-sweep cost — quantified in ``bench_ablation_solvers``.

The sweep loop itself lives in
:func:`repro.linalg.iterate.iterate_to_fixpoint`; this module contributes
only the triangular splitting.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from ..config import RankingParams
from ..errors import GraphError
from ..linalg.iterate import iterate_to_fixpoint
from ..linalg.operator import TransitionOperator, as_matrix
from ..linalg.registry import register_solver
from .base import RankingResult
from .teleport import uniform_teleport

__all__ = ["gauss_seidel_solve"]


def gauss_seidel_solve(
    operand: "sp.csr_matrix | TransitionOperator",
    params: RankingParams,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    label: str = "",
    dangling: str = "linear",
    kernel: str | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> RankingResult:
    """Solve the ranking linear system with Gauss–Seidel sweeps.

    Parameters mirror :func:`repro.ranking.power.power_iteration`; dangling
    mass follows the paper's "linear" semantics, so the ``dangling`` and
    ``kernel`` arguments of the uniform solver signature are accepted and
    ignored.  Operator operands are materialized — the triangular
    splitting needs the explicit matrix.
    """
    del dangling, kernel  # linear-solver path: no strategy/kernel choice
    matrix = as_matrix(operand)
    n = matrix.shape[0]
    c = uniform_teleport(n) if teleport is None else np.asarray(teleport, dtype=np.float64).ravel()
    if c.size != n:
        raise GraphError(f"teleport length {c.size} != matrix order {n}")
    b = (1.0 - params.alpha) * c

    system = (sp.identity(n, format="csr") - params.alpha * matrix.T.tocsr()).tocsr()
    lower = sp.tril(system, k=0, format="csr")
    upper = sp.triu(system, k=1, format="csr")
    if (lower.diagonal() <= 0).any():
        raise GraphError("Gauss–Seidel needs a positive system diagonal")

    x = c.copy() if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    if x.size != n:
        raise GraphError(f"x0 length {x.size} != matrix order {n}")

    x, info = iterate_to_fixpoint(
        lambda v: spsolve_triangular(lower, b - upper @ v, lower=True),
        x,
        params,
        solver="gauss_seidel",
        label=label or "gauss_seidel",
        callback=callback,
    )
    return RankingResult(x, info, label=label)


register_solver("gauss_seidel", gauss_seidel_solve, overwrite=True)

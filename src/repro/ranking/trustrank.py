"""TrustRank (Gyöngyi, Garcia-Molina & Pedersen [22]) — the Section 7
comparator.

"Rather than identify spam pages outright, the TrustRank approach
propagates trust from a seed set of trusted Web pages.  Such a technique
is still vulnerable to honeypot and hijacking vulnerabilities, in which
high-value trusted pages may be especially targeted."

TrustRank is a personalized PageRank whose teleportation vector is
uniform over a hand-picked *trusted* seed set:

.. math::

    t = \\alpha M^{T} t + (1 - \\alpha) d_{\\text{trust}}

``bench_comparators.py`` demonstrates the paper's claim: a honeypot that
captures links from trusted pages inherits trust directly, while
SR-SourceRank's consensus weighting + throttling blunt the same attack.
"""

from __future__ import annotations

import numpy as np

from ..config import RankingParams
from ..errors import ConfigError
from ..graph.matrix import transition_matrix
from ..graph.pagegraph import PageGraph
from ..linalg.registry import solver_registry
from .base import RankingResult
from .power import power_iteration
from .teleport import seeded_teleport

__all__ = ["trustrank", "select_trust_seeds"]


def trustrank(
    graph: PageGraph,
    trusted_seeds: np.ndarray | list[int],
    params: RankingParams | None = None,
    *,
    dangling: str = "linear",
    solver: str | None = None,
    kernel: str | None = None,
) -> RankingResult:
    """Compute TrustRank over a page graph from a trusted seed set.

    Parameters
    ----------
    graph:
        The directed page graph.
    trusted_seeds:
        Page ids of the hand-verified good pages.
    params:
        Mixing parameter and stopping rule (the TrustRank paper also uses
        ``alpha = 0.85``).
    dangling:
        Dangling-mass strategy, as in :func:`repro.ranking.pagerank.pagerank`.
    solver, kernel:
        Registry solver name and power-kernel choice, as in
        :func:`repro.ranking.pagerank.pagerank`.

    Returns
    -------
    RankingResult
        L1-normalized trust scores; unreachable-from-seeds pages score 0
        mass beyond teleportation.
    """
    graph.require_nonempty()
    params = params or RankingParams()
    seeds = np.unique(np.asarray(trusted_seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ConfigError("trustrank requires a non-empty trusted seed set")
    if seeds[0] < 0 or seeds[-1] >= graph.n_nodes:
        raise ConfigError(
            f"seed ids must lie in [0, {graph.n_nodes}), got range "
            f"[{seeds[0]}, {seeds[-1]}]"
        )
    d = seeded_teleport(graph.n_nodes, seeds)
    return solver_registry.solve(
        transition_matrix(graph),
        params,
        solver=solver,
        label="trustrank",
        teleport=d,
        dangling=dangling,
        kernel=kernel,
    )


def select_trust_seeds(
    graph: PageGraph,
    n_seeds: int,
    *,
    exclude: np.ndarray | list[int] | None = None,
    params: RankingParams | None = None,
) -> np.ndarray:
    """Pick trust seeds by inverse PageRank, per the TrustRank paper.

    Gyöngyi et al. select the pages whose out-links reach the most of the
    Web — the top pages of an *inverse* PageRank — for human inspection.
    ``exclude`` models the human inspection step: known-bad candidates
    (e.g. planted spam pages in the benches) are skipped.
    """
    graph.require_nonempty()
    n_seeds = int(n_seeds)
    if not 1 <= n_seeds <= graph.n_nodes:
        raise ConfigError(
            f"n_seeds must lie in [1, {graph.n_nodes}], got {n_seeds}"
        )
    from ..graph.transforms import reverse_graph

    params = params or RankingParams()
    inv = power_iteration(
        transition_matrix(reverse_graph(graph)),
        params,
        dangling="teleport",
        label="inverse-pagerank",
    )
    order = inv.order()
    if exclude is not None:
        bad = np.asarray(exclude, dtype=np.int64)
        order = order[~np.isin(order, bad)]
    if order.size < n_seeds:
        raise ConfigError(
            f"only {order.size} eligible seed candidates, need {n_seeds}"
        )
    return np.sort(order[:n_seeds])

"""HITS (Kleinberg [24]) — the other classic link-analysis baseline.

Section 2 names HITS alongside PageRank as a link-based algorithm whose
"fundamental assumption that a link ... is an authentic conferral of
authority" spammers exploit.  We implement the standard mutual-
reinforcement iteration

.. math::

    a \\gets A^{T} h / ||A^{T} h||_2, \\qquad
    h \\gets A a / ||A a||_2

so the attack benches can show that hijacking corrupts HITS authorities
just as it corrupts PageRank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RankingParams
from ..errors import ConvergenceError, EmptyGraphError
from ..graph.pagegraph import PageGraph
from .base import ConvergenceInfo, RankingResult
from .power import residual_norm

__all__ = ["hits", "HitsResult"]


@dataclass(frozen=True, slots=True)
class HitsResult:
    """Paired authority and hub rankings from one HITS run."""

    authorities: RankingResult
    hubs: RankingResult


def hits(
    graph: PageGraph,
    params: RankingParams | None = None,
) -> HitsResult:
    """Run HITS to convergence on a page graph.

    Parameters
    ----------
    graph:
        The directed page graph (typically a query-focused subgraph in
        Kleinberg's setting; the benches run it on whole synthetic webs).
    params:
        Stopping rule; ``alpha`` is unused (HITS has no teleportation —
        which is precisely why isolated spam structures can capture it).

    Returns
    -------
    HitsResult
        L1-normalized authority and hub score vectors.

    Raises
    ------
    ConvergenceError
        If ``params.strict`` and the iteration fails to converge.
    """
    graph.require_nonempty()
    if graph.n_edges == 0:
        raise EmptyGraphError("HITS requires at least one edge")
    params = params or RankingParams()
    adjacency = graph.to_scipy()
    at = adjacency.T.tocsr()

    n = graph.n_nodes
    a = np.full(n, 1.0 / np.sqrt(n))
    h = np.full(n, 1.0 / np.sqrt(n))
    history: list[float] = []
    residual = np.inf
    iterations = 0
    for iterations in range(1, params.max_iter + 1):
        a_next = at @ h
        norm_a = np.linalg.norm(a_next)
        if norm_a > 0:
            a_next /= norm_a
        h_next = adjacency @ a_next
        norm_h = np.linalg.norm(h_next)
        if norm_h > 0:
            h_next /= norm_h
        residual = max(
            residual_norm(a_next - a, params.norm),
            residual_norm(h_next - h, params.norm),
        )
        history.append(residual)
        a, h = a_next, h_next
        if residual < params.tolerance:
            break
    converged = residual < params.tolerance
    if not converged and params.strict:
        raise ConvergenceError(iterations, residual, params.tolerance)
    info = ConvergenceInfo(
        converged=converged,
        iterations=iterations,
        residual=float(residual),
        tolerance=params.tolerance,
        residual_history=tuple(history),
    )
    # Nodes with zero authority/hub mass are legal (e.g. pure hubs); add
    # nothing — RankingResult L1-normalizes the non-negative vectors.
    eps = 0.0
    return HitsResult(
        authorities=RankingResult(a + eps, info, label="hits-authority"),
        hubs=RankingResult(h + eps, info, label="hits-hub"),
    )

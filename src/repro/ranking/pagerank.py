"""PageRank over the page graph (the paper's baseline, Eq. 1).

.. math::

    \\pi = \\alpha M^{T} \\pi + (1 - \\alpha) e

with ``M`` the uniform out-degree-normalized page transition matrix and
``e`` the uniform static score vector.
"""

from __future__ import annotations

import numpy as np

from ..config import RankingParams
from ..graph.matrix import transition_matrix
from ..graph.pagegraph import PageGraph
from ..linalg.registry import solver_registry
from .base import RankingResult

__all__ = ["pagerank"]


def pagerank(
    graph: PageGraph,
    params: RankingParams | None = None,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    solver: str | None = None,
    dangling: str = "linear",
    kernel: str | None = None,
) -> RankingResult:
    """Compute the PageRank vector of a page graph.

    Parameters
    ----------
    graph:
        The directed page graph.
    params:
        Mixing parameter and stopping rule; paper defaults when omitted
        (``alpha=0.85``, L2 tolerance ``1e-9``).
    teleport:
        Optional personalized static score vector ``e``; uniform when
        omitted.
    x0:
        Warm-start vector — pass a previous PageRank when re-ranking a
        slightly modified graph (the spam-scenario experiments do).
    solver:
        Any solver name known to the
        :data:`~repro.linalg.registry.solver_registry` (``"power"`` —
        the paper's choice — ``"jacobi"``, ``"gauss_seidel"``, or a
        custom registration); ``None`` takes ``params.solver``.
    dangling:
        Dangling-mass strategy (power solver only; the linear solvers use
        the paper's leak-and-renormalize semantics by construction).
    kernel:
        Matvec kernel for the power solver; ``None`` takes
        ``params.kernel``.

    Returns
    -------
    RankingResult
        L1-normalized PageRank scores plus convergence info.
    """
    graph.require_nonempty()
    params = params or RankingParams()
    return solver_registry.solve(
        transition_matrix(graph),
        params,
        solver=solver,
        label="pagerank",
        teleport=teleport,
        x0=x0,
        dangling=dangling,
        kernel=kernel,
    )

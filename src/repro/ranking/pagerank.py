"""PageRank over the page graph (the paper's baseline, Eq. 1).

.. math::

    \\pi = \\alpha M^{T} \\pi + (1 - \\alpha) e

with ``M`` the uniform out-degree-normalized page transition matrix and
``e`` the uniform static score vector.
"""

from __future__ import annotations

import numpy as np

from ..config import RankingParams
from ..errors import ConfigError
from ..graph.matrix import transition_matrix
from ..graph.pagegraph import PageGraph
from .base import RankingResult
from .gauss_seidel import gauss_seidel_solve
from .jacobi import jacobi_solve
from .power import power_iteration

__all__ = ["pagerank"]

_SOLVERS = ("power", "jacobi", "gauss_seidel")


def pagerank(
    graph: PageGraph,
    params: RankingParams | None = None,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    solver: str = "power",
    dangling: str = "linear",
    kernel: str = "scipy",
) -> RankingResult:
    """Compute the PageRank vector of a page graph.

    Parameters
    ----------
    graph:
        The directed page graph.
    params:
        Mixing parameter and stopping rule; paper defaults when omitted
        (``alpha=0.85``, L2 tolerance ``1e-9``).
    teleport:
        Optional personalized static score vector ``e``; uniform when
        omitted.
    x0:
        Warm-start vector — pass a previous PageRank when re-ranking a
        slightly modified graph (the spam-scenario experiments do).
    solver:
        ``"power"`` (paper's choice), ``"jacobi"``, or ``"gauss_seidel"``.
    dangling:
        Dangling-mass strategy (power solver only; the linear solvers use
        the paper's leak-and-renormalize semantics by construction).
    kernel:
        Matvec kernel for the power solver.

    Returns
    -------
    RankingResult
        L1-normalized PageRank scores plus convergence info.
    """
    graph.require_nonempty()
    params = params or RankingParams()
    matrix = transition_matrix(graph)
    if solver == "power":
        return power_iteration(
            matrix,
            params,
            teleport=teleport,
            x0=x0,
            dangling=dangling,
            kernel=kernel,  # type: ignore[arg-type]
            label="pagerank",
        )
    if solver == "jacobi":
        return jacobi_solve(matrix, params, teleport=teleport, x0=x0, label="pagerank")
    if solver == "gauss_seidel":
        return gauss_seidel_solve(
            matrix, params, teleport=teleport, x0=x0, label="pagerank"
        )
    raise ConfigError(f"solver must be one of {_SOLVERS}, got {solver!r}")

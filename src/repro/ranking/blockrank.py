"""BlockRank-style two-level PageRank acceleration (Kamvar et al. [23]).

The paper's source view is motivated by the same block structure of the
Web that Kamvar et al. exploit *computationally*: pages link mostly
within their host, so the global PageRank is well-approximated by
stitching together per-source local PageRanks weighted by a source-level
ranking — and that approximation is an excellent warm start for the
global power iteration.

Algorithm:

1. for each source, compute the local PageRank of its induced page
   subgraph (all sources solved simultaneously: the block-diagonal
   system is one big sparse matrix, so one power iteration drives every
   block at once);
2. aggregate the page transition matrix into a source-level chain
   weighted by the local mass
   (``B_ij = sum_{p in i} local[p] * M[p, pages of j]`` — Kamvar et
   al.'s BlockRank matrix, *not* the paper's consensus weighting, which
   approximates a different quantity) and rank the sources on it;
3. initial global vector: ``x0[p] = local[p] * block_score[s(p)]``;
4. finish with the standard global power iteration.

``bench_ablation_blockrank.py`` measures the iteration savings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams
from ..errors import SourceAssignmentError
from ..graph.matrix import row_normalize, transition_matrix
from ..graph.pagegraph import PageGraph
from ..logging_utils import get_logger, log_duration
from ..observability.tracing import span
from ..sources.assignment import SourceAssignment
from .base import RankingResult
from .power import power_iteration

__all__ = ["blockrank", "BlockRankResult", "local_pagerank"]

_logger = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class BlockRankResult:
    """Global PageRank plus the intermediate two-level artifacts."""

    global_ranking: RankingResult
    local_scores: np.ndarray
    source_ranking: RankingResult
    warm_start_iterations: int
    cold_iterations: int | None = None


def local_pagerank(
    graph: PageGraph,
    assignment: SourceAssignment,
    params: RankingParams,
) -> np.ndarray:
    """Per-source local PageRank of every page, all blocks at once.

    The intra-source subgraph of every source is extracted into a single
    block-diagonal transition matrix (edges crossing sources are simply
    dropped), and one teleporting power iteration over it converges every
    block simultaneously.  The result is normalized to sum to one
    *within each source*.
    """
    if assignment.n_pages != graph.n_nodes:
        raise SourceAssignmentError(
            f"assignment covers {assignment.n_pages} pages, graph has "
            f"{graph.n_nodes}"
        )
    src, dst = graph.edge_arrays()
    a = assignment.page_to_source
    mask = a[src] == a[dst]
    intra = sp.csr_matrix(
        (np.ones(int(mask.sum())), (src[mask], dst[mask])),
        shape=(graph.n_nodes, graph.n_nodes),
    )
    intra = row_normalize(intra, copy=False)
    # Per-block teleportation: uniform within each source.
    sizes = assignment.source_sizes.astype(np.float64)
    teleport = 1.0 / sizes[a]
    teleport /= teleport.sum()
    local = power_iteration(
        intra,
        params,
        teleport=teleport,
        dangling="teleport",
        label="local-pagerank",
    ).scores.copy()
    # Renormalize within each source so each block is a distribution.
    block_mass = np.bincount(a, weights=local, minlength=assignment.n_sources)
    local /= block_mass[a]
    return local


def blockrank(
    graph: PageGraph,
    assignment: SourceAssignment,
    params: RankingParams | None = None,
    *,
    measure_cold: bool = False,
) -> BlockRankResult:
    """Two-level (BlockRank-style) global PageRank.

    Parameters
    ----------
    graph, assignment:
        The page graph and its page→source map.
    params:
        Mixing parameter and stopping rule for every stage.
    measure_cold:
        When True, also run the cold-start global iteration and record
        its iteration count for comparison (used by the ablation bench).

    Returns
    -------
    BlockRankResult
        The global ranking (identical fixed point to plain
        :func:`~repro.ranking.pagerank.pagerank`) plus stage artifacts.
    """
    params = params or RankingParams()
    with span("blockrank:local"), log_duration(_logger, "blockrank local stage"):
        local = local_pagerank(graph, assignment, params)

    # Kamvar et al.'s aggregation: B = S^T diag(local) M S where S is the
    # page->source indicator.  Fully sparse; dangling page mass simply
    # leaks (linear semantics) as in the global iteration.
    a = assignment.page_to_source
    n_s = assignment.n_sources
    with span("blockrank:aggregate"), log_duration(_logger, "blockrank aggregate stage"):
        matrix = transition_matrix(graph)
        scaled = sp.diags(local) @ matrix
        indicator = sp.csr_matrix(
            (np.ones(graph.n_nodes), (np.arange(graph.n_nodes), a)),
            shape=(graph.n_nodes, n_s),
        )
        block = (indicator.T @ scaled @ indicator).tocsr()
        # Aggregated teleport: a uniform page teleport lands in source i with
        # probability size_i / n.
        agg_teleport = assignment.source_sizes.astype(np.float64)
        agg_teleport /= agg_teleport.sum()
        source_ranking = power_iteration(
            block, params, teleport=agg_teleport, label="blockrank-aggregate"
        )
    x0 = local * source_ranking.scores[a]
    x0 /= x0.sum()

    with span("blockrank:global"), log_duration(_logger, "blockrank global stage"):
        warm = power_iteration(
            matrix, params, x0=x0, dangling="teleport", label="blockrank"
        )
    _logger.debug(
        "blockrank: warm start converged in %d iterations over %d pages / %d sources",
        warm.convergence.iterations,
        graph.n_nodes,
        n_s,
    )
    cold_iters = None
    if measure_cold:
        cold = power_iteration(
            matrix, params, dangling="teleport", label="pagerank-cold"
        )
        cold_iters = cold.convergence.iterations
        _logger.debug(
            "blockrank: cold start took %d iterations (warm saved %d)",
            cold_iters,
            cold_iters - warm.convergence.iterations,
        )
    return BlockRankResult(
        global_ranking=warm,
        local_scores=local,
        source_ranking=source_ranking,
        warm_start_iterations=warm.convergence.iterations,
        cold_iterations=cold_iters,
    )

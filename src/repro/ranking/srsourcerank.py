"""Spam-Resilient SourceRank (Eq. 3 — the paper's contribution).

The selective random walk of Section 3.4: at source ``s_i`` the walker

* follows the self-edge with probability ``α κ_i``;
* follows an out-edge with probability ``α (1 − κ_i)``;
* teleports with probability ``1 − α``.

Equivalently, the stationary distribution of
``σᵀ = α σᵀ T'' + (1 − α) cᵀ`` where ``T''`` is the influence-throttled
transition matrix.
"""

from __future__ import annotations

import numpy as np

from ..config import RankingParams
from ..errors import ConfigError
from ..sources.sourcegraph import SourceGraph
from ..throttle.transform import throttle_transform
from ..throttle.vector import ThrottleVector
from .base import RankingResult
from .gauss_seidel import gauss_seidel_solve
from .jacobi import jacobi_solve
from .power import power_iteration

__all__ = ["spam_resilient_sourcerank"]


def spam_resilient_sourcerank(
    source_graph: SourceGraph,
    kappa: ThrottleVector | np.ndarray | None = None,
    params: RankingParams | None = None,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    solver: str = "power",
    kernel: str = "scipy",
    full_throttle: str = "self",
) -> RankingResult:
    """Compute the Spam-Resilient SourceRank vector σ.

    Parameters
    ----------
    source_graph:
        The weighted source graph (consensus weighting for the paper's
        model).
    kappa:
        Throttling vector; ``None`` or all-zeros degrades gracefully to
        baseline SourceRank (the κ=0 walk is the unthrottled walk).
    params:
        Mixing parameter and stopping rule (paper defaults when omitted).
    teleport, x0, solver, kernel:
        As in :func:`repro.ranking.pagerank.pagerank`.
    full_throttle:
        How κ = 1 sources behave: ``"self"`` (literal Section 3.3
        transform) or ``"dangling"`` (complete muting — the reading
        Fig. 5 needs; see :mod:`repro.throttle.transform`).

    Returns
    -------
    RankingResult
        L1-normalized σ plus convergence info.
    """
    params = params or RankingParams()
    n = source_graph.n_sources
    if kappa is None:
        kappa = ThrottleVector.zeros(n)
    elif not isinstance(kappa, ThrottleVector):
        kappa = ThrottleVector(kappa)
    matrix = throttle_transform(
        source_graph.matrix, kappa, full_throttle=full_throttle
    )
    if solver == "power":
        return power_iteration(
            matrix,
            params,
            teleport=teleport,
            x0=x0,
            kernel=kernel,  # type: ignore[arg-type]
            label="sr-sourcerank",
        )
    if solver == "jacobi":
        return jacobi_solve(
            matrix, params, teleport=teleport, x0=x0, label="sr-sourcerank"
        )
    if solver == "gauss_seidel":
        return gauss_seidel_solve(
            matrix, params, teleport=teleport, x0=x0, label="sr-sourcerank"
        )
    raise ConfigError(
        f"solver must be 'power', 'jacobi', or 'gauss_seidel', got {solver!r}"
    )

"""Spam-Resilient SourceRank (Eq. 3 — the paper's contribution).

The selective random walk of Section 3.4: at source ``s_i`` the walker

* follows the self-edge with probability ``α κ_i``;
* follows an out-edge with probability ``α (1 − κ_i)``;
* teleports with probability ``1 − α``.

Equivalently, the stationary distribution of
``σᵀ = α σᵀ T'' + (1 − α) cᵀ`` where ``T''`` is the influence-throttled
transition matrix.

``T''`` is never materialized here: the throttle transform is applied
lazily by :class:`~repro.linalg.operator.ThrottledOperator` (a per-row
out-scale plus a diagonal self-edge term on top of the base matrix), so a
κ-sweep or incremental rerun reuses one base matrix across every κ.
Solvers that require an explicit system matrix (Jacobi, Gauss–Seidel)
materialize it themselves through the operator, landing on exactly the
matrix :func:`~repro.throttle.transform.throttle_transform` would build.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..config import RankingParams
from ..linalg.operator import CsrOperator, ThrottledOperator
from ..linalg.registry import solver_registry
from ..sources.sourcegraph import SourceGraph
from ..throttle.vector import ThrottleVector
from .base import RankingResult

__all__ = ["spam_resilient_sourcerank"]


def spam_resilient_sourcerank(
    source_graph: SourceGraph,
    kappa: ThrottleVector | np.ndarray | None = None,
    params: RankingParams | None = None,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    solver: str | None = None,
    kernel: str | None = None,
    full_throttle: str = "self",
    operator: CsrOperator | None = None,
    callback: "Callable[[int, float], None] | None" = None,
) -> RankingResult:
    """Compute the Spam-Resilient SourceRank vector σ.

    Parameters
    ----------
    source_graph:
        The weighted source graph (consensus weighting for the paper's
        model).
    kappa:
        Throttling vector; ``None`` or all-zeros degrades gracefully to
        baseline SourceRank (the κ=0 walk is the unthrottled walk).
    params:
        Mixing parameter and stopping rule (paper defaults when omitted).
    teleport, x0, solver, kernel:
        As in :func:`repro.ranking.pagerank.pagerank`.
    full_throttle:
        How κ = 1 sources behave: ``"self"`` (literal Section 3.3
        transform) or ``"dangling"`` (complete muting — the reading
        Fig. 5 needs; see :mod:`repro.throttle.transform`).
    operator:
        Prebuilt :class:`~repro.linalg.operator.CsrOperator` over the
        *unthrottled* source matrix; pass one to amortize kernel setup
        across a κ-sweep.  The caller keeps ownership of it.
    callback:
        Per-iteration ``(iteration, residual)`` hook forwarded to the
        solver (part of the uniform solver contract).

    Returns
    -------
    RankingResult
        L1-normalized σ plus convergence info.
    """
    params = params or RankingParams()
    n = source_graph.n_sources
    if kappa is None:
        kappa = ThrottleVector.zeros(n)
    elif not isinstance(kappa, ThrottleVector):
        kappa = ThrottleVector(kappa)
    resolved_kernel = kernel if kernel is not None else getattr(params, "kernel", "scipy")
    throttled = ThrottledOperator(
        source_graph.matrix if operator is None else operator,
        kappa,
        full_throttle=full_throttle,
        kernel=resolved_kernel,
    )
    try:
        return solver_registry.solve(
            throttled,
            params,
            solver=solver,
            label="sr-sourcerank",
            teleport=teleport,
            x0=x0,
            kernel=kernel,
            callback=callback,
        )
    finally:
        throttled.close()

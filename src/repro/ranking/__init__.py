"""Ranking engines: PageRank, SourceRank, and Spam-Resilient SourceRank.

All three rankings are stationary distributions of teleporting random
walks; they differ in the transition matrix:

* :func:`~repro.ranking.pagerank.pagerank` — the page-level matrix ``M``
  (Eq. 1 of the paper);
* :func:`~repro.ranking.sourcerank.sourcerank` — the source-level matrix
  ``T'`` with no throttling (the Fig. 5 baseline);
* :func:`~repro.ranking.srsourcerank.spam_resilient_sourcerank` — the
  influence-throttled matrix ``T''`` (Eq. 3, the paper's contribution).

Three linear solvers are provided (power iteration — the paper's choice —
plus Jacobi and Gauss–Seidel for the solver ablation), and the power
iteration can run on three matvec kernels (scipy, cache-chunked,
shared-memory parallel).
"""

from .base import ConvergenceInfo, RankingResult
from .teleport import uniform_teleport, seeded_teleport, personalized_teleport
from .dangling import DANGLING_STRATEGIES, dangling_vector
from .power import power_iteration, PowerOperator
from .jacobi import jacobi_solve
from .gauss_seidel import gauss_seidel_solve
from .pagerank import pagerank
from .sourcerank import sourcerank
from .srsourcerank import spam_resilient_sourcerank
from .hits import hits, HitsResult
from .trustrank import trustrank, select_trust_seeds
from .blockrank import blockrank, BlockRankResult, local_pagerank
from .incremental import IncrementalPageRank, IncrementalSourceRank

__all__ = [
    "ConvergenceInfo",
    "RankingResult",
    "uniform_teleport",
    "seeded_teleport",
    "personalized_teleport",
    "DANGLING_STRATEGIES",
    "dangling_vector",
    "power_iteration",
    "PowerOperator",
    "jacobi_solve",
    "gauss_seidel_solve",
    "pagerank",
    "sourcerank",
    "spam_resilient_sourcerank",
    "hits",
    "HitsResult",
    "trustrank",
    "select_trust_seeds",
    "blockrank",
    "BlockRankResult",
    "local_pagerank",
    "IncrementalPageRank",
    "IncrementalSourceRank",
]

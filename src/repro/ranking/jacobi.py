"""Jacobi linear-system solver for teleporting-walk rankings.

The paper notes (Section 2) that Eq. 1 "can be solved using a stationary
iterative method like Jacobi iterations [18]".  The linear form is

.. math::

    (I - \\alpha A^{T}) \\, x = (1 - \\alpha) \\, c

and Jacobi splits the system matrix into its diagonal ``D`` and off-diagonal
remainder: ``x_{k+1} = D^{-1} (b + \\alpha A^{T}_{off} x_k)``.  On the page
matrix the diagonal of ``A`` is zero and Jacobi coincides with the power
method on the linear form; on the *source* matrix the self-edges give a
non-trivial diagonal and Jacobi genuinely differs — which is why the solver
ablation exists.

The sweep loop itself lives in
:func:`repro.linalg.iterate.iterate_to_fixpoint`; this module contributes
only the splitting.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams
from ..errors import GraphError
from ..linalg.iterate import iterate_to_fixpoint
from ..linalg.operator import TransitionOperator, as_matrix
from ..linalg.registry import register_solver
from .base import RankingResult
from .teleport import uniform_teleport

__all__ = ["jacobi_solve"]


def jacobi_solve(
    operand: "sp.csr_matrix | TransitionOperator",
    params: RankingParams,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    label: str = "",
    dangling: str = "linear",
    kernel: str | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> RankingResult:
    """Solve the ranking linear system with Jacobi iterations.

    Parameters mirror :func:`repro.ranking.power.power_iteration`; dangling
    mass follows the paper's "linear" semantics (leak + final
    renormalization inside :class:`~repro.ranking.base.RankingResult`), so
    the ``dangling`` and ``kernel`` arguments of the uniform solver
    signature are accepted and ignored.  Operator operands are
    materialized — Jacobi needs the explicit matrix diagonal.
    """
    del dangling, kernel  # linear-solver path: no strategy/kernel choice
    matrix = as_matrix(operand)
    n = matrix.shape[0]
    c = uniform_teleport(n) if teleport is None else np.asarray(teleport, dtype=np.float64).ravel()
    if c.size != n:
        raise GraphError(f"teleport length {c.size} != matrix order {n}")
    b = (1.0 - params.alpha) * c

    diag = matrix.diagonal()
    d = 1.0 - params.alpha * diag
    if (d <= 0).any():
        raise GraphError(
            "Jacobi diagonal must be positive: found alpha * A_ii >= 1"
        )
    inv_d = 1.0 / d
    # Off-diagonal part of alpha * A^T, as CSR for fast matvec.
    off = (params.alpha * (matrix - sp.diags(diag))).T.tocsr()

    x = c.copy() if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    if x.size != n:
        raise GraphError(f"x0 length {x.size} != matrix order {n}")

    x, info = iterate_to_fixpoint(
        lambda v: inv_d * (b + off @ v),
        x,
        params,
        solver="jacobi",
        label=label or "jacobi",
        callback=callback,
    )
    return RankingResult(x, info, label=label)


register_solver("jacobi", jacobi_solve, overwrite=True)

"""Jacobi linear-system solver for teleporting-walk rankings.

The paper notes (Section 2) that Eq. 1 "can be solved using a stationary
iterative method like Jacobi iterations [18]".  The linear form is

.. math::

    (I - \\alpha A^{T}) \\, x = (1 - \\alpha) \\, c

and Jacobi splits the system matrix into its diagonal ``D`` and off-diagonal
remainder: ``x_{k+1} = D^{-1} (b + \\alpha A^{T}_{off} x_k)``.  On the page
matrix the diagonal of ``A`` is zero and Jacobi coincides with the power
method on the linear form; on the *source* matrix the self-edges give a
non-trivial diagonal and Jacobi genuinely differs — which is why the solver
ablation exists.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams
from ..errors import ConvergenceError, GraphError
from ..logging_utils import get_logger
from ..observability.tracing import span
from .base import ConvergenceInfo, RankingResult
from .power import residual_norm
from .teleport import uniform_teleport

__all__ = ["jacobi_solve"]

_logger = get_logger(__name__)


def jacobi_solve(
    matrix: sp.csr_matrix,
    params: RankingParams,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    label: str = "",
) -> RankingResult:
    """Solve the ranking linear system with Jacobi iterations.

    Parameters mirror :func:`repro.ranking.power.power_iteration`; dangling
    mass follows the paper's "linear" semantics (leak + final
    renormalization inside :class:`~repro.ranking.base.RankingResult`).
    """
    if not sp.issparse(matrix):
        raise GraphError("jacobi_solve requires a scipy sparse matrix")
    matrix = matrix.tocsr()
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"transition matrix must be square, got {matrix.shape}")
    c = uniform_teleport(n) if teleport is None else np.asarray(teleport, dtype=np.float64).ravel()
    if c.size != n:
        raise GraphError(f"teleport length {c.size} != matrix order {n}")
    b = (1.0 - params.alpha) * c

    diag = matrix.diagonal()
    d = 1.0 - params.alpha * diag
    if (d <= 0).any():
        raise GraphError(
            "Jacobi diagonal must be positive: found alpha * A_ii >= 1"
        )
    inv_d = 1.0 / d
    # Off-diagonal part of alpha * A^T, as CSR for fast matvec.
    off = (params.alpha * (matrix - sp.diags(diag))).T.tocsr()

    x = c.copy() if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    if x.size != n:
        raise GraphError(f"x0 length {x.size} != matrix order {n}")

    progress = params.progress
    tag = label or "jacobi"
    with span(f"solve:{tag}", solver="jacobi", n=n) as trace:
        if progress is not None:
            progress.on_solve_start(
                tag,
                solver="jacobi",
                n=n,
                tolerance=params.tolerance,
                max_iter=params.max_iter,
            )
        history: list[float] = []
        residual = np.inf
        iterations = 0
        for iterations in range(1, params.max_iter + 1):
            if progress is not None:
                t0 = time.perf_counter()
            x_next = inv_d * (b + off @ x)
            residual = residual_norm(x_next - x, params.norm)
            history.append(residual)
            x = x_next
            if progress is not None:
                progress.on_iteration(
                    tag,
                    iterations,
                    residual,
                    step_seconds=time.perf_counter() - t0,
                )
            if residual < params.tolerance:
                break
        converged = residual < params.tolerance
        if trace is not None:
            trace.meta["iterations"] = iterations
    info = ConvergenceInfo(
        converged=converged,
        iterations=iterations,
        residual=float(residual),
        tolerance=params.tolerance,
        residual_history=tuple(history),
    )
    if progress is not None:
        progress.on_solve_end(tag, info)
    if not converged:
        if params.strict:
            raise ConvergenceError(iterations, residual, params.tolerance)
        _logger.warning(
            "Jacobi did not converge: residual %.3e after %d iterations",
            residual,
            iterations,
        )
    return RankingResult(x, info, label=label)

"""Dangling-node strategies.

The paper's page matrix ``M`` leaves dangling rows all-zero, and its linear
formulation (Eq. 3) simply lets that probability mass leak, renormalizing
``σ/||σ||`` at the end.  Alternative conventions from the PageRank
literature are also provided because the solver ablation compares them:

* ``"linear"`` — leak + final renormalization (paper semantics, default);
* ``"teleport"`` — redistribute dangling mass by the teleport vector each
  iteration (strongly-preferred in Langville & Meyer [25]);
* ``"self"`` — give each dangling node a self-loop.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError

__all__ = ["DANGLING_STRATEGIES", "dangling_vector", "apply_self_loops"]

DANGLING_STRATEGIES = ("linear", "teleport", "self")


def dangling_vector(matrix: sp.csr_matrix, *, atol: float = 1e-12) -> np.ndarray:
    """Boolean mask of rows whose transition mass is (numerically) zero."""
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    return sums <= atol


def apply_self_loops(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Return a copy of ``matrix`` with unit self-loops on dangling rows."""
    mask = dangling_vector(matrix)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return matrix
    fix = sp.coo_matrix(
        (np.ones(idx.size), (idx, idx)), shape=matrix.shape
    ).tocsr()
    return (matrix + fix).tocsr()


def check_strategy(strategy: str) -> str:
    """Validate a dangling-strategy name."""
    if strategy not in DANGLING_STRATEGIES:
        raise ConfigError(
            f"dangling strategy must be one of {DANGLING_STRATEGIES}, got {strategy!r}"
        )
    return strategy

"""Incremental rank maintenance for evolving webs.

The Fig. 6/7 sweeps re-rank a graph after every injected attack; doing
that cold is wasteful because the perturbation is tiny.
:class:`IncrementalPageRank` and :class:`IncrementalSourceRank` make the
warm-start pattern a first-class API: they hold the last converged vector
and, on each graph update, re-solve from it (padding new pages/sources
with teleport-level mass).  The fixed point is identical to a cold solve
— only the iteration count changes — which the tests assert exactly.

Both classes are thread-safe: updates are serialized behind an internal
lock (a warm start is inherently sequential — each solve consumes the
previous result), and ``current``/``reset`` take the same lock so a
reader can never observe a torn ``_last``.  This is what lets the
serving layer run its background updater loop while query threads read
the ranker's state.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from ..config import RankingParams
from ..errors import GraphError, ThrottleError
from ..graph.pagegraph import PageGraph
from ..logging_utils import get_logger
from ..observability.tracing import span
from ..sources.assignment import SourceAssignment
from ..sources.sourcegraph import SourceGraph
from ..throttle.vector import ThrottleVector
from .base import RankingResult
from .pagerank import pagerank
from .srsourcerank import spam_resilient_sourcerank

__all__ = ["IncrementalPageRank", "IncrementalSourceRank"]

_logger = get_logger(__name__)


def _padded_warm_start(previous: RankingResult | None, n: int) -> np.ndarray | None:
    """Extend the previous score vector to ``n`` entries.

    New entries start at the uniform level; the vector is renormalized so
    the iteration starts from a proper distribution.
    """
    if previous is None:
        return None
    if previous.n > n:
        raise GraphError(
            f"graph shrank from {previous.n} to {n} items; incremental "
            "recompute only supports growth and in-place edge changes"
        )
    x0 = np.full(n, 1.0 / n)
    x0[: previous.n] = previous.scores
    return x0 / x0.sum()


class IncrementalPageRank:
    """PageRank that re-solves warm after each graph update.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graph import PageGraph, add_edges
    >>> inc = IncrementalPageRank()
    >>> g = PageGraph.from_edges([0, 1, 2], [1, 2, 0], 3)
    >>> r1 = inc.update(g)
    >>> r2 = inc.update(add_edges(g, [3], [0]))   # one new page
    >>> r2.n
    4
    """

    def __init__(self, params: RankingParams | None = None, **solve_kwargs: object) -> None:
        self.params = params or RankingParams()
        self.solve_kwargs = solve_kwargs
        self._last: RankingResult | None = None
        self._lock = threading.Lock()

    @property
    def current(self) -> RankingResult | None:
        """The most recent ranking (None before the first update)."""
        with self._lock:
            return self._last

    def seed(self, result: RankingResult) -> None:
        """Install a previously computed ranking as the warm-start state.

        The serving layer uses this to resume from a recovered snapshot:
        the next update warm-starts from the snapshot's vector instead of
        solving cold.
        """
        with self._lock:
            self._last = result

    def update(self, graph: PageGraph) -> RankingResult:
        """Re-rank ``graph``, warm-starting from the previous solution.

        Updates are serialized: a concurrent caller blocks until the
        in-flight solve finishes and then warm-starts from its result.
        """
        with self._lock:
            x0 = _padded_warm_start(self._last, graph.n_nodes)
            with span("incremental:pagerank", warm=x0 is not None, n=graph.n_nodes):
                result = pagerank(graph, self.params, x0=x0, **self.solve_kwargs)
            _logger.debug(
                "incremental pagerank (%s start): %s",
                "warm" if x0 is not None else "cold",
                result.convergence.convergence_summary(),
            )
            self._last = result
            return result

    def reset(self) -> None:
        """Drop the warm-start state (next update solves cold)."""
        with self._lock:
            self._last = None


class IncrementalSourceRank:
    """Spam-Resilient SourceRank that re-solves warm after web updates.

    ``update`` takes the *page-level* web; the source graph is rebuilt
    (quotienting is cheap next to the eigensolve) and the previous source
    vector warm-starts the walk.  The throttle vector is padded with
    κ = 0 for sources created since it was assigned — matching the
    evaluation harness's worst-case convention for attack-created
    sources.
    """

    def __init__(
        self,
        params: RankingParams | None = None,
        *,
        weighting: str = "consensus",
        full_throttle: str = "self",
        **solve_kwargs: object,
    ) -> None:
        self.params = params or RankingParams()
        self.weighting = weighting
        self.full_throttle = full_throttle
        self.solve_kwargs = solve_kwargs
        self._last: RankingResult | None = None
        self._lock = threading.Lock()

    @property
    def current(self) -> RankingResult | None:
        """The most recent ranking (None before the first update)."""
        with self._lock:
            return self._last

    def seed(self, result: RankingResult) -> None:
        """Install a previously computed ranking as the warm-start state.

        The serving layer uses this to resume from a recovered snapshot:
        the next update warm-starts from the snapshot's vector instead of
        solving cold.
        """
        with self._lock:
            self._last = result

    def update(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        kappa: ThrottleVector | None = None,
        *,
        operator_wrap: Callable | None = None,
        **solve_kwargs: object,
    ) -> RankingResult:
        """Re-rank the web, warm-starting from the previous solution.

        Parameters
        ----------
        graph, assignment, kappa:
            The evolved page web, its page→source map and (optionally)
            the throttle vector (padded with κ = 0 for new sources).
        operator_wrap:
            Hook receiving the freshly built base
            :class:`~repro.linalg.operator.CsrOperator` and returning the
            operator the solve should actually walk.  The fault-injection
            harness uses it to interpose a
            :class:`~repro.resilience.FaultyOperator`; production code
            leaves it ``None``.
        solve_kwargs:
            Extra keywords (``callback``, ``kernel``, ...) forwarded to
            :func:`~repro.ranking.srsourcerank.spam_resilient_sourcerank`
            on top of the constructor-level ``solve_kwargs``.

        Updates are serialized behind the internal lock; concurrent
        callers queue up rather than racing on the warm-start state.
        """
        with self._lock:
            return self._update_locked(
                graph, assignment, kappa, operator_wrap, solve_kwargs
            )

    def _update_locked(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        kappa: ThrottleVector | None,
        operator_wrap: Callable | None,
        solve_kwargs: dict,
    ) -> RankingResult:
        source_graph = SourceGraph.from_page_graph(
            graph, assignment, weighting=self.weighting
        )
        n = source_graph.n_sources
        if kappa is not None and kappa.n > n:
            raise ThrottleError(
                f"throttle vector covers {kappa.n} sources but the source "
                f"graph has only {n}; a κ assigned on a larger web cannot "
                "be applied to a smaller one — recompute κ for this web"
            )
        if kappa is not None and kappa.n < n:
            padded = np.zeros(n)
            padded[: kappa.n] = kappa.kappa
            kappa = ThrottleVector(padded)
        x0 = _padded_warm_start(self._last, n)
        kwargs = {**self.solve_kwargs, **solve_kwargs}
        base_op = None
        if operator_wrap is not None:
            from ..linalg.operator import CsrOperator

            kernel = str(kwargs.get("kernel") or self.params.kernel)
            base_op = CsrOperator(source_graph.matrix, kernel=kernel)
            kwargs["operator"] = operator_wrap(base_op)
        try:
            with span("incremental:sourcerank", warm=x0 is not None, n=n):
                result = spam_resilient_sourcerank(
                    source_graph,
                    kappa,
                    self.params,
                    x0=x0,
                    full_throttle=self.full_throttle,
                    **kwargs,
                )
        finally:
            if base_op is not None:
                base_op.close()
        _logger.debug(
            "incremental sourcerank (%s start): %s",
            "warm" if x0 is not None else "cold",
            result.convergence.convergence_summary(),
        )
        self._last = result
        return result

    def reset(self) -> None:
        """Drop the warm-start state (next update solves cold)."""
        with self._lock:
            self._last = None

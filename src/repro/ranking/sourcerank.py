"""Baseline SourceRank: PageRank-style walk on the source graph.

This is the "no throttling information" baseline of Fig. 5 — a teleporting
random walk over the (consensus- or uniform-weighted) source transition
matrix ``T'``, with no influence-throttle transform applied.
"""

from __future__ import annotations

import numpy as np

from ..config import RankingParams
from ..linalg.operator import TransitionOperator
from ..linalg.registry import solver_registry
from ..sources.sourcegraph import SourceGraph
from .base import RankingResult

__all__ = ["sourcerank"]


def sourcerank(
    source_graph: SourceGraph,
    params: RankingParams | None = None,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    solver: str | None = None,
    kernel: str | None = None,
    operator: TransitionOperator | None = None,
) -> RankingResult:
    """Compute the baseline (unthrottled) SourceRank vector.

    Parameters mirror :func:`repro.ranking.pagerank.pagerank`, operating on
    a :class:`~repro.sources.sourcegraph.SourceGraph` whose matrix is
    already row-stochastic (so there is no dangling mass by construction).
    ``operator`` optionally supplies a prebuilt
    :class:`~repro.linalg.operator.TransitionOperator` over the source
    matrix so repeated solves (the pipeline's baseline comparison, κ-sweeps)
    reuse one kernel setup; the caller keeps ownership of it.
    """
    params = params or RankingParams()
    return solver_registry.solve(
        source_graph.matrix if operator is None else operator,
        params,
        solver=solver,
        label="sourcerank",
        teleport=teleport,
        x0=x0,
        kernel=kernel,
    )

"""Baseline SourceRank: PageRank-style walk on the source graph.

This is the "no throttling information" baseline of Fig. 5 — a teleporting
random walk over the (consensus- or uniform-weighted) source transition
matrix ``T'``, with no influence-throttle transform applied.
"""

from __future__ import annotations

import numpy as np

from ..config import RankingParams
from ..errors import ConfigError
from ..sources.sourcegraph import SourceGraph
from .base import RankingResult
from .gauss_seidel import gauss_seidel_solve
from .jacobi import jacobi_solve
from .power import power_iteration

__all__ = ["sourcerank"]


def sourcerank(
    source_graph: SourceGraph,
    params: RankingParams | None = None,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    solver: str = "power",
    kernel: str = "scipy",
) -> RankingResult:
    """Compute the baseline (unthrottled) SourceRank vector.

    Parameters mirror :func:`repro.ranking.pagerank.pagerank`, operating on
    a :class:`~repro.sources.sourcegraph.SourceGraph` whose matrix is
    already row-stochastic (so there is no dangling mass by construction).
    """
    params = params or RankingParams()
    matrix = source_graph.matrix
    if solver == "power":
        return power_iteration(
            matrix,
            params,
            teleport=teleport,
            x0=x0,
            kernel=kernel,  # type: ignore[arg-type]
            label="sourcerank",
        )
    if solver == "jacobi":
        return jacobi_solve(matrix, params, teleport=teleport, x0=x0, label="sourcerank")
    if solver == "gauss_seidel":
        return gauss_seidel_solve(
            matrix, params, teleport=teleport, x0=x0, label="sourcerank"
        )
    raise ConfigError(
        f"solver must be 'power', 'jacobi', or 'gauss_seidel', got {solver!r}"
    )

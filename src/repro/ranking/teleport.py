"""Teleportation distributions.

The paper's PageRank uses the uniform static score vector
``e = (1/n, ..., 1/n)``; the spam-proximity computation of Section 5 uses a
distribution ``d`` concentrated on pre-labeled spam sources.  All helpers
return L1-normalized dense float64 vectors.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["uniform_teleport", "seeded_teleport", "personalized_teleport"]


def uniform_teleport(n: int) -> np.ndarray:
    """The uniform distribution over ``n`` items."""
    n = int(n)
    if n < 1:
        raise ConfigError(f"teleport vector needs n >= 1, got {n}")
    return np.full(n, 1.0 / n, dtype=np.float64)


def seeded_teleport(n: int, seeds: np.ndarray | list[int]) -> np.ndarray:
    """Uniform distribution over a seed set (Section 5's vector ``d``).

    Entries are ``1/|seeds|`` on seed items and 0 elsewhere.
    """
    n = int(n)
    if n < 1:
        raise ConfigError(f"teleport vector needs n >= 1, got {n}")
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ConfigError("seed set must be non-empty")
    if seeds[0] < 0 or seeds[-1] >= n:
        raise ConfigError(
            f"seed ids must lie in [0, {n}), got range [{seeds[0]}, {seeds[-1]}]"
        )
    vec = np.zeros(n, dtype=np.float64)
    vec[seeds] = 1.0 / seeds.size
    return vec


def personalized_teleport(weights: np.ndarray) -> np.ndarray:
    """Normalize arbitrary non-negative weights into a teleport vector."""
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.size == 0:
        raise ConfigError("teleport weights must be non-empty")
    if not np.isfinite(weights).all() or weights.min() < 0:
        raise ConfigError("teleport weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise ConfigError("teleport weights must have positive mass")
    return weights / total

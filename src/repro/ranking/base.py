"""Result types shared by every ranking computation.

A :class:`RankingResult` wraps the score vector together with the
convergence record and exposes the rank-oriented views the evaluation
harness needs (ordering, dense ranks, percentiles).

:class:`ConvergenceInfo` now lives with the shared iteration engine in
:mod:`repro.linalg.iterate`; it is re-exported here under its historical
name.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError, NodeIndexError
from ..linalg.iterate import ConvergenceInfo

__all__ = ["ConvergenceInfo", "RankingResult", "check_scores"]


def check_scores(scores: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a score vector (1-D, finite, float64)."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.size == 0:
        raise GraphError("score vector must be non-empty")
    if not np.isfinite(scores).all():
        raise GraphError("score vector contains non-finite values")
    return scores


class RankingResult:
    """Scores plus convergence info plus rank-order helpers.

    Scores are stored L1-normalized (they are probability distributions —
    the paper normalizes ``σ/||σ||`` after the linear solve).

    ``provenance`` is ``None`` for a plain single-solver solve; a
    :class:`~repro.resilience.fallback.FallbackChain` sets it to the
    tuple of :class:`~repro.resilience.fallback.SolveAttempt` records
    describing every solver tried before this result was produced.
    """

    __slots__ = ("_scores", "convergence", "label", "provenance")

    def __init__(
        self,
        scores: np.ndarray,
        convergence: ConvergenceInfo,
        label: str = "",
        provenance: tuple | None = None,
    ) -> None:
        scores = check_scores(scores)
        total = scores.sum()
        if total <= 0:
            raise GraphError("score vector must have positive mass")
        scores = scores / total
        scores.setflags(write=False)
        self._scores = scores
        self.convergence = convergence
        self.label = label
        self.provenance = provenance

    @property
    def scores(self) -> np.ndarray:
        """Read-only L1-normalized score vector."""
        return self._scores

    @property
    def n(self) -> int:
        """Number of ranked items."""
        return int(self._scores.size)

    def _check_node(self, node: int) -> int:
        """Validate an item id, refusing numpy's negative wraparound."""
        node = int(node)
        if not 0 <= node < self.n:
            raise NodeIndexError(node, self.n)
        return node

    def score_of(self, node: int) -> float:
        """Score of one item. Raises :class:`NodeIndexError` outside [0, n)."""
        return float(self._scores[self._check_node(node)])

    def percentile_of(self, node: int) -> float:
        """Percentile of one item (see :meth:`percentiles`).

        Raises :class:`NodeIndexError` outside [0, n) instead of letting a
        negative id wrap around to the tail of the vector.
        """
        return float(self.percentiles()[self._check_node(node)])

    def order(self) -> np.ndarray:
        """Item ids sorted by decreasing score (ties broken by id).

        ``order()[0]`` is the top-ranked item.
        """
        # argsort ascending on (-score, id): stable sort over negated scores.
        return np.argsort(-self._scores, kind="stable").astype(np.int64)

    def ranks(self) -> np.ndarray:
        """Dense 0-based rank per item (0 = best)."""
        order = self.order()
        ranks = np.empty(self.n, dtype=np.int64)
        ranks[order] = np.arange(self.n, dtype=np.int64)
        return ranks

    def percentiles(self) -> np.ndarray:
        """Percentile per item, 100 = best, averaged over ties.

        Matches the paper's "ranking percentile" metric: an item in the
        19th percentile is worse than 81 % of items.
        """
        scores = self._scores
        n = self.n
        # Fraction of items strictly worse plus half the ties.
        sorted_scores = np.sort(scores)
        lo = np.searchsorted(sorted_scores, scores, side="left")
        hi = np.searchsorted(sorted_scores, scores, side="right")
        worse = lo.astype(np.float64)
        ties = (hi - lo - 1).astype(np.float64)
        return 100.0 * (worse + 0.5 * ties) / max(n - 1, 1)

    def top(self, k: int) -> np.ndarray:
        """Ids of the ``k`` highest-scored items, best first."""
        k = int(k)
        if not 0 <= k <= self.n:
            raise GraphError(f"k must be in [0, {self.n}], got {k}")
        return self.order()[:k]

    def convergence_summary(self, *, curve_points: int = 5) -> str:
        """Delegate to :meth:`ConvergenceInfo.convergence_summary`."""
        return self.convergence.convergence_summary(curve_points=curve_points)

    def __repr__(self) -> str:
        conv = self.convergence
        state = "converged" if conv.converged else "NOT converged"
        return (
            f"RankingResult(n={self.n}, label={self.label!r}, "
            f"iterations={conv.iterations}, residual={conv.residual:.2e}, "
            f"{state})"
        )

"""Power-iteration solver for teleporting random walks.

Solves for the stationary distribution of

.. math::

    x^{T} \\gets \\alpha \\, x^{T} A + (\\text{dangling mass handling})
               + (1 - \\alpha) \\, c^{T}

where ``A`` is a row-(sub)stochastic CSR matrix — or any
:class:`~repro.linalg.operator.TransitionOperator`, so the throttled and
reversed walks run here without materializing their matrices.  The
iteration stops when the chosen norm of successive iterates drops below
the tolerance — the paper uses the L2 norm at ``1e-9``.

The transpose matvec runs on the kernels provided by
:class:`~repro.linalg.operator.CsrOperator` (``"scipy"``, ``"chunked"``,
``"parallel"``); the iteration loop itself lives in
:func:`repro.linalg.iterate.iterate_to_fixpoint`.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams
from ..errors import GraphError
from ..linalg.iterate import iterate_to_fixpoint, residual_norm
from ..linalg.operator import TransitionOperator, as_matrix, as_operator
from ..linalg.registry import register_solver
from .base import RankingResult
from .dangling import check_strategy
from .teleport import uniform_teleport

__all__ = ["power_iteration", "PowerOperator", "residual_norm"]

Kernel = Literal["scipy", "chunked", "parallel"]


class PowerOperator:
    """One step of the teleporting-walk update over a transition operator.

    Encapsulates ``y = alpha * A^T x + alpha * leak(x) * teleport
    + (1 - alpha) * teleport`` where the leak term depends on the dangling
    strategy.  ``A`` is any :class:`~repro.linalg.operator.TransitionOperator`;
    a raw CSR matrix is wrapped in a
    :class:`~repro.linalg.operator.CsrOperator` on the requested kernel
    (and closed with this instance).  Instances are not thread-safe.
    """

    def __init__(
        self,
        operand: "sp.spmatrix | TransitionOperator",
        alpha: float,
        teleport: np.ndarray,
        *,
        dangling: str = "linear",
        kernel: Kernel = "scipy",
    ) -> None:
        self._owns_op = sp.issparse(operand)
        op = as_operator(operand, kernel=kernel)
        n = op.n
        teleport = np.asarray(teleport, dtype=np.float64).ravel()
        if teleport.size != n:
            raise GraphError(
                f"teleport vector length {teleport.size} != matrix order {n}"
            )
        self._op = op
        self.alpha = float(alpha)
        self.teleport = teleport
        self.dangling = check_strategy(dangling)

    @property
    def matrix(self) -> sp.csr_matrix:
        """The explicit transition matrix (materialized on demand)."""
        return self._op.materialize()

    @property
    def operator(self) -> TransitionOperator:
        """The underlying transition operator."""
        return self._op

    @property
    def kernel(self) -> str:
        """The operator's matvec kernel."""
        return self._op.kernel

    @property
    def n(self) -> int:
        """Matrix order."""
        return self._op.n

    @property
    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of dangling (all-zero) rows."""
        return self._op.dangling_mask

    @property
    def n_dangling(self) -> int:
        """Number of dangling rows."""
        return int(self._op.dangling_mask.sum())

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A^T @ x`` on the operator's kernel."""
        return self._op.rmatvec(x)

    def step(self, x: np.ndarray) -> np.ndarray:
        """Apply one full update, returning a new vector."""
        y = self.alpha * self.rmatvec(x)
        if self.dangling == "teleport":
            leak = float(x[self._op.dangling_mask].sum())
            if leak > 0.0:
                y += (self.alpha * leak) * self.teleport
        # "linear": let dangling mass leak (paper semantics — RankingResult
        # renormalizes at the end).  "self": caller already added self-loops.
        y += (1.0 - self.alpha) * self.teleport
        return y

    def close(self) -> None:
        """Release the wrapped operator's resources if this instance owns it."""
        if self._owns_op:
            self._op.close()

    def __enter__(self) -> "PowerOperator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def power_iteration(
    operand: "sp.csr_matrix | TransitionOperator",
    params: RankingParams,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    dangling: str = "linear",
    kernel: Kernel | None = None,
    label: str = "",
    callback: Callable[[int, float], None] | None = None,
) -> RankingResult:
    """Run the power method to the stationary distribution.

    Parameters
    ----------
    operand:
        Row-(sub)stochastic transition matrix (CSR) or a
        :class:`~repro.linalg.operator.TransitionOperator` applying one
        lazily.
    params:
        Stopping rule and mixing parameter.
    teleport:
        Teleport distribution ``c``; uniform when omitted.
    x0:
        Warm-start iterate (the incremental-recompute path used by the
        spam-scenario experiments); defaults to the teleport vector.
    dangling:
        Dangling-mass strategy (see :mod:`repro.ranking.dangling`).
    kernel:
        Transpose-matvec kernel for matrix operands; ``None`` takes
        ``params.kernel``.  Operator operands keep their own kernel.
    label:
        Human-readable tag stored on the result.
    callback:
        Optional per-iteration hook ``(iteration, residual)``.

    Raises
    ------
    ConvergenceError
        When ``params.strict`` and ``max_iter`` is exhausted first.
    """
    if kernel is None:
        kernel = getattr(params, "kernel", "scipy")
    if dangling == "self":
        from .dangling import apply_self_loops

        operand = apply_self_loops(as_matrix(operand))
    owns = sp.issparse(operand)
    inner = as_operator(operand, kernel=kernel)
    try:
        n = inner.n
        c = (
            uniform_teleport(n)
            if teleport is None
            else np.asarray(teleport, dtype=np.float64).ravel()
        )
        op = PowerOperator(inner, params.alpha, c, dangling=dangling)
        x = c.copy() if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
        if x.size != n:
            raise GraphError(f"x0 length {x.size} != matrix order {n}")
        x, info = iterate_to_fixpoint(
            op.step,
            x,
            params,
            solver="power",
            label=label or "power",
            kernel=op.kernel,
            dangling_mask=op.dangling_mask,
            callback=callback,
        )
    finally:
        if owns:
            inner.close()
    return RankingResult(x, info, label=label)


register_solver("power", power_iteration, overwrite=True)

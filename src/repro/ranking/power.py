"""Generic power-iteration engine for teleporting random walks.

Solves for the stationary distribution of

.. math::

    x^{T} \\gets \\alpha \\, x^{T} A + (\\text{dangling mass handling})
               + (1 - \\alpha) \\, c^{T}

where ``A`` is a row-(sub)stochastic CSR matrix.  The iteration stops when
the chosen norm of successive iterates drops below the tolerance — the
paper uses the L2 norm at ``1e-9``.

The transpose matvec can run on three kernels (``"scipy"``, ``"chunked"``,
``"parallel"``); all preallocate and reuse buffers across iterations per
the in-place-operations idiom of the HPC guide.
"""

from __future__ import annotations

import time
from typing import Callable, Literal

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams
from ..errors import ConfigError, ConvergenceError, GraphError
from ..logging_utils import get_logger
from ..observability.tracing import span
from ..parallel.chunked import chunked_rmatvec
from .base import ConvergenceInfo, RankingResult
from .dangling import check_strategy, dangling_vector
from .teleport import uniform_teleport

__all__ = ["power_iteration", "PowerOperator", "residual_norm"]

_logger = get_logger(__name__)

Kernel = Literal["scipy", "chunked", "parallel"]


def residual_norm(diff: np.ndarray, norm: str) -> float:
    """Norm of an iterate difference under the configured stopping norm."""
    if norm == "l1":
        return float(np.abs(diff).sum())
    if norm == "l2":
        return float(np.linalg.norm(diff))
    if norm == "linf":
        return float(np.abs(diff).max())
    raise ConfigError(f"unknown norm {norm!r}")


class PowerOperator:
    """One step of the teleporting-walk update, with pluggable kernels.

    Encapsulates ``y = alpha * A^T x + alpha * leak(x) * teleport
    + (1 - alpha) * teleport`` where the leak term depends on the dangling
    strategy.  Instances hold preallocated work buffers; they are not
    thread-safe.
    """

    def __init__(
        self,
        matrix: sp.csr_matrix,
        alpha: float,
        teleport: np.ndarray,
        *,
        dangling: str = "linear",
        kernel: Kernel = "scipy",
    ) -> None:
        if not sp.issparse(matrix):
            raise GraphError("power iteration requires a scipy sparse matrix")
        matrix = matrix.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"transition matrix must be square, got {matrix.shape}")
        n = matrix.shape[0]
        teleport = np.asarray(teleport, dtype=np.float64).ravel()
        if teleport.size != n:
            raise GraphError(
                f"teleport vector length {teleport.size} != matrix order {n}"
            )
        self.matrix = matrix
        self.alpha = float(alpha)
        self.teleport = teleport
        self.dangling = check_strategy(dangling)
        self.kernel = kernel
        self._dangling_mask = dangling_vector(matrix)
        self._buffer = np.empty(n, dtype=np.float64)
        self._shared = None
        if kernel == "parallel":
            from ..parallel.shared import SharedCsrMatvec

            self._shared = SharedCsrMatvec(matrix)
        elif kernel not in ("scipy", "chunked"):
            raise ConfigError(
                f"kernel must be 'scipy', 'chunked', or 'parallel', got {kernel!r}"
            )
        # Transpose-CSC view reused by the scipy kernel: A^T x as csr_matrix
        # dot is fastest via the CSC of A^T == CSR of A with swapped axes.
        self._at = matrix.T.tocsr() if kernel == "scipy" else None

    @property
    def n(self) -> int:
        """Matrix order."""
        return int(self.matrix.shape[0])

    @property
    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of dangling (all-zero) rows."""
        return self._dangling_mask

    @property
    def n_dangling(self) -> int:
        """Number of dangling rows."""
        return int(self._dangling_mask.sum())

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A^T @ x`` on the configured kernel."""
        if self.kernel == "scipy":
            return self._at @ x  # type: ignore[union-attr]
        if self.kernel == "chunked":
            return chunked_rmatvec(self.matrix, x, out=self._buffer).copy()
        return self._shared.rmatvec(x)  # type: ignore[union-attr]

    def step(self, x: np.ndarray) -> np.ndarray:
        """Apply one full update, returning a new vector."""
        y = self.alpha * self.rmatvec(x)
        if self.dangling == "teleport":
            leak = float(x[self._dangling_mask].sum())
            if leak > 0.0:
                y += (self.alpha * leak) * self.teleport
        # "linear": let dangling mass leak (paper semantics — RankingResult
        # renormalizes at the end).  "self": caller already added self-loops.
        y += (1.0 - self.alpha) * self.teleport
        return y

    def close(self) -> None:
        """Release the parallel kernel's shared memory, if any."""
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "PowerOperator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def power_iteration(
    matrix: sp.csr_matrix,
    params: RankingParams,
    *,
    teleport: np.ndarray | None = None,
    x0: np.ndarray | None = None,
    dangling: str = "linear",
    kernel: Kernel = "scipy",
    label: str = "",
    callback: Callable[[int, float], None] | None = None,
) -> RankingResult:
    """Run the power method to the stationary distribution.

    Parameters
    ----------
    matrix:
        Row-(sub)stochastic transition matrix (CSR).
    params:
        Stopping rule and mixing parameter.
    teleport:
        Teleport distribution ``c``; uniform when omitted.
    x0:
        Warm-start iterate (the incremental-recompute path used by the
        spam-scenario experiments); defaults to the teleport vector.
    dangling:
        Dangling-mass strategy (see :mod:`repro.ranking.dangling`).
    kernel:
        Transpose-matvec kernel.
    label:
        Human-readable tag stored on the result.
    callback:
        Optional per-iteration hook ``(iteration, residual)``.

    Raises
    ------
    ConvergenceError
        When ``params.strict`` and ``max_iter`` is exhausted first.
    """
    n = matrix.shape[0]
    c = uniform_teleport(n) if teleport is None else np.asarray(teleport, dtype=np.float64).ravel()
    if dangling == "self":
        from .dangling import apply_self_loops

        matrix = apply_self_loops(matrix)
    progress = params.progress
    tag = label or "power"
    with PowerOperator(
        matrix, params.alpha, c, dangling=dangling, kernel=kernel
    ) as op, span(f"solve:{tag}", solver="power", kernel=kernel, n=n) as trace:
        x = c.copy() if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
        if x.size != n:
            raise GraphError(f"x0 length {x.size} != matrix order {n}")
        track_dangling = 0
        if progress is not None:
            track_dangling = op.n_dangling
            progress.on_solve_start(
                tag,
                solver="power",
                kernel=kernel,
                n=n,
                tolerance=params.tolerance,
                max_iter=params.max_iter,
                n_dangling=track_dangling,
            )
        history: list[float] = []
        residual = np.inf
        iterations = 0
        for iterations in range(1, params.max_iter + 1):
            if progress is not None:
                t0 = time.perf_counter()
            x_next = op.step(x)
            residual = residual_norm(x_next - x, params.norm)
            history.append(residual)
            x = x_next
            if callback is not None:
                callback(iterations, residual)
            if progress is not None:
                progress.on_iteration(
                    tag,
                    iterations,
                    residual,
                    step_seconds=time.perf_counter() - t0,
                    dangling_mass=(
                        float(x[op.dangling_mask].sum()) if track_dangling else None
                    ),
                )
            if residual < params.tolerance:
                break
        converged = residual < params.tolerance
        if trace is not None:
            trace.meta["iterations"] = iterations
    info = ConvergenceInfo(
        converged=converged,
        iterations=iterations,
        residual=float(residual),
        tolerance=params.tolerance,
        residual_history=tuple(history),
    )
    if progress is not None:
        progress.on_solve_end(tag, info)
    if not converged:
        if params.strict:
            raise ConvergenceError(iterations, residual, params.tolerance)
        _logger.warning(
            "power iteration did not converge: residual %.3e after %d iterations",
            residual,
            iterations,
        )
    return RankingResult(x, info, label=label)

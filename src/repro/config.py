"""Typed, validated parameter objects shared across the library.

The paper fixes a small set of numeric knobs (mixing parameter ``alpha``,
L2 convergence threshold ``1e-9``, throttle top-k fraction, seed fraction).
These are collected here as frozen dataclasses so that experiments can be
described declaratively and reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Literal

from .errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .observability.progress import ProgressCallback
    from .resilience.checkpoint import SolveCheckpointer

__all__ = [
    "AuditParams",
    "ChaosParams",
    "FleetParams",
    "GraphStoreParams",
    "ObservabilityParams",
    "RankingParams",
    "ResilienceParams",
    "SLOParams",
    "ServingParams",
    "ThrottleParams",
    "SpamProximityParams",
    "ExperimentParams",
    "DEFAULT_ALPHA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MAX_ITER",
]

#: Mixing (damping) parameter used throughout the paper (Section 6.1).
DEFAULT_ALPHA: float = 0.85

#: L2 distance threshold between successive power iterates (Section 6.1).
DEFAULT_TOLERANCE: float = 1e-9

#: Generous iteration cap; the paper's graphs converge in well under 200.
DEFAULT_MAX_ITER: int = 1000


def _check_unit_interval(name: str, value: float, *, open_right: bool = False) -> float:
    value = float(value)
    if not (0.0 <= value <= 1.0) or (open_right and value == 1.0):
        hi = "1)" if open_right else "1]"
        raise ConfigError(f"{name} must lie in [0, {hi}, got {value!r}")
    return value


def _check_positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0.0:
        raise ConfigError(f"{name} must be positive, got {value!r}")
    return value


@dataclass(frozen=True, slots=True)
class AuditParams:
    """Runtime correctness-audit policy for the ranking stack.

    Attached to :attr:`RankingParams.audit` (and
    :attr:`SpamProximityParams.audit`); when present, the pipeline checks
    the paper's structural invariants around every stage — ``T'``/``T''``
    row-stochasticity, ``T''_ii = κ_i`` on boosted rows, σ a finite
    non-negative distribution — and the shared iteration engine checks
    per-iteration mass conservation of the power iterate.  Violations are
    counted in ``repro_audit_violations_total`` and, in strict mode,
    raised as a typed :class:`~repro.errors.AuditError`.

    Parameters
    ----------
    strict:
        If True (default) any violation raises
        :class:`~repro.errors.AuditError`; if False violations are only
        logged and counted.
    atol:
        Absolute tolerance for the numerical invariants (row sums,
        diagonal equality, iterate mass, σ mass).
    check_every:
        Interval of the per-iteration mass-conservation check inside
        :func:`repro.linalg.iterate.iterate_to_fixpoint` (``1`` = every
        iteration; ``0`` disables the per-iteration check, leaving only
        the stage-boundary checks).
    check_transition:
        Audit the transition matrices (``T'`` row-stochastic, throttled
        diagonal/row invariants of ``T''``).
    check_scores:
        Audit the ranking outputs (σ finite, non-negative, sums to 1).
    """

    strict: bool = True
    atol: float = 1e-8
    check_every: int = 1
    check_transition: bool = True
    check_scores: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "strict", bool(self.strict))
        _check_positive("atol", self.atol)
        object.__setattr__(self, "atol", float(self.atol))
        every = int(self.check_every)
        if every < 0:
            raise ConfigError(f"check_every must be >= 0, got {every!r}")
        object.__setattr__(self, "check_every", every)
        object.__setattr__(self, "check_transition", bool(self.check_transition))
        object.__setattr__(self, "check_scores", bool(self.check_scores))

    def with_(self, **overrides: object) -> "AuditParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class ObservabilityParams:
    """Runtime-telemetry policy: event log, profiling, scrape endpoint.

    Accepted by :class:`~repro.core.pipeline.SpamResilientPipeline` and
    :class:`~repro.serving.RankingService`.  Everything defaults off;
    each knob is independently zero-cost when disabled.

    Parameters
    ----------
    events:
        Enable the correlated JSON event log (in-memory ring buffer; see
        :mod:`repro.observability.events`).  Implied by ``events_path``.
    events_path:
        Append events to this JSON-lines file as they happen.
    run_id:
        Correlation id stamped on every event; a fresh ``run-…`` id is
        generated when omitted.
    events_buffer:
        Ring-buffer size of recent events kept in memory (the
        ``/events`` endpoint and exports read from it).
    profile:
        Enable per-stage profiling hooks (cProfile on the outermost
        block per thread, wall/CPU accounting on nested solver blocks;
        see :mod:`repro.observability.profiling`).
    profile_top:
        How many hottest functions each profiled block retains.
    endpoint:
        Start the live telemetry scrape endpoint (``/metrics``,
        ``/health``, ``/trace``, ``/events``; see
        :mod:`repro.observability.endpoint`).
    endpoint_host, endpoint_port:
        Bind address of the endpoint; port ``0`` picks a free port.
    trace_buffer:
        For long-lived hosts (the serving updater): how many root spans
        the telemetry tracer retains (ring buffer).
    """

    events: bool = False
    events_path: "str | None" = None
    run_id: "str | None" = None
    events_buffer: int = 4096
    profile: bool = False
    profile_top: int = 10
    endpoint: bool = False
    endpoint_host: str = "127.0.0.1"
    endpoint_port: int = 0
    trace_buffer: int = 256

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", bool(self.events))
        if self.events_path is not None:
            object.__setattr__(self, "events_path", str(self.events_path))
            object.__setattr__(self, "events", True)
        if self.run_id is not None:
            object.__setattr__(self, "run_id", str(self.run_id))
        for name in ("events_buffer", "profile_top", "trace_buffer"):
            value = int(getattr(self, name))
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
            object.__setattr__(self, name, value)
        object.__setattr__(self, "profile", bool(self.profile))
        object.__setattr__(self, "endpoint", bool(self.endpoint))
        port = int(self.endpoint_port)
        if not 0 <= port <= 65535:
            raise ConfigError(f"endpoint_port must lie in [0, 65535], got {port!r}")
        object.__setattr__(self, "endpoint_port", port)
        object.__setattr__(self, "endpoint_host", str(self.endpoint_host))

    @property
    def enabled(self) -> bool:
        """Whether any telemetry feature is switched on."""
        return self.events or self.profile or self.endpoint

    def with_(self, **overrides: object) -> "ObservabilityParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class ResilienceParams:
    """Numerical guardrails and recovery policy for iterative solves.

    Attached to :attr:`RankingParams.resilience`; when present (and any
    guard is enabled) :func:`repro.linalg.iterate.iterate_to_fixpoint`
    checks every iterate against these rules and raises the typed
    :class:`~repro.errors.ConvergenceError` subclasses on violation —
    which a :class:`~repro.resilience.FallbackChain` can then catch to
    warm-start the next solver in line.

    Parameters
    ----------
    check_finite_every:
        Run a full ``isfinite`` scan of the iterate every this many
        iterations (``1`` = every iteration; ``0`` disables the scan —
        a non-finite *residual* still trips the guard).  The guard keeps
        a copy of the last finite iterate for warm-starting fallbacks.
    divergence_window:
        Raise :class:`~repro.errors.DivergenceError` after this many
        *consecutive* iterations of residual growth (``0`` disables).
    stagnation_window:
        Raise :class:`~repro.errors.StagnationError` when, over a window
        of this many iterations, the residual improves by less than
        ``stagnation_rtol`` (relative) while still above tolerance
        (``0`` disables — the default, since slow-but-steady convergence
        is legitimate for ill-conditioned webs).
    stagnation_rtol:
        Minimum relative residual improvement per stagnation window.
    deadline_seconds:
        Wall-clock budget for one solve; exceeded ⇒
        :class:`~repro.errors.SolveDeadlineError` (``None`` disables).
    fallback_solvers:
        Solver names (in order) a fallback chain should try after the
        primary solver; each is validated against the solver registry.
    checkpoint_every:
        Iteration interval for solve checkpoints when a checkpointer is
        installed (``0`` keeps the checkpointer's own default).
    """

    check_finite_every: int = 1
    divergence_window: int = 10
    stagnation_window: int = 0
    stagnation_rtol: float = 1e-3
    deadline_seconds: float | None = None
    fallback_solvers: tuple[str, ...] = ()
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        for name in ("check_finite_every", "divergence_window",
                     "stagnation_window", "checkpoint_every"):
            value = int(getattr(self, name))
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value!r}")
            object.__setattr__(self, name, value)
        _check_unit_interval("stagnation_rtol", self.stagnation_rtol)
        if self.deadline_seconds is not None:
            _check_positive("deadline_seconds", self.deadline_seconds)
            object.__setattr__(self, "deadline_seconds", float(self.deadline_seconds))
        object.__setattr__(
            self, "fallback_solvers", tuple(str(s) for s in self.fallback_solvers)
        )
        if self.fallback_solvers:
            from .linalg.registry import solver_registry

            for solver in self.fallback_solvers:
                solver_registry.validate(solver)

    @property
    def enabled(self) -> bool:
        """Whether any per-iteration guard is active."""
        return bool(
            self.check_finite_every
            or self.divergence_window
            or self.stagnation_window
            or self.deadline_seconds is not None
        )

    def with_(self, **overrides: object) -> "ResilienceParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class ServingParams:
    """Policy knobs of the fault-tolerant :class:`~repro.serving.RankingService`.

    Parameters
    ----------
    max_pending:
        Bounded-queue admission control: update requests beyond this many
        outstanding are refused with
        :class:`~repro.errors.AdmissionError` (reason ``"queue_full"``).
    failure_threshold:
        Consecutive update failures after which the circuit breaker
        opens and background re-solves pause for the backoff window.
    backoff_base_seconds, backoff_max_seconds:
        Exponential-backoff schedule of the open breaker: the n-th trip
        waits ``min(base * 2**(n-1), max)`` seconds (plus jitter) before
        a half-open probe is allowed through.
    backoff_jitter:
        Relative jitter added to each backoff (``0.1`` = up to +10 %),
        drawn from a seeded rng so schedules stay reproducible.
    baseline_after:
        Consecutive update failures after which serving falls back from
        the stale SR snapshot to the last baseline-SourceRank snapshot.
    read_only_after:
        Consecutive update failures after which the service refuses new
        writes entirely (reads keep being answered).  Must be at least
        ``baseline_after``.
    staleness_bound_updates:
        How many update generations behind the served snapshot may lag
        before the readiness probe reports the bound as violated (the
        soak harness gates on this).
    snapshot_keep:
        How many snapshots the store retains per published kind.
    poll_interval_seconds:
        Idle sleep of the background updater loop between queue polls.
    seed:
        Seed of the breaker's jitter rng.
    """

    max_pending: int = 16
    failure_threshold: int = 3
    backoff_base_seconds: float = 0.5
    backoff_max_seconds: float = 30.0
    backoff_jitter: float = 0.1
    baseline_after: int = 2
    read_only_after: int = 4
    staleness_bound_updates: int = 8
    snapshot_keep: int = 8
    poll_interval_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("max_pending", "failure_threshold", "baseline_after",
                     "read_only_after", "staleness_bound_updates",
                     "snapshot_keep"):
            value = int(getattr(self, name))
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
            object.__setattr__(self, name, value)
        if self.read_only_after < self.baseline_after:
            raise ConfigError(
                f"read_only_after ({self.read_only_after}) must be >= "
                f"baseline_after ({self.baseline_after}): the service "
                "falls back to baseline before refusing writes"
            )
        _check_positive("backoff_base_seconds", self.backoff_base_seconds)
        _check_positive("backoff_max_seconds", self.backoff_max_seconds)
        _check_positive("poll_interval_seconds", self.poll_interval_seconds)
        for name in ("backoff_base_seconds", "backoff_max_seconds",
                     "poll_interval_seconds"):
            object.__setattr__(self, name, float(getattr(self, name)))
        _check_unit_interval("backoff_jitter", self.backoff_jitter)
        object.__setattr__(self, "backoff_jitter", float(self.backoff_jitter))
        object.__setattr__(self, "seed", int(self.seed))

    def with_(self, **overrides: object) -> "ServingParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class FleetParams:
    """Topology and protocol knobs of the replicated serving fleet.

    Consumed by :class:`~repro.serving.ServingFleet` (one publisher
    process plus N read replicas behind an asyncio front door); see
    ``docs/architecture.md`` ("Replicated serving fleet").

    Parameters
    ----------
    replicas:
        Number of read-only replica processes to spawn.
    host:
        Interface every fleet socket binds (replicas and front door).
    frontend_port:
        Port of the front door's listener; ``0`` picks a free port.
    replica_poll_seconds:
        How often each replica polls the snapshot store for a newer
        version to adopt.
    batch_max_ids:
        Micro-batching: singleton ``score``/``percentile`` reads arriving
        within one linger window coalesce into a single backend request
        of at most this many ids.
    batch_linger_seconds:
        How long the front door holds an open micro-batch waiting for
        more singleton reads before flushing it.
    connect_timeout_seconds, request_timeout_seconds:
        Transport deadlines; a replica that misses one is evicted from
        rotation and the read is retried on another replica.
    probe_interval_seconds:
        How often the front door probes evicted replicas for
        reinstatement.
    max_retries:
        Distinct replicas a single read may be attempted on before the
        front door reports it failed.
    spawn_timeout_seconds:
        How long to wait for a freshly spawned replica to bind its
        socket and adopt a first snapshot before giving up.
    ready_requires_snapshot:
        Whether replica readiness additionally demands an adopted
        snapshot (on by default; the bench and CLI rely on it).
    """

    replicas: int = 3
    host: str = "127.0.0.1"
    frontend_port: int = 0
    replica_poll_seconds: float = 0.05
    batch_max_ids: int = 512
    batch_linger_seconds: float = 0.002
    connect_timeout_seconds: float = 5.0
    request_timeout_seconds: float = 10.0
    probe_interval_seconds: float = 0.25
    max_retries: int = 3
    spawn_timeout_seconds: float = 120.0
    ready_requires_snapshot: bool = True

    def __post_init__(self) -> None:
        for name in ("replicas", "batch_max_ids", "max_retries"):
            value = int(getattr(self, name))
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
            object.__setattr__(self, name, value)
        port = int(self.frontend_port)
        if not 0 <= port <= 65535:
            raise ConfigError(f"frontend_port must lie in [0, 65535], got {port!r}")
        object.__setattr__(self, "frontend_port", port)
        if not str(self.host):
            raise ConfigError("host must be non-empty")
        for name in ("replica_poll_seconds", "connect_timeout_seconds",
                     "request_timeout_seconds", "probe_interval_seconds",
                     "spawn_timeout_seconds"):
            _check_positive(name, getattr(self, name))
            object.__setattr__(self, name, float(getattr(self, name)))
        linger = float(self.batch_linger_seconds)
        if linger < 0.0:
            raise ConfigError(
                f"batch_linger_seconds must be >= 0, got {linger!r}"
            )
        object.__setattr__(self, "batch_linger_seconds", linger)
        object.__setattr__(
            self, "ready_requires_snapshot", bool(self.ready_requires_snapshot)
        )

    def with_(self, **overrides: object) -> "FleetParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class SLOParams:
    """Per-operation SLO budgets enforced by the fleet front door.

    Consumed by :class:`~repro.serving.frontend.FrontDoor`; see
    ``docs/architecture.md`` ("SLO guardrails & chaos testing").

    Parameters
    ----------
    deadline_seconds:
        Default per-request deadline budget.  A read that cannot be
        answered inside its budget is refused with a typed
        ``DeadlineExceededError`` response instead of hanging the
        caller; its burn ratio (elapsed / budget) is recorded in the
        ``repro_fleet_deadline_burn_ratio`` histogram either way.
    score_deadline_seconds, percentile_deadline_seconds,
    top_k_deadline_seconds:
        Optional per-op overrides of ``deadline_seconds``.
    hedge_threshold_seconds:
        Floor of the hedge trigger: a backup request fires on a second
        replica once the first attempt has been outstanding longer than
        ``max(hedge_threshold_seconds, tracked p-``hedge_quantile``
        attempt latency)``.  First response wins; the losing leg drains
        in the background (its latency still feeds the outlier
        detector and its response is consumed, keeping the per-replica
        protocol in sync).
    hedge_quantile:
        Which attempt-latency quantile arms the hedge trigger once
        ``hedge_min_samples`` attempts have been observed.
    hedge_min_samples:
        Attempts to observe before the quantile estimate participates
        (before that, only the threshold floor applies).
    retry_budget_per_second, retry_budget_burst:
        Token bucket bounding retries *and* hedges: each re-attempt
        takes one token; an empty bucket means fail fast instead of
        amplifying an outage into a retry storm.
    max_inflight:
        Admission control at the door: reads beyond this many in flight
        are shed with an ``AdmissionError``-typed response carrying
        ``retry_after`` = ``shed_retry_after_seconds``.
    shed_retry_after_seconds:
        The retry-after hint stamped on shed responses.
    eject_latency_seconds:
        Latency-outlier ejection: a replica whose windowed p95 attempt
        latency exceeds this is quarantined as SLOW (still alive, too
        slow to serve) until a probe answers fast again.
    eject_min_samples, eject_window:
        How many recent attempts the per-replica latency window holds
        and how many must be present before ejection can trigger.
    reinstate_backoff_seconds, reinstate_backoff_max_seconds:
        Flap damping: an ejected/quarantined replica is not reinstated
        before ``floor * 2**(flaps-1)`` seconds (capped at the max)
        have passed, no matter how quickly its probes recover.
    """

    deadline_seconds: float = 30.0
    score_deadline_seconds: float | None = None
    percentile_deadline_seconds: float | None = None
    top_k_deadline_seconds: float | None = None
    hedge_threshold_seconds: float = 0.05
    hedge_quantile: float = 0.95
    hedge_min_samples: int = 50
    retry_budget_per_second: float = 20.0
    retry_budget_burst: float = 40.0
    max_inflight: int = 1024
    shed_retry_after_seconds: float = 0.25
    eject_latency_seconds: float = 1.0
    eject_min_samples: int = 32
    eject_window: int = 64
    reinstate_backoff_seconds: float = 0.5
    reinstate_backoff_max_seconds: float = 30.0

    def __post_init__(self) -> None:
        for name in ("deadline_seconds", "hedge_threshold_seconds",
                     "retry_budget_per_second", "retry_budget_burst",
                     "shed_retry_after_seconds", "eject_latency_seconds",
                     "reinstate_backoff_seconds",
                     "reinstate_backoff_max_seconds"):
            _check_positive(name, getattr(self, name))
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("score_deadline_seconds", "percentile_deadline_seconds",
                     "top_k_deadline_seconds"):
            value = getattr(self, name)
            if value is not None:
                _check_positive(name, value)
                object.__setattr__(self, name, float(value))
        quantile = float(self.hedge_quantile)
        if not 0.0 < quantile < 1.0:
            raise ConfigError(
                f"hedge_quantile must lie in (0, 1), got {quantile!r}"
            )
        object.__setattr__(self, "hedge_quantile", quantile)
        for name in ("hedge_min_samples", "max_inflight",
                     "eject_min_samples", "eject_window"):
            value = int(getattr(self, name))
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
            object.__setattr__(self, name, value)
        if self.eject_window < self.eject_min_samples:
            raise ConfigError(
                f"eject_window ({self.eject_window}) must be >= "
                f"eject_min_samples ({self.eject_min_samples})"
            )
        if self.reinstate_backoff_max_seconds < self.reinstate_backoff_seconds:
            raise ConfigError(
                f"reinstate_backoff_max_seconds "
                f"({self.reinstate_backoff_max_seconds}) must be >= "
                f"reinstate_backoff_seconds "
                f"({self.reinstate_backoff_seconds})"
            )

    def deadline_for(self, op: str) -> float:
        """The deadline budget (seconds) of one operation."""
        override = getattr(self, f"{op}_deadline_seconds", None)
        return self.deadline_seconds if override is None else override

    def with_(self, **overrides: object) -> "SLOParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class ChaosParams:
    """Numeric knobs of one injected fault rule (CLI / schedule facing).

    The :class:`~repro.resilience.faults.FaultPlan` consumes validated
    instances of this (via
    :meth:`~repro.resilience.faults.FaultRule.from_params`); the
    ``repro serve --chaos`` presets and the ``bench_chaos.py`` schedule
    both build their rules through it so malformed schedules fail with
    a :class:`~repro.errors.ConfigError` naming the bad field instead
    of corrupting a run.

    Parameters
    ----------
    latency_seconds, jitter_seconds:
        Added response latency: fixed part plus a seeded uniform jitter.
    stall_seconds:
        Mid-frame stall — the response is cut in two and the second
        half held back this long (a dribbling, not dead, socket).
    reset_probability:
        Per-response chance of a connection reset mid-response.
    torn_probability:
        Per-response chance of a torn frame (a truncated line followed
        by a clean close).
    adoption_delay_seconds:
        Snapshot-store read delay (slow adoption at the replicas).
    cut_fraction:
        How much of the frame is written before a reset/tear cuts it.
    seed:
        Seed of the rule's fault rng (identical seeds fire identically).
    """

    latency_seconds: float = 0.0
    jitter_seconds: float = 0.0
    stall_seconds: float = 0.0
    reset_probability: float = 0.0
    torn_probability: float = 0.0
    adoption_delay_seconds: float = 0.0
    cut_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("latency_seconds", "jitter_seconds", "stall_seconds",
                     "adoption_delay_seconds"):
            value = float(getattr(self, name))
            if value < 0.0:
                raise ConfigError(f"{name} must be >= 0, got {value!r}")
            object.__setattr__(self, name, value)
        for name in ("reset_probability", "torn_probability"):
            _check_unit_interval(name, getattr(self, name))
            object.__setattr__(self, name, float(getattr(self, name)))
        cut = float(self.cut_fraction)
        if not 0.0 < cut <= 1.0:
            raise ConfigError(
                f"cut_fraction must lie in (0, 1], got {cut!r}"
            )
        object.__setattr__(self, "cut_fraction", cut)
        object.__setattr__(self, "seed", int(self.seed))

    def with_(self, **overrides: object) -> "ChaosParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class GraphStoreParams:
    """Policy of the sharded on-disk graph substrate.

    Accepted by :func:`repro.core.pipeline.operator_from_store` (and the
    ``repro rank --graph-store`` / ``repro shard`` CLI paths) to control
    how a :class:`~repro.webgraph.store.ShardedGraphStore` is turned into
    a :class:`~repro.linalg.BlockedOperator`.

    Parameters
    ----------
    block_size:
        Rows per shard when *writing* a store (conversion/generation
        paths); reading uses whatever the manifest declares.
    cache_blocks:
        Bound on decoded blocks held in memory by the blocked operator
        (and, in the parallel path, per shm worker).  The out-of-core
        memory guarantee is O(cache_blocks · block + iterate).
    workers:
        ``0`` streams shards serially in-process; ``> 0`` runs the
        block-parallel shm evaluator with that many workers.
    max_rebuilds:
        Pool-rebuild budget of the parallel evaluator before it degrades
        to serial shard streaming.
    task_timeout:
        Optional wall-clock bound (seconds) on one parallel matvec batch.
    """

    block_size: int = 65_536
    cache_blocks: int = 4
    workers: int = 0
    max_rebuilds: int = 2
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        for name in ("block_size", "cache_blocks"):
            value = int(getattr(self, name))
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
            object.__setattr__(self, name, value)
        workers = int(self.workers)
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers!r}")
        object.__setattr__(self, "workers", workers)
        rebuilds = int(self.max_rebuilds)
        if rebuilds < 0:
            raise ConfigError(f"max_rebuilds must be >= 0, got {rebuilds!r}")
        object.__setattr__(self, "max_rebuilds", rebuilds)
        if self.task_timeout is not None:
            _check_positive("task_timeout", self.task_timeout)
            object.__setattr__(self, "task_timeout", float(self.task_timeout))

    def with_(self, **overrides: object) -> "GraphStoreParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class RankingParams:
    """Parameters of a teleporting random-walk ranking computation.

    Parameters
    ----------
    alpha:
        Mixing parameter: probability of following an edge rather than
        teleporting.  The paper uses ``0.85``.
    tolerance:
        Stopping threshold on the norm of successive iterate differences.
    max_iter:
        Hard cap on iterations; exceeding it raises
        :class:`repro.errors.ConvergenceError` unless ``strict`` is False.
    norm:
        Which vector norm the stopping rule uses.  The paper measures the
        L2 distance of successive Power Method iterates.
    strict:
        If True (default) a non-converged computation raises; if False it
        returns the last iterate flagged ``converged=False``.
    solver:
        Which registered solver runs the computation (``"power"`` — the
        paper's choice — ``"jacobi"``, ``"gauss_seidel"``, or any name
        added via :func:`repro.linalg.register_solver`).  Validated
        against the registry at construction.
    kernel:
        Transpose-matvec kernel for the power solver (``"scipy"``,
        ``"chunked"``, ``"parallel"``); ignored by the linear solvers.
    progress:
        Optional :class:`repro.observability.ProgressCallback` receiving
        per-iteration solver telemetry (residuals, step timings, dangling
        mass).  ``None`` (default) keeps the solver hot loop free of any
        timing calls or allocations.  Excluded from equality/hash so two
        parameter sets describing the same computation stay equal.
    resilience:
        Optional :class:`ResilienceParams` enabling per-iteration
        numerical guardrails (NaN/Inf, divergence, stagnation, deadline)
        in the shared iteration engine.  ``None`` (default) keeps the
        hot loop guard-free.
    audit:
        Optional :class:`AuditParams` enabling the runtime correctness
        audit: stage-boundary invariant checks in the pipeline and
        per-iteration mass-conservation checks in the iteration engine.
        ``None`` (default) keeps every path audit-free.
    checkpoint:
        Optional :class:`repro.resilience.SolveCheckpointer` persisting
        periodic solve checkpoints (and resuming from them).  Like
        ``progress``, excluded from equality/hash.
    """

    alpha: float = DEFAULT_ALPHA
    tolerance: float = DEFAULT_TOLERANCE
    max_iter: int = DEFAULT_MAX_ITER
    norm: Literal["l1", "l2", "linf"] = "l2"
    strict: bool = True
    solver: str = "power"
    kernel: Literal["scipy", "chunked", "parallel"] = "scipy"
    progress: "ProgressCallback | None" = field(
        default=None, compare=False, repr=False
    )
    resilience: "ResilienceParams | None" = None
    audit: "AuditParams | None" = None
    checkpoint: "SolveCheckpointer | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        _check_unit_interval("alpha", self.alpha, open_right=True)
        _check_positive("tolerance", self.tolerance)
        if int(self.max_iter) < 1:
            raise ConfigError(f"max_iter must be >= 1, got {self.max_iter!r}")
        object.__setattr__(self, "max_iter", int(self.max_iter))
        if self.norm not in ("l1", "l2", "linf"):
            raise ConfigError(f"norm must be one of 'l1', 'l2', 'linf', got {self.norm!r}")
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceParams
        ):
            raise ConfigError(
                "resilience must be a ResilienceParams or None, got "
                f"{type(self.resilience).__name__}"
            )
        if self.audit is not None and not isinstance(self.audit, AuditParams):
            raise ConfigError(
                "audit must be an AuditParams or None, got "
                f"{type(self.audit).__name__}"
            )
        # Imported lazily: the registry lives in repro.linalg, which is
        # only reachable at call time without a config <-> linalg cycle.
        from .linalg.operator import KERNELS
        from .linalg.registry import solver_registry

        solver_registry.validate(self.solver)
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )

    def with_(self, **overrides: object) -> "RankingParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class ThrottleParams:
    """Parameters of throttling-vector assignment (Section 5 / 6.2).

    Parameters
    ----------
    strategy:
        How spam-proximity scores map to kappa values.  ``"top_k"`` is the
        paper's heuristic: the k highest-proximity sources get ``kappa_high``
        and everyone else ``kappa_low``.
    top_fraction:
        Fraction of sources throttled under ``"top_k"``.  The paper throttles
        the top 20,000 of 738,626 WB2001 sources (~2.7 %).
    kappa_high, kappa_low:
        Throttle levels for flagged / unflagged sources (paper: 1.0 and 0.0).
    threshold:
        Score cutoff for the ``"threshold"`` strategy.
    """

    strategy: Literal["top_k", "threshold", "proportional", "linear"] = "top_k"
    top_fraction: float = 20_000 / 738_626
    kappa_high: float = 1.0
    kappa_low: float = 0.0
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.strategy not in ("top_k", "threshold", "proportional", "linear"):
            raise ConfigError(f"unknown throttle strategy {self.strategy!r}")
        _check_unit_interval("top_fraction", self.top_fraction)
        _check_unit_interval("kappa_high", self.kappa_high)
        _check_unit_interval("kappa_low", self.kappa_low)
        if self.kappa_low > self.kappa_high:
            raise ConfigError(
                f"kappa_low ({self.kappa_low}) must not exceed kappa_high ({self.kappa_high})"
            )
        if self.threshold < 0.0:
            raise ConfigError(f"threshold must be >= 0, got {self.threshold!r}")


@dataclass(frozen=True, slots=True)
class SpamProximityParams:
    """Parameters of the inverse-walk spam-proximity computation (Section 5).

    ``progress`` mirrors :attr:`RankingParams.progress`: an optional
    per-iteration telemetry hook for the proximity walk.
    """

    beta: float = DEFAULT_ALPHA
    tolerance: float = DEFAULT_TOLERANCE
    max_iter: int = DEFAULT_MAX_ITER
    progress: "ProgressCallback | None" = field(
        default=None, compare=False, repr=False
    )
    resilience: "ResilienceParams | None" = None
    audit: "AuditParams | None" = None
    checkpoint: "SolveCheckpointer | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        _check_unit_interval("beta", self.beta, open_right=True)
        _check_positive("tolerance", self.tolerance)
        if int(self.max_iter) < 1:
            raise ConfigError(f"max_iter must be >= 1, got {self.max_iter!r}")
        object.__setattr__(self, "max_iter", int(self.max_iter))
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceParams
        ):
            raise ConfigError(
                "resilience must be a ResilienceParams or None, got "
                f"{type(self.resilience).__name__}"
            )
        if self.audit is not None and not isinstance(self.audit, AuditParams):
            raise ConfigError(
                "audit must be an AuditParams or None, got "
                f"{type(self.audit).__name__}"
            )

    def as_ranking_params(self) -> RankingParams:
        """View these parameters as generic :class:`RankingParams`."""
        return RankingParams(
            alpha=self.beta,
            tolerance=self.tolerance,
            max_iter=self.max_iter,
            progress=self.progress,
            resilience=self.resilience,
            audit=self.audit,
            checkpoint=self.checkpoint,
        )


@dataclass(frozen=True, slots=True)
class ExperimentParams:
    """Shared knobs of the Section 6 experimental protocol."""

    seed: int = 2007
    n_targets: int = 5
    cases: tuple[int, ...] = (1, 10, 100, 1000)
    bottom_fraction: float = 0.5
    seed_fraction: float = 1_000 / 10_315
    n_buckets: int = 20
    ranking: RankingParams = field(default_factory=RankingParams)
    throttle: ThrottleParams = field(default_factory=ThrottleParams)
    proximity: SpamProximityParams = field(default_factory=SpamProximityParams)

    def __post_init__(self) -> None:
        if int(self.n_targets) < 1:
            raise ConfigError(f"n_targets must be >= 1, got {self.n_targets!r}")
        object.__setattr__(self, "n_targets", int(self.n_targets))
        if not self.cases or any(int(c) < 1 for c in self.cases):
            raise ConfigError(f"cases must be positive counts, got {self.cases!r}")
        object.__setattr__(self, "cases", tuple(int(c) for c in self.cases))
        _check_unit_interval("bottom_fraction", self.bottom_fraction)
        _check_unit_interval("seed_fraction", self.seed_fraction)
        if int(self.n_buckets) < 2:
            raise ConfigError(f"n_buckets must be >= 2, got {self.n_buckets!r}")
        object.__setattr__(self, "n_buckets", int(self.n_buckets))

"""Linear-operator layer shared by every ranking in the library.

All of the paper's models — PageRank, SourceRank, spam proximity on the
reversed graph, and Spam-Resilient SourceRank over the throttled matrix
``T''`` — are teleporting random walks over different linear operators.
This package provides:

* the :class:`~repro.linalg.operator.TransitionOperator` protocol and its
  concrete implementations (:class:`~repro.linalg.operator.CsrOperator`,
  :class:`~repro.linalg.operator.ThrottledOperator`,
  :class:`~repro.linalg.operator.ReversedOperator`);
* the shared fixed-point engine
  :func:`~repro.linalg.iterate.iterate_to_fixpoint` with its
  :class:`~repro.linalg.iterate.ConvergenceInfo` record;
* the :class:`~repro.linalg.registry.SolverRegistry` mapping solver names
  to solve functions.

This layer sits below :mod:`repro.ranking` and :mod:`repro.throttle`:
it may import only the substrate (errors, graph matrices, parallel
kernels, observability).
"""

from .iterate import ConvergenceInfo, iterate_to_fixpoint, residual_norm
from .operator import (
    KERNELS,
    BlockedOperator,
    CsrOperator,
    ReversedOperator,
    ThrottledOperator,
    TransitionOperator,
    as_matrix,
    as_operator,
)
from .registry import (
    BUILTIN_SOLVERS,
    SolverRegistry,
    available_solvers,
    get_solver,
    register_solver,
    solve,
    solver_registry,
)

__all__ = [
    "ConvergenceInfo",
    "iterate_to_fixpoint",
    "residual_norm",
    "KERNELS",
    "TransitionOperator",
    "CsrOperator",
    "BlockedOperator",
    "ThrottledOperator",
    "ReversedOperator",
    "as_operator",
    "as_matrix",
    "BUILTIN_SOLVERS",
    "SolverRegistry",
    "solver_registry",
    "register_solver",
    "get_solver",
    "available_solvers",
    "solve",
]

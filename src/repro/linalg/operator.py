"""Lazy transition operators — the paper's model family as one abstraction.

Every ranking in the library (PageRank, SourceRank, spam proximity on the
reversed graph, Spam-Resilient SourceRank over the throttled matrix
``T''``) is a teleporting random walk whose per-iteration work is a single
transpose matvec ``y = A^T x`` against a different linear operator ``A``.
This module makes that operator explicit:

* :class:`TransitionOperator` — the protocol the solvers iterate against
  (``rmatvec``, order, dangling mask, kernel name, ``materialize`` for
  solvers that need an explicit matrix);
* :class:`CsrOperator` — a concrete CSR matrix behind one of the three
  matvec kernels (``scipy`` / ``chunked`` / ``parallel``), absorbing the
  kernel dispatch that used to live inside the power solver;
* :class:`BlockedOperator` — the out-of-core path: a
  :class:`~repro.webgraph.store.ShardedGraphStore` behind a bounded cache
  of decoded row blocks, so the fixpoint streams shards from disk and the
  full matrix is never assembled (``blocked`` serial kernel or
  ``blocked-parallel`` via the shm block workers);
* :class:`ThrottledOperator` — the influence-throttle transform
  ``T' -> T''`` (Section 3.3) applied *lazily* as a per-row out-scale plus
  a diagonal self-edge term, so Spam-Resilient SourceRank never
  materializes ``T''`` (κ-sweeps and incremental reruns reuse one base
  matrix — and, for the scipy kernel, one transposed CSR);
* :class:`ReversedOperator` — the Section 5 spam-proximity walk over the
  reversed source graph, expressed as a *forward* matvec on the original
  orientation, so no reversed CSR is ever built.

The algebra behind the lazy forms:

* throttling is ``T'' = diag(s) T' + diag(c)`` with per-row scale ``s``
  and diagonal correction ``c``, hence
  ``T''^T x = T'^T (s ⊙ x) + c ⊙ x``;
* the reversed walk matrix is ``U = diag(1/indeg) B^T`` for the
  self-edge-free binary adjacency ``B``, hence
  ``U^T x = B (x / indeg)`` — a plain CSR matvec on ``B``.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError, GraphError, ThrottleError
from ..parallel.chunked import chunked_rmatvec

__all__ = [
    "KERNELS",
    "TransitionOperator",
    "CsrOperator",
    "BlockedOperator",
    "ThrottledOperator",
    "ReversedOperator",
    "as_operator",
    "as_matrix",
]

#: The transpose-matvec kernels a :class:`CsrOperator` can run on.
KERNELS = ("scipy", "chunked", "parallel")

_FULL_THROTTLE_MODES = ("self", "dangling")
_DANGLING_ATOL = 1e-12


@runtime_checkable
class TransitionOperator(Protocol):
    """A row-(sub)stochastic transition operator the solvers iterate on.

    Implementations expose the transpose matvec (the only operation the
    power method needs), their order and dangling-row structure, and a
    ``materialize`` escape hatch for solvers (Jacobi, Gauss–Seidel) that
    require an explicit CSR system matrix.
    """

    @property
    def n(self) -> int:
        """Operator order (the matrix is ``n x n``)."""
        ...

    @property
    def kernel(self) -> str:
        """Name of the matvec kernel backing :meth:`rmatvec`."""
        ...

    @property
    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of rows carrying (numerically) zero mass."""
        ...

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A^T @ x``.

        The returned vector may be a kernel-owned buffer that stays valid
        only until the *second-next* ``rmatvec`` call; callers that keep
        results across iterations must copy.
        """
        ...

    def materialize(self) -> sp.csr_matrix:
        """The operator as an explicit CSR matrix (may be built on demand)."""
        ...

    def close(self) -> None:
        """Release kernel resources (shared memory), if any."""
        ...


class CsrOperator:
    """A CSR transition matrix behind a pluggable transpose-matvec kernel.

    Instances hold preallocated work buffers; they are not thread-safe.
    The ``chunked`` kernel double-buffers its output: each call fills the
    buffer the *previous* call did not return, so the last returned vector
    stays valid across one further call without any per-iteration
    allocation or copy.
    """

    __slots__ = (
        "matrix",
        "_kernel",
        "_mask",
        "_at",
        "_buffers",
        "_active",
        "_shared",
    )

    def __init__(self, matrix: sp.spmatrix, *, kernel: str = "scipy") -> None:
        if not sp.issparse(matrix):
            raise GraphError(
                "CsrOperator requires a scipy sparse matrix, got "
                f"{type(matrix).__name__}"
            )
        matrix = matrix.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"transition matrix must be square, got {matrix.shape}")
        if kernel not in KERNELS:
            raise ConfigError(
                f"kernel must be one of {KERNELS}, got {kernel!r}"
            )
        n = matrix.shape[0]
        self.matrix = matrix
        self._kernel = kernel
        self._mask = np.asarray(matrix.sum(axis=1)).ravel() <= _DANGLING_ATOL
        self._at: sp.csr_matrix | None = None
        self._buffers: tuple[np.ndarray, np.ndarray] | None = None
        self._active = 0
        self._shared = None
        if kernel == "scipy":
            # Transpose-CSC view reused every iteration: A^T x is fastest
            # via the CSR of A^T, built once.
            self._at = matrix.T.tocsr()
        elif kernel == "chunked":
            self._buffers = (
                np.empty(n, dtype=np.float64),
                np.empty(n, dtype=np.float64),
            )
        else:
            from ..parallel.shared import SharedCsrMatvec

            self._shared = SharedCsrMatvec(matrix)

    @property
    def n(self) -> int:
        """Matrix order."""
        return int(self.matrix.shape[0])

    @property
    def kernel(self) -> str:
        """The configured matvec kernel."""
        return self._kernel

    @property
    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of dangling (all-zero) rows."""
        return self._mask

    @property
    def n_dangling(self) -> int:
        """Number of dangling rows."""
        return int(self._mask.sum())

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A^T @ x`` on the configured kernel (see the class docstring
        for the chunked kernel's buffer-validity contract)."""
        if self._at is not None:
            return self._at @ x
        if self._buffers is not None:
            out = self._buffers[self._active]
            self._active ^= 1
            return chunked_rmatvec(self.matrix, x, out=out)
        return self._shared.rmatvec(x)  # type: ignore[union-attr]

    def materialize(self) -> sp.csr_matrix:
        """The backing CSR matrix itself (no copy)."""
        return self.matrix

    def close(self) -> None:
        """Release the parallel kernel's shared memory, if any."""
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "CsrOperator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CsrOperator(n={self.n}, nnz={self.matrix.nnz}, "
            f"kernel={self._kernel!r})"
        )


class BlockedOperator:
    """A :class:`~repro.webgraph.store.ShardedGraphStore` as a transition operator.

    The out-of-core half of the operator family: ``rmatvec`` streams the
    store's row blocks, accumulating each block's transpose-matvec
    contribution ``A_b^T x[rows_b]`` into the output via a ``bincount``
    scatter, so peak memory stays O(block + iterate) regardless of graph
    size.  Decoded blocks live in a bounded LRU cache keyed by block id —
    graphs smaller than the cache behave like an in-memory operator,
    larger graphs re-decode shards each sweep (the honest out-of-core
    cost, measured by ``benchmarks/bench_sharding.py``).

    With ``workers > 0`` the matvec runs block-parallel on the shm worker
    pool (:class:`~repro.parallel.shared.SharedBlockedMatvec`): only the
    iterate is published to shared memory, workers decode their own shards,
    and the evaluator inherits the pool-rebuild/serial-degradation
    resilience of the in-memory parallel kernel.

    Composes under :class:`ThrottledOperator` — the store's one streaming
    stats pass provides the base diagonal and row sums the throttle
    algebra needs, so κ stays lazy on top of a lazy matrix.
    """

    __slots__ = (
        "_store",
        "_cache",
        "_cache_blocks",
        "_mask",
        "_sums",
        "_diag",
        "_shared",
        "_closed",
    )

    def __init__(
        self,
        store: object,
        *,
        cache_blocks: int = 4,
        workers: int = 0,
        max_rebuilds: int = 2,
        task_timeout: float | None = None,
    ) -> None:
        from ..webgraph.store import ShardedGraphStore

        if isinstance(store, (str, Path)):
            store = ShardedGraphStore.open(store)
        if not isinstance(store, ShardedGraphStore):
            raise GraphError(
                "BlockedOperator requires a ShardedGraphStore or a store "
                f"path, got {type(store).__name__}"
            )
        cache_blocks = int(cache_blocks)
        if cache_blocks < 1:
            raise ConfigError(f"cache_blocks must be >= 1, got {cache_blocks}")
        workers = int(workers or 0)
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        self._store = store
        self._cache: "OrderedDict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._cache_blocks = cache_blocks
        # One streaming pass over the shards yields both stats vectors; the
        # store caches them, so ThrottledOperator composition is free.
        self._sums = store.row_sums()
        self._diag = store.diagonal()
        self._mask = self._sums <= _DANGLING_ATOL
        self._closed = False
        self._shared = None
        if workers:
            from ..parallel.shared import SharedBlockedMatvec

            self._shared = SharedBlockedMatvec(
                store,
                n_workers=workers,
                cache_blocks=cache_blocks,
                max_rebuilds=max_rebuilds,
                task_timeout=task_timeout,
            )

    @property
    def n(self) -> int:
        """Operator order."""
        return self._store.n_sources

    @property
    def kernel(self) -> str:
        """``blocked`` (serial streaming) or ``blocked-parallel`` (shm pool)."""
        return "blocked" if self._shared is None else "blocked-parallel"

    @property
    def dangling_mask(self) -> np.ndarray:
        """Rows with (numerically) zero mass across all blocks."""
        return self._mask

    @property
    def store(self):
        """The backing :class:`~repro.webgraph.store.ShardedGraphStore`."""
        return self._store

    @property
    def cache_blocks(self) -> int:
        """Maximum number of decoded blocks held in memory."""
        return self._cache_blocks

    @property
    def cached_blocks(self) -> int:
        """Number of blocks currently decoded in the cache."""
        return len(self._cache)

    def diagonal(self) -> np.ndarray:
        """Main diagonal (from the store's streaming stats pass)."""
        return self._diag.copy()

    def row_sums(self) -> np.ndarray:
        """Per-row sums (from the store's streaming stats pass)."""
        return self._sums.copy()

    def iter_blocks(self):
        """Yield ``(ShardInfo, csr_block)`` pairs — per-block audit hook."""
        return self._store.iter_blocks()

    def _block_arrays(
        self, block_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(global_rows, cols, vals)`` per edge of one block, LRU-cached."""
        cached = self._cache.get(block_id)
        if cached is not None:
            self._cache.move_to_end(block_id)
            return cached
        info = self._store.shards[block_id]
        block = self._store.load_block(block_id)
        rows = info.row_start + np.repeat(
            np.arange(info.n_rows, dtype=np.int64), np.diff(block.indptr)
        )
        entry = (rows, block.indices.astype(np.int64), block.data)
        self._cache[block_id] = entry
        while len(self._cache) > self._cache_blocks:
            self._cache.popitem(last=False)
        return entry

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A^T @ x`` streamed over the row-block shards."""
        if self._closed:
            raise GraphError("BlockedOperator is closed")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise GraphError(
                f"vector has shape {x.shape}, operator expects ({self.n},)"
            )
        if self._shared is not None:
            return self._shared.rmatvec(x)
        y = np.zeros(self.n, dtype=np.float64)
        for info in self._store.shards:
            rows, cols, vals = self._block_arrays(info.block_id)
            # Scatter the block's contribution: y[c] += v * x[r] for each
            # edge (r, c).  bincount is the fast vectorized scatter-add.
            y += np.bincount(cols, weights=vals * x[rows], minlength=self.n)
        return y

    def materialize(self) -> sp.csr_matrix:
        """Assemble the full CSR from the store (O(matrix) — escape hatch
        for the stationary linear solvers, not the streaming path)."""
        return self._store.materialize()

    def close(self) -> None:
        """Drop the block cache and release the parallel evaluator."""
        self._cache.clear()
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        self._closed = True

    def __enter__(self) -> "BlockedOperator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"BlockedOperator(n={self.n}, blocks={self._store.n_blocks}, "
            f"cache_blocks={self._cache_blocks}, kernel={self.kernel!r})"
        )


class ThrottledOperator:
    """The influence-throttled matrix ``T''`` (Section 3.3), applied lazily.

    Wraps a base :class:`CsrOperator` (or raw CSR matrix) and the
    throttling vector κ.  Instead of materializing ``T''``, the transform
    is factored as ``T'' = diag(s) T' + diag(c)`` — ``s`` rescales each
    row's out-mass to ``1 - κ_i`` and ``c`` raises the self-edge to
    ``κ_i`` — so one transpose matvec against the *base* matrix plus two
    vector multiplies computes ``T''^T x`` exactly.  A κ-sweep therefore
    reuses a single base matrix (and single transposed CSR) across all κ.

    Parameters
    ----------
    base:
        The unthrottled source operator ``T'`` — a :class:`CsrOperator`
        (shared across sweeps) or a row-stochastic CSR matrix (wrapped
        here, closed with this operator).
    kappa:
        Throttling factors in ``[0, 1]``, one per source (a
        :class:`~repro.throttle.vector.ThrottleVector` or array-like);
        ``None`` means no throttling.
    full_throttle:
        κ = 1 semantics: ``"self"`` (the literal Section 3.3 transform)
        or ``"dangling"`` (fully-throttled rows pass nothing at all) —
        see :mod:`repro.throttle.transform` for the discussion.
    kernel:
        Kernel for the base operator when ``base`` is a raw matrix;
        ignored when ``base`` is already an operator.
    """

    __slots__ = (
        "_base",
        "_owns_base",
        "_scale",
        "_shift",
        "_kappa",
        "_full_throttle",
        "_mask",
        "_identity",
        "_base_diag",
        "_base_sums",
    )

    def __init__(
        self,
        base: "CsrOperator | sp.spmatrix",
        kappa: object = None,
        *,
        full_throttle: str = "self",
        kernel: str = "scipy",
    ) -> None:
        if full_throttle not in _FULL_THROTTLE_MODES:
            raise ThrottleError(
                f"full_throttle must be one of {_FULL_THROTTLE_MODES}, got "
                f"{full_throttle!r}"
            )
        owns = sp.issparse(base)
        base_op = CsrOperator(base, kernel=kernel) if owns else base
        # Duck-typed: the transform needs the base diagonal and row sums —
        # either from an explicit ``.matrix`` (CsrOperator, FaultyOperator)
        # or from ``diagonal()``/``row_sums()`` methods (BlockedOperator,
        # whose matrix never exists in memory).
        has_matrix = hasattr(base_op, "matrix")
        has_stats = hasattr(base_op, "diagonal") and hasattr(base_op, "row_sums")
        if not (hasattr(base_op, "rmatvec") and (has_matrix or has_stats)):
            raise GraphError(
                "ThrottledOperator needs a base exposing rmatvec plus either "
                "a .matrix or diagonal()/row_sums() (the transform reads the "
                f"base diagonal), got {type(base).__name__}"
            )
        n = base_op.n
        if has_matrix:
            matrix = base_op.matrix
            base_diag = matrix.diagonal().astype(np.float64)
            base_sums = np.asarray(matrix.sum(axis=1), dtype=np.float64).ravel()
        else:
            base_diag = np.asarray(base_op.diagonal(), dtype=np.float64).ravel()
            base_sums = np.asarray(base_op.row_sums(), dtype=np.float64).ravel()
        if kappa is None:
            k = np.zeros(n, dtype=np.float64)
        else:
            k = np.asarray(
                getattr(kappa, "kappa", kappa), dtype=np.float64
            ).ravel()
        if k.size != n:
            raise ThrottleError(
                f"throttle vector covers {k.size} sources but matrix is {n}x{n}"
            )
        if k.size and ((k < 0.0).any() or (k > 1.0).any()):
            raise ThrottleError("throttle factors must lie in [0, 1]")

        diag = base_diag
        off_mass = base_sums - diag
        full = (k >= 1.0) if full_throttle == "dangling" else np.zeros(n, dtype=bool)
        needs = (diag < k) & ~full
        bad = needs & (off_mass <= 0)
        if bad.any():
            raise ThrottleError(
                f"{int(bad.sum())} rows need throttling but have no off-diagonal "
                "mass to rescale; is the input row-stochastic?"
            )
        scale = np.ones(n, dtype=np.float64)
        scale[needs] = (1.0 - k[needs]) / off_mass[needs]
        scale[full] = 0.0
        new_diag = np.where(needs, k, diag)
        new_diag[full] = 0.0
        self._base = base_op
        self._owns_base = owns
        self._scale = scale
        # T''_ii = scale_i * T'_ii + shift_i, exactly as the materialized
        # transform overwrites the scaled diagonal with new_diag.
        self._shift = new_diag - scale * diag
        self._kappa = k
        self._full_throttle = full_throttle
        self._mask = full | (base_op.dangling_mask & ~needs)
        self._identity = not needs.any() and not full.any()
        self._base_diag = base_diag
        self._base_sums = base_sums

    @property
    def n(self) -> int:
        """Operator order."""
        return self._base.n

    @property
    def kernel(self) -> str:
        """The base operator's matvec kernel."""
        return self._base.kernel

    @property
    def dangling_mask(self) -> np.ndarray:
        """Rows of ``T''`` with zero mass (κ=1 rows in dangling mode)."""
        return self._mask

    @property
    def base(self) -> CsrOperator:
        """The unthrottled base operator ``T'``."""
        return self._base

    @property
    def kappa(self) -> np.ndarray:
        """The throttling vector (read-only view)."""
        return self._kappa

    @property
    def full_throttle(self) -> str:
        """The κ = 1 semantics in effect."""
        return self._full_throttle

    def diagonal(self) -> np.ndarray:
        """Diagonal of ``T''`` as this operator applies it (no materialization).

        ``T''_ii = s_i · T'_ii + c_i`` — the quantity the correctness
        audit checks against the paper's ``T''_ii = κ_i`` invariant on
        boosted rows.
        """
        return self._scale * self._base_diag + self._shift

    def row_sums(self) -> np.ndarray:
        """Row sums of ``T''`` as this operator applies it.

        Only the diagonal departs from the uniform per-row scale, so
        ``sum_j T''_ij = s_i · sum_j T'_ij + c_i``.
        """
        return self._scale * self._base_sums + self._shift

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``T''^T @ x`` without materializing ``T''``."""
        if self._identity:
            return self._base.rmatvec(x)
        x = np.asarray(x, dtype=np.float64)
        y = self._base.rmatvec(self._scale * x)
        # y may be a kernel-owned buffer; it is ours to mutate until the
        # next rmatvec, so accumulate the diagonal term in place.
        y += self._shift * x
        return y

    def materialize(self) -> sp.csr_matrix:
        """The explicit ``T''`` via :func:`repro.throttle.transform.throttle_transform`."""
        # Imported lazily: the throttle package sits above linalg in the
        # layering (it pulls in the ranking solvers at import time).
        from ..throttle.transform import throttle_transform
        from ..throttle.vector import ThrottleVector

        base_matrix = (
            self._base.matrix
            if hasattr(self._base, "matrix")
            else self._base.materialize()
        )
        return throttle_transform(
            base_matrix,
            ThrottleVector(self._kappa),
            full_throttle=self._full_throttle,
        )

    def close(self) -> None:
        """Close the base operator if this instance created it."""
        if self._owns_base:
            self._base.close()

    def __enter__(self) -> "ThrottledOperator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ThrottledOperator(n={self.n}, throttled="
            f"{int((self._kappa > 0).sum())}, "
            f"full_throttle={self._full_throttle!r})"
        )


class ReversedOperator:
    """The reversed-graph walk matrix ``U`` of Section 5, applied lazily.

    Spam proximity reverses edge *existence* (not weights), drops
    self-edges, and row-normalizes uniformly over in-neighbours:
    ``U = diag(1/indeg) B^T`` for the binary adjacency ``B`` of the
    original orientation.  The walk's transpose matvec is then
    ``U^T x = B (x / indeg)`` — a plain forward CSR matvec on ``B`` —
    so the reversed matrix is never built.
    """

    __slots__ = ("_binary", "_inv_indeg", "_mask", "_drop_self_edges")

    def __init__(
        self,
        matrix: "CsrOperator | sp.spmatrix",
        *,
        drop_self_edges: bool = True,
    ) -> None:
        if isinstance(matrix, CsrOperator):
            matrix = matrix.matrix
        if not sp.issparse(matrix):
            raise GraphError(
                "ReversedOperator requires a scipy sparse matrix, got "
                f"{type(matrix).__name__}"
            )
        matrix = matrix.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"source matrix must be square, got {matrix.shape}")
        n = matrix.shape[0]
        binary = matrix.copy()
        binary.data = np.ones_like(binary.data, dtype=np.float64)
        if drop_self_edges:
            rows = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(binary.indptr)
            )
            binary.data[binary.indices == rows] = 0.0
            binary.eliminate_zeros()
        indeg = np.asarray(binary.sum(axis=0)).ravel()
        with np.errstate(divide="ignore"):
            inv = np.where(indeg > 0, 1.0 / np.maximum(indeg, 1.0), 0.0)
        self._binary = binary
        self._inv_indeg = inv
        self._mask = indeg == 0
        self._drop_self_edges = drop_self_edges

    @property
    def n(self) -> int:
        """Operator order."""
        return int(self._binary.shape[0])

    @property
    def kernel(self) -> str:
        """Always the scipy forward-matvec kernel."""
        return "scipy"

    @property
    def dangling_mask(self) -> np.ndarray:
        """Rows of ``U`` with no mass: sources nobody links to."""
        return self._mask

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``U^T @ x`` via a forward matvec on the original orientation."""
        return self._binary @ (self._inv_indeg * np.asarray(x, dtype=np.float64))

    def materialize(self) -> sp.csr_matrix:
        """The explicit reversed transition matrix ``U``."""
        from ..graph.matrix import row_normalize

        return row_normalize(
            self._binary.T.tocsr().astype(np.float64), copy=False
        )

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "ReversedOperator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ReversedOperator(n={self.n}, edges={self._binary.nnz}, "
            f"drop_self_edges={self._drop_self_edges})"
        )


def as_operator(
    operand: "TransitionOperator | sp.spmatrix", *, kernel: str = "scipy"
) -> "TransitionOperator":
    """Coerce a CSR matrix to a :class:`CsrOperator`; pass operators through.

    ``kernel`` applies only when wrapping a raw matrix — an existing
    operator keeps the kernel it was built with.
    """
    if sp.issparse(operand):
        return CsrOperator(operand, kernel=kernel)
    if hasattr(operand, "rmatvec") and hasattr(operand, "n"):
        return operand
    raise GraphError(
        "expected a scipy sparse matrix or TransitionOperator, got "
        f"{type(operand).__name__}"
    )


def as_matrix(operand: "TransitionOperator | sp.spmatrix") -> sp.csr_matrix:
    """The explicit CSR matrix of a matrix-or-operator operand."""
    if sp.issparse(operand):
        matrix = operand.tocsr()
    elif hasattr(operand, "materialize"):
        matrix = operand.materialize().tocsr()
    else:
        raise GraphError(
            "expected a scipy sparse matrix or TransitionOperator, got "
            f"{type(operand).__name__}"
        )
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"transition matrix must be square, got {matrix.shape}")
    return matrix

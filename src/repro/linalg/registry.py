"""The solver registry: one string-keyed dispatch point for all rankers.

Every ranking entry point used to carry its own copy of the same
``if solver == "power": ... elif solver == "jacobi": ...`` chain.  The
registry replaces those chains with a single mapping from solver name to
solve function, validated once in :class:`~repro.config.RankingParams`
and extensible by downstream code::

    from repro.linalg import register_solver

    @register_solver("my-solver")
    def my_solver(operand, params, *, teleport=None, x0=None, label="",
                  dangling="linear", kernel=None, callback=None):
        ...

Solver contract
---------------
A solver is a callable ``fn(operand, params, *, teleport=None, x0=None,
label="", dangling="linear", kernel=None, callback=None)`` returning
``(scores, ConvergenceInfo)``.  ``operand`` is a CSR matrix or a
:class:`~repro.linalg.operator.TransitionOperator`; solvers that need an
explicit matrix call :func:`~repro.linalg.operator.as_matrix` on it.
Solvers without a kernel choice (Jacobi, Gauss–Seidel) accept and ignore
``dangling``/``kernel``.

The built-in solvers live in :mod:`repro.ranking`, which sits *above*
this layer, so they are resolved lazily on first lookup rather than
imported here.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError

__all__ = [
    "BUILTIN_SOLVERS",
    "SolverRegistry",
    "solver_registry",
    "register_solver",
    "get_solver",
    "available_solvers",
    "solve",
]

#: Solvers shipped with the library, resolved from :mod:`repro.ranking`.
BUILTIN_SOLVERS = ("power", "jacobi", "gauss_seidel")

Solver = Callable[..., tuple]


class SolverRegistry:
    """String → solver mapping with lazy built-in resolution."""

    __slots__ = ("_solvers",)

    def __init__(self) -> None:
        self._solvers: dict[str, Solver] = {}

    def register(
        self,
        name: str,
        fn: Solver | None = None,
        *,
        overwrite: bool = False,
    ):
        """Register ``fn`` under ``name``; usable as a decorator.

        Raises :class:`~repro.errors.ConfigError` on duplicate names
        unless ``overwrite`` is set.
        """

        def _register(fn: Solver) -> Solver:
            if not overwrite and name in self._solvers:
                raise ConfigError(
                    f"solver {name!r} is already registered "
                    "(pass overwrite=True to replace it)"
                )
            self._solvers[name] = fn
            return fn

        if fn is None:
            return _register
        return _register(fn)

    def _load_builtins(self) -> None:
        # Deferred: repro.ranking imports this module's layer, so the
        # built-ins register themselves when the ranking package loads.
        from .. import ranking  # noqa: F401

    def get(self, name: str) -> Solver:
        """The solver registered under ``name``.

        Raises
        ------
        ConfigError
            If no solver by that name exists.
        """
        if name not in self._solvers and name in BUILTIN_SOLVERS:
            self._load_builtins()
        try:
            return self._solvers[name]
        except KeyError:
            raise ConfigError(
                f"unknown solver {name!r}; available: "
                f"{', '.join(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All known solver names (registered plus built-ins), sorted."""
        return tuple(sorted(set(self._solvers) | set(BUILTIN_SOLVERS)))

    def validate(self, name: str) -> str:
        """Check ``name`` resolves to a solver; return it unchanged."""
        if name not in self._solvers and name not in BUILTIN_SOLVERS:
            raise ConfigError(
                f"unknown solver {name!r}; available: "
                f"{', '.join(self.names())}"
            )
        return name

    def solve(
        self,
        operand,
        params,
        *,
        solver: str | None = None,
        label: str = "",
        **kwargs,
    ) -> tuple:
        """Dispatch one ranking solve to the named (or configured) solver.

        ``solver=None`` falls back to ``params.solver`` (and ``"power"``
        for params objects predating the field).  Remaining keyword
        arguments are forwarded to the solver unchanged.
        """
        name = solver or getattr(params, "solver", "power")
        fn = self.get(name)
        return fn(operand, params, label=label, **kwargs)

    def __contains__(self, name: object) -> bool:
        return name in self._solvers or name in BUILTIN_SOLVERS

    def __repr__(self) -> str:
        return f"SolverRegistry({', '.join(self.names())})"


#: The process-wide registry the ranking entry points dispatch through.
solver_registry = SolverRegistry()

register_solver = solver_registry.register
get_solver = solver_registry.get
available_solvers = solver_registry.names
solve = solver_registry.solve

"""The shared fixed-point iteration engine.

Every iterative ranking solve in the library — power iteration, Jacobi,
Gauss–Seidel, and any future registered solver — is the same loop: apply
one update step, measure the residual between successive iterates under
the configured norm, record telemetry, stop at tolerance or ``max_iter``.
:func:`iterate_to_fixpoint` is that loop, written once.  Solvers supply
only their step function; the engine owns

* the ``solve:<label>`` tracing span (with per-solve iteration count);
* the :class:`~repro.observability.progress.ProgressCallback` protocol
  (solve shape, per-iteration residual/step-time/dangling-mass, final
  :class:`ConvergenceInfo`) — all zero-cost when ``params.progress`` is
  ``None``;
* the residual history and the strict-raise / lenient-warn convergence
  contract;
* the resilience hooks — when ``params.resilience`` enables them, a
  :class:`~repro.resilience.guards.SolveGuard` checks every iterate for
  NaN/Inf, sustained divergence, stagnation, and wall-clock deadline
  (raising the typed :class:`~repro.errors.ConvergenceError` subclasses);
  when ``params.checkpoint`` carries a
  :class:`~repro.resilience.checkpoint.SolveCheckpointer`, the iterate is
  checkpointed periodically and the solve resumes from stored state.
  Both are zero-cost when unset.

:class:`ConvergenceInfo` lives here (below the ranking layer) so that
both the engine and the result types can use it without an import cycle;
:mod:`repro.ranking.base` re-exports it under its historical name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..errors import ConfigError, ConvergenceError
from ..logging_utils import get_logger
from ..observability.events import emit as emit_event
from ..observability.profiling import profile_block
from ..observability.tracing import span

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..config import RankingParams

__all__ = ["ConvergenceInfo", "residual_norm", "iterate_to_fixpoint"]

_logger = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class ConvergenceInfo:
    """Record of an iterative solve.

    Attributes
    ----------
    converged:
        Whether the residual dropped below the tolerance.
    iterations:
        Iterations actually performed.
    residual:
        Final residual norm (same norm as the stopping rule).
    tolerance:
        The requested stopping tolerance.
    residual_history:
        Residual after each iteration — the convergence curve, used by the
        solver-ablation bench.
    """

    converged: bool
    iterations: int
    residual: float
    tolerance: float
    residual_history: tuple[float, ...] = ()

    def convergence_summary(self, *, curve_points: int = 5) -> str:
        """One-line human summary: outcome, iterations, residual tail.

        >>> info = ConvergenceInfo(True, 3, 5e-10, 1e-9,
        ...                        (1e-2, 1e-6, 5e-10))
        >>> info.convergence_summary()
        'converged in 3 iterations (residual 5.00e-10, tolerance 1.00e-09); last residuals: 1.00e-02 -> 1.00e-06 -> 5.00e-10'
        """
        state = "converged" if self.converged else "did NOT converge"
        text = (
            f"{state} in {self.iterations} iterations "
            f"(residual {self.residual:.2e}, tolerance {self.tolerance:.2e})"
        )
        tail = self.residual_history[-max(int(curve_points), 0):]
        if tail:
            curve = " -> ".join(f"{r:.2e}" for r in tail)
            text += f"; last residuals: {curve}"
        return text


def residual_norm(diff: np.ndarray, norm: str) -> float:
    """Norm of an iterate difference under the configured stopping norm."""
    if norm == "l1":
        return float(np.abs(diff).sum())
    if norm == "l2":
        return float(np.linalg.norm(diff))
    if norm == "linf":
        return float(np.abs(diff).max())
    raise ConfigError(f"unknown norm {norm!r}")


def iterate_to_fixpoint(
    step: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    params: "RankingParams",
    *,
    solver: str,
    label: str = "",
    kernel: str | None = None,
    dangling_mask: np.ndarray | None = None,
    callback: Callable[[int, float], None] | None = None,
    span_meta: Mapping[str, object] | None = None,
) -> tuple[np.ndarray, ConvergenceInfo]:
    """Iterate ``x <- step(x)`` until the stopping rule fires.

    Parameters
    ----------
    step:
        One full update.  Must return a vector distinct from its input
        (the residual is computed between the two).
    x0:
        Starting iterate; not mutated.
    params:
        Stopping rule (``tolerance``, ``max_iter``, ``norm``, ``strict``)
        plus the optional ``progress`` telemetry hook.
    solver:
        Solver name for spans/telemetry (``"power"``, ``"jacobi"``, ...).
    label:
        Human-readable solve tag; falls back to ``solver``.
    kernel:
        Matvec kernel name, forwarded to spans/telemetry when set (the
        linear solvers pass ``None`` — they have no kernel choice).
    dangling_mask:
        Boolean mask of dangling rows.  When given, the dangling-row
        count is reported at solve start and the current dangling mass on
        every iteration (power-solver telemetry); ``None`` omits both.
    callback:
        Optional per-iteration hook ``(iteration, residual)``.
    span_meta:
        Extra key/values attached to the ``solve:<label>`` span.

    Returns
    -------
    tuple
        ``(x, info)`` — the final iterate and its convergence record.

    Raises
    ------
    ConvergenceError
        When ``params.strict`` and ``max_iter`` is exhausted first, or —
        as one of the typed subclasses — when an enabled resilience guard
        trips (NaN/Inf iterate, divergence, stagnation, deadline).  The
        error carries the last finite iterate on ``last_iterate`` so
        fallback chains can warm-start.
    """
    progress = params.progress
    tag = label or solver
    n = int(np.asarray(x0).size)
    meta: dict[str, object] = dict(span_meta or {})
    if kernel is not None:
        meta.setdefault("kernel", kernel)
    resilience = getattr(params, "resilience", None)
    guard = None
    if resilience is not None and resilience.enabled:
        # Imported lazily: repro.resilience sits beside this layer and
        # importing it at module scope would cycle through the registry.
        from ..resilience.guards import SolveGuard

        guard = SolveGuard(resilience, tolerance=params.tolerance, label=tag)
    audit = getattr(params, "audit", None)
    mass_auditor = None
    if audit is not None and audit.check_every and solver == "power":
        # Lazily imported like the guards (repro.audit sits above this
        # layer).  Power only: the linear solvers' intermediate iterates
        # are not probability distributions, so mass conservation is not
        # an invariant there.
        from ..audit.invariants import IterateMassAuditor

        mass_auditor = IterateMassAuditor(
            audit,
            subject=tag,
            # With dangling rows the "linear" handling lets mass leak
            # (never grow); "teleport" keeps mass at 1, which the leaky
            # bound also accepts.
            leaky=dangling_mask is not None and bool(dangling_mask.any()),
        )
    ckpt = getattr(params, "checkpoint", None)
    ckpt_every = 0
    start_iteration = 0
    if ckpt is not None:
        ckpt_every = (
            resilience.checkpoint_every
            if resilience is not None and resilience.checkpoint_every
            else ckpt.every
        )
        state = ckpt.load(tag)
        if state is not None and state.x.size == n:
            x0 = state.x.copy()
            start_iteration = min(int(state.iteration), params.max_iter - 1)
            meta.setdefault("resumed_from", start_iteration)
    # Event + profile hooks are per-solve (never per-iteration) and free
    # when no ambient log/profiler is active.
    emit_event(
        "solve_start",
        label=tag,
        solver=solver,
        n=n,
        tolerance=params.tolerance,
        max_iter=params.max_iter,
        resumed_from=start_iteration or None,
    )
    try:
        return _iterate_inner(
            step,
            x0,
            params,
            solver=solver,
            tag=tag,
            kernel=kernel,
            dangling_mask=dangling_mask,
            callback=callback,
            meta=meta,
            progress=progress,
            guard=guard,
            mass_auditor=mass_auditor,
            audit=audit,
            ckpt=ckpt,
            ckpt_every=ckpt_every,
            start_iteration=start_iteration,
            n=n,
        )
    except ConvergenceError as exc:
        # Guard trips (NaN, divergence, stagnation, deadline) and strict
        # non-convergence leave through here; stamp the failure so the
        # event log shows *why* a fallback or degradation followed.
        emit_event(
            "solve_failed",
            label=tag,
            solver=solver,
            error=type(exc).__name__,
            detail=str(exc),
        )
        raise


def _iterate_inner(
    step,
    x0,
    params,
    *,
    solver,
    tag,
    kernel,
    dangling_mask,
    callback,
    meta,
    progress,
    guard,
    mass_auditor,
    audit,
    ckpt,
    ckpt_every,
    start_iteration,
    n,
):
    track_dangling = 0
    with span(f"solve:{tag}", solver=solver, n=n, **meta) as trace, \
            profile_block(f"solve:{tag}", solver=solver):
        if progress is not None:
            start_kwargs: dict[str, object] = {}
            if kernel is not None:
                start_kwargs["kernel"] = kernel
            if dangling_mask is not None:
                track_dangling = int(dangling_mask.sum())
                start_kwargs["n_dangling"] = track_dangling
            progress.on_solve_start(
                tag,
                solver=solver,
                n=n,
                tolerance=params.tolerance,
                max_iter=params.max_iter,
                **start_kwargs,
            )
        x = x0
        history: list[float] = []
        residual = np.inf
        iterations = start_iteration
        for iterations in range(start_iteration + 1, params.max_iter + 1):
            if progress is not None:
                t0 = time.perf_counter()
            x_next = step(x)
            residual = residual_norm(x_next - x, params.norm)
            history.append(residual)
            x = x_next
            if callback is not None:
                callback(iterations, residual)
            if progress is not None:
                progress.on_iteration(
                    tag,
                    iterations,
                    residual,
                    step_seconds=time.perf_counter() - t0,
                    dangling_mass=(
                        float(x[dangling_mask].sum()) if track_dangling else None
                    ),
                )
            if mass_auditor is not None and iterations % audit.check_every == 0:
                mass_auditor.check(iterations, x)
            if residual < params.tolerance:
                break
            if guard is not None:
                guard.check(iterations, x, residual)
            if ckpt is not None and iterations % ckpt_every == 0:
                ckpt.save(tag, x, iterations, residual)
        converged = residual < params.tolerance
        if trace is not None:
            trace.meta["iterations"] = iterations
    if ckpt is not None and converged:
        ckpt.save(tag, x, iterations, residual)
    info = ConvergenceInfo(
        converged=converged,
        iterations=iterations,
        residual=float(residual),
        tolerance=params.tolerance,
        residual_history=tuple(history),
    )
    if progress is not None:
        progress.on_solve_end(tag, info)
    emit_event(
        "solve_end",
        label=tag,
        solver=solver,
        converged=converged,
        iterations=iterations,
        residual=float(residual),
    )
    if not converged:
        if params.strict:
            err = ConvergenceError(iterations, residual, params.tolerance)
            if np.isfinite(np.asarray(x)).all():
                err.last_iterate = np.array(x, dtype=np.float64, copy=True)
            raise err
        _logger.warning(
            "%s did not converge: residual %.3e after %d iterations",
            tag,
            residual,
            iterations,
        )
    return x, info

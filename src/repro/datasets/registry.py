"""Named dataset configurations mirroring the paper's three crawls.

Each :class:`DatasetSpec` couples a synthetic-web config, a spam-plant
config, and the paper's Table 1 ground truth for shape comparison.  Scales
are chosen so the full Fig. 5/6/7 sweeps run on a laptop in minutes (the
``scale`` factor records sources relative to the paper's crawl); pass
``scale_override`` to :func:`load_dataset` for larger runs.

Source-edge densities (edges per source) in Table 1: UK2002 ≈ 16.5,
IT2004 ≈ 20.3, WB2001 ≈ 17.0 — the per-dataset generator knobs below are
tuned so the synthetic source graphs land near those densities, which
``bench_table1_source_summary`` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import DatasetError
from ..graph.pagegraph import PageGraph
from ..sources.assignment import SourceAssignment
from .spam_labels import SpamPlantConfig, plant_spam_communities
from .synthetic import SyntheticWebConfig, generate_web

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "LoadedDataset"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A named synthetic analogue of one of the paper's crawls."""

    name: str
    description: str
    web: SyntheticWebConfig
    spam: SpamPlantConfig
    paper_sources: int
    paper_edges: int
    paper_pages: str
    scale: float


@dataclass(frozen=True, slots=True)
class LoadedDataset:
    """A generated dataset: clean web + planted spam + ground truth."""

    spec: DatasetSpec
    graph: PageGraph
    assignment: SourceAssignment
    spam_sources: np.ndarray

    @property
    def n_pages(self) -> int:
        """Total pages including planted spam pages."""
        return self.graph.n_nodes

    @property
    def n_sources(self) -> int:
        """Total sources including planted spam sources."""
        return self.assignment.n_sources


# The paper's spam fraction: 10,315 of 738,626 WB2001 sources ≈ 1.4 %.
_SPAM_FRACTION = 10_315 / 738_626

DATASETS: dict[str, DatasetSpec] = {
    "uk2002_like": DatasetSpec(
        name="uk2002_like",
        description=(
            "Synthetic analogue of the 2002 UbiCrawler .uk crawl "
            "(98,221 sources / 1,625,097 source edges), at ~1/100 scale"
        ),
        web=SyntheticWebConfig(
            n_sources=982,
            mean_pages_per_source=38.0,
            size_sigma=1.2,
            mean_out_degree=8.0,
            intra_fraction=0.78,
            mean_targets_per_source=78.0,
            popularity_noise=1.1,
            seed=20_02,
        ),
        spam=SpamPlantConfig(
            n_spam_sources=max(2, int(round(982 * _SPAM_FRACTION))),
            seed=20_02 + 1,
        ),
        paper_sources=98_221,
        paper_edges=1_625_097,
        paper_pages="18M",
        scale=1 / 100,
    ),
    "it2004_like": DatasetSpec(
        name="it2004_like",
        description=(
            "Synthetic analogue of the 2004 UbiCrawler .it crawl "
            "(141,103 sources / 2,862,460 source edges), at ~1/100 scale"
        ),
        web=SyntheticWebConfig(
            n_sources=1_411,
            mean_pages_per_source=42.0,
            size_sigma=1.25,
            mean_out_degree=9.5,
            intra_fraction=0.76,
            mean_targets_per_source=240.0,
            popularity_noise=1.1,
            seed=20_04,
        ),
        spam=SpamPlantConfig(
            n_spam_sources=max(2, int(round(1_411 * _SPAM_FRACTION))),
            seed=20_04 + 1,
        ),
        paper_sources=141_103,
        paper_edges=2_862_460,
        paper_pages="40M",
        scale=1 / 100,
    ),
    "wb2001_like": DatasetSpec(
        name="wb2001_like",
        description=(
            "Synthetic analogue of the 2001 Stanford WebBase crawl "
            "(738,626 sources / 12,554,332 source edges), at ~1/300 scale"
        ),
        web=SyntheticWebConfig(
            n_sources=2_462,
            mean_pages_per_source=30.0,
            size_sigma=1.3,
            mean_out_degree=8.5,
            intra_fraction=0.78,
            mean_targets_per_source=68.0,
            popularity_noise=1.1,
            seed=20_01,
        ),
        spam=SpamPlantConfig(
            n_spam_sources=max(2, int(round(2_462 * _SPAM_FRACTION))),
            seed=20_01 + 1,
        ),
        paper_sources=738_626,
        paper_edges=12_554_332,
        paper_pages="118M",
        scale=1 / 300,
    ),
    # A small config for tests and the quickstart example.
    "tiny": DatasetSpec(
        name="tiny",
        description="Tiny synthetic web for tests and examples",
        web=SyntheticWebConfig(
            n_sources=120,
            mean_pages_per_source=12.0,
            size_sigma=1.0,
            mean_out_degree=6.0,
            intra_fraction=0.75,
            seed=7,
        ),
        spam=SpamPlantConfig(n_spam_sources=8, seed=8),
        paper_sources=0,
        paper_edges=0,
        paper_pages="-",
        scale=0.0,
    ),
}


def load_dataset(
    name: str,
    *,
    with_spam: bool = True,
    scale_override: float | None = None,
    seed_override: int | None = None,
) -> LoadedDataset:
    """Generate a named dataset deterministically.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS`.
    with_spam:
        When False, skip spam planting (``spam_sources`` comes back
        empty) — the clean-web path used by Fig. 6/7, whose attacks are
        injected per-run.
    scale_override:
        Multiply source counts by this factor (e.g. ``10.0`` regenerates
        uk2002_like at 1/10 of the real crawl instead of 1/100).
    seed_override:
        Replace the spec's web seed (spam seed is derived as ``seed + 1``).
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    web_cfg = spec.web
    spam_cfg = spec.spam
    if scale_override is not None:
        if scale_override <= 0:
            raise DatasetError(f"scale_override must be > 0, got {scale_override}")
        web_cfg = replace(
            web_cfg, n_sources=max(2, int(round(web_cfg.n_sources * scale_override)))
        )
        spam_cfg = replace(
            spam_cfg,
            n_spam_sources=max(
                2, int(round(spam_cfg.n_spam_sources * scale_override))
            ),
        )
    if seed_override is not None:
        web_cfg = replace(web_cfg, seed=int(seed_override))
        spam_cfg = replace(spam_cfg, seed=int(seed_override) + 1)

    graph, assignment = generate_web(web_cfg)
    if with_spam:
        graph, assignment, spam_sources = plant_spam_communities(
            graph, assignment, spam_cfg
        )
    else:
        spam_sources = np.empty(0, dtype=np.int64)
    return LoadedDataset(
        spec=spec, graph=graph, assignment=assignment, spam_sources=spam_sources
    )

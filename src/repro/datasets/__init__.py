"""Data substrate: synthetic web graphs and planted spam communities.

The paper evaluates on three crawls (WB2001, UK2002, IT2004) that are not
redistributable and require no-network infrastructure to obtain; per the
substitution policy in DESIGN.md, this package generates scaled synthetic
analogues with the ensemble properties the experiments actually exercise —
heavy-tailed source sizes and in-degrees, strong intra-source link
locality — plus planted spam communities standing in for the paper's
manually-labeled pornography sources.
"""

from .synthetic import (
    SyntheticSourceConfig,
    SyntheticWebConfig,
    generate_source_store,
    generate_web,
)
from .spam_labels import SpamPlantConfig, plant_spam_communities, sample_seed_set
from .registry import DatasetSpec, DATASETS, load_dataset, LoadedDataset
from .validation import CheckResult, ValidationReport, validate_dataset

__all__ = [
    "CheckResult",
    "ValidationReport",
    "validate_dataset",
    "SyntheticWebConfig",
    "generate_web",
    "SyntheticSourceConfig",
    "generate_source_store",
    "SpamPlantConfig",
    "plant_spam_communities",
    "sample_seed_set",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "LoadedDataset",
]

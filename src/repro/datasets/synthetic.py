"""Host-locality synthetic web-graph generator.

Generates page graphs with the three ensemble properties the paper's
experiments depend on (see DESIGN.md §2 for the substitution argument):

1. **heavy-tailed source sizes** — pages per host are lognormal
   (web-standard since the early host-level studies the paper cites);
2. **strong intra-source locality** — a configurable fraction (default
   0.78, inside the 75–80 % band reported by [7, 13, 14, 23]) of page
   links stay inside their source;
3. **heavy-tailed source popularity** — inter-source links choose their
   target source with probability proportional to a Pareto-perturbed size
   ("rich get richer" without requiring a sequential preferential-
   attachment loop), and land on the source's home page with a hub bias,
   producing the skewed in-degree distribution of real crawls.

Everything is vectorized: the generator draws all edges in bulk NumPy
operations and lets :meth:`PageGraph.from_edges` de-duplicate.

For graphs past laptop RAM, :func:`generate_source_store` generates the
*source-level* row-stochastic matrix shard-at-a-time straight into a
:class:`~repro.webgraph.store.ShardedGraphStore`: one O(n) popularity CDF
is the only full-size allocation, every block's edges are drawn, deduped,
weighted, and published independently, so multi-million-source graphs are
produced without ever holding the edge list.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from ..graph.pagegraph import PageGraph
from ..sources.assignment import SourceAssignment

__all__ = [
    "SyntheticWebConfig",
    "generate_web",
    "SyntheticSourceConfig",
    "generate_source_store",
]


@dataclass(frozen=True, slots=True)
class SyntheticWebConfig:
    """Parameters of the synthetic web generator.

    Attributes
    ----------
    n_sources:
        Number of sources (hosts).
    mean_pages_per_source:
        Mean of the lognormal source-size distribution.
    size_sigma:
        Lognormal shape parameter (higher = heavier source-size tail).
    mean_out_degree:
        Mean page out-degree (total edges ≈ pages × this).
    intra_fraction:
        Fraction of links staying inside their source.
    popularity_exponent:
        Exponent on source size when weighting inter-source targets.
    popularity_noise:
        Pareto shape of the multiplicative popularity perturbation
        (lower = heavier popularity tail).
    mean_targets_per_source:
        Mean number of *distinct* target sources each source links to —
        this directly controls the source-graph edge density (Table 1's
        edges/sources ratio ≈ 16–20 for the paper's crawls).  Real hosts
        cite a bounded neighbourhood of related hosts, not an unbounded
        popularity-weighted sample.
    targets_sigma:
        Lognormal shape of the per-source target-set size.
    hub_bias:
        Probability that an inter-source link lands on the target
        source's home page rather than a uniform page.
    seed:
        Generator seed; same config + seed ⇒ identical graph.
    """

    n_sources: int = 1000
    mean_pages_per_source: float = 40.0
    size_sigma: float = 1.2
    mean_out_degree: float = 8.0
    intra_fraction: float = 0.78
    popularity_exponent: float = 1.0
    popularity_noise: float = 1.5
    mean_targets_per_source: float = 18.0
    targets_sigma: float = 1.0
    hub_bias: float = 0.5
    seed: int = 2007

    def __post_init__(self) -> None:
        if self.n_sources < 2:
            raise DatasetError(f"n_sources must be >= 2, got {self.n_sources}")
        if self.mean_pages_per_source < 1:
            raise DatasetError(
                f"mean_pages_per_source must be >= 1, got {self.mean_pages_per_source}"
            )
        if self.size_sigma <= 0:
            raise DatasetError(f"size_sigma must be > 0, got {self.size_sigma}")
        if self.mean_out_degree <= 0:
            raise DatasetError(
                f"mean_out_degree must be > 0, got {self.mean_out_degree}"
            )
        if not 0.0 <= self.intra_fraction <= 1.0:
            raise DatasetError(
                f"intra_fraction must lie in [0, 1], got {self.intra_fraction}"
            )
        if not 0.0 <= self.hub_bias <= 1.0:
            raise DatasetError(f"hub_bias must lie in [0, 1], got {self.hub_bias}")
        if self.popularity_noise <= 0:
            raise DatasetError(
                f"popularity_noise must be > 0, got {self.popularity_noise}"
            )
        if self.mean_targets_per_source < 1:
            raise DatasetError(
                f"mean_targets_per_source must be >= 1, got "
                f"{self.mean_targets_per_source}"
            )
        if self.targets_sigma <= 0:
            raise DatasetError(
                f"targets_sigma must be > 0, got {self.targets_sigma}"
            )


def _source_sizes(config: SyntheticWebConfig, rng: np.random.Generator) -> np.ndarray:
    """Lognormal page counts per source, mean-matched, minimum one page."""
    sigma = config.size_sigma
    # lognormal mean = exp(mu + sigma^2/2)  =>  mu from the target mean.
    mu = np.log(config.mean_pages_per_source) - 0.5 * sigma * sigma
    sizes = np.ceil(rng.lognormal(mu, sigma, size=config.n_sources)).astype(np.int64)
    return np.maximum(sizes, 1)


def _popularity(
    sizes: np.ndarray, config: SyntheticWebConfig, rng: np.random.Generator
) -> np.ndarray:
    """Normalized inter-source target distribution."""
    weights = sizes.astype(np.float64) ** config.popularity_exponent
    weights *= 1.0 + rng.pareto(config.popularity_noise, size=sizes.size)
    return weights / weights.sum()


def _draw_sources(prob: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
    """Inverse-CDF sampling of ``count`` source ids (fast for huge counts)."""
    cdf = np.cumsum(prob)
    cdf[-1] = 1.0  # guard against rounding
    return np.searchsorted(cdf, rng.random(count), side="right").astype(np.int64)


def generate_web(
    config: SyntheticWebConfig,
) -> tuple[PageGraph, SourceAssignment]:
    """Generate a synthetic page graph and its source assignment.

    Returns
    -------
    (PageGraph, SourceAssignment)
        Page ids are grouped contiguously by source (source ``s`` owns the
        page range ``[offsets[s], offsets[s] + sizes[s])``; page
        ``offsets[s]`` is the source's home page).
    """
    rng = np.random.default_rng(config.seed)
    sizes = _source_sizes(config, rng)
    n_pages = int(sizes.sum())
    offsets = np.zeros(config.n_sources + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    page_to_source = np.repeat(
        np.arange(config.n_sources, dtype=np.int64), sizes
    )

    total_edges = int(round(n_pages * config.mean_out_degree))
    n_intra = int(round(total_edges * config.intra_fraction))
    n_inter = total_edges - n_intra

    # ------------------------------------------------------------------
    # Intra-source links: uniform source page -> uniform page of the same
    # source; accidental self-links are dropped (single-page sources
    # cannot host intra links at all).
    # ------------------------------------------------------------------
    intra_src = rng.integers(0, n_pages, size=n_intra)
    s_of = page_to_source[intra_src]
    intra_dst = offsets[s_of] + rng.integers(0, np.iinfo(np.int64).max, size=n_intra) % sizes[s_of]
    keep = intra_src != intra_dst
    intra_src, intra_dst = intra_src[keep], intra_dst[keep]

    # ------------------------------------------------------------------
    # Inter-source links: each source first draws a bounded *candidate set*
    # of target sources (popularity-weighted — this is what bounds the
    # source-graph edge density at Table 1's level); each inter page link
    # then picks uniformly within its source's candidate set, landing on
    # the target's home page with the hub bias.  Edges landing in the
    # origin source are dropped (they were counted as inter).
    # ------------------------------------------------------------------
    if n_inter > 0:
        prob = _popularity(sizes, config, rng)
        # Per-source candidate-set sizes (lognormal, >= 1).
        t_sigma = config.targets_sigma
        t_mu = np.log(config.mean_targets_per_source) - 0.5 * t_sigma * t_sigma
        n_targets = np.maximum(
            np.ceil(rng.lognormal(t_mu, t_sigma, size=config.n_sources)), 1
        ).astype(np.int64)
        n_targets = np.minimum(n_targets, config.n_sources - 1)
        cand_offsets = np.zeros(config.n_sources + 1, dtype=np.int64)
        np.cumsum(n_targets, out=cand_offsets[1:])
        candidates = _draw_sources(prob, int(cand_offsets[-1]), rng)

        inter_src = rng.integers(0, n_pages, size=n_inter)
        s_origin = page_to_source[inter_src]
        pick = (
            rng.integers(0, np.iinfo(np.int64).max, size=n_inter)
            % n_targets[s_origin]
        )
        t_source = candidates[cand_offsets[s_origin] + pick]
        keep = s_origin != t_source
        inter_src, t_source = inter_src[keep], t_source[keep]
        uniform_page = offsets[t_source] + (
            rng.integers(0, np.iinfo(np.int64).max, size=t_source.size)
            % sizes[t_source]
        )
        to_hub = rng.random(t_source.size) < config.hub_bias
        inter_dst = np.where(to_hub, offsets[t_source], uniform_page)
    else:
        inter_src = np.empty(0, dtype=np.int64)
        inter_dst = np.empty(0, dtype=np.int64)

    graph = PageGraph.from_edges(
        np.concatenate([intra_src, inter_src]),
        np.concatenate([intra_dst, inter_dst]),
        n_pages,
    )
    assignment = SourceAssignment(page_to_source)
    return graph, assignment


# ----------------------------------------------------------------------
# Shard-at-a-time source-matrix generation (out-of-core scale).
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SyntheticSourceConfig:
    """Parameters of the streamed source-matrix generator.

    Generates the source-level weighted graph directly (the ``T'`` the
    ranking layer consumes) rather than a page graph — at millions of
    sources the page layer would be two orders of magnitude larger than
    the object under study.  Popularity follows the same Pareto-perturbed
    lognormal-size recipe as :class:`SyntheticWebConfig`.

    Attributes
    ----------
    n_sources:
        Number of sources (hosts).
    mean_out_degree:
        Mean number of distinct target sources per source (>= 1; every
        source gets at least one target, so no dangling rows).
    mean_size, size_sigma:
        Lognormal pseudo-size distribution feeding popularity.
    popularity_exponent, popularity_noise:
        As in :class:`SyntheticWebConfig`.
    seed:
        Generator seed.  Same config + seed + block size ⇒ identical
        store: each block draws from ``default_rng([seed, block_id])``,
        so generation order (or parallel generation) cannot change the
        graph.
    """

    n_sources: int = 1_000_000
    mean_out_degree: float = 8.0
    mean_size: float = 40.0
    size_sigma: float = 1.2
    popularity_exponent: float = 1.0
    popularity_noise: float = 1.5
    seed: int = 2007

    def __post_init__(self) -> None:
        if self.n_sources < 2:
            raise DatasetError(f"n_sources must be >= 2, got {self.n_sources}")
        if self.mean_out_degree < 1:
            raise DatasetError(
                f"mean_out_degree must be >= 1, got {self.mean_out_degree}"
            )
        if self.mean_size < 1:
            raise DatasetError(f"mean_size must be >= 1, got {self.mean_size}")
        if self.size_sigma <= 0:
            raise DatasetError(f"size_sigma must be > 0, got {self.size_sigma}")
        if self.popularity_noise <= 0:
            raise DatasetError(
                f"popularity_noise must be > 0, got {self.popularity_noise}"
            )


def generate_source_store(
    config: SyntheticSourceConfig,
    directory: str | Path,
    *,
    block_size: int | None = None,
):
    """Generate a row-stochastic source matrix shard-at-a-time.

    Peak memory is O(n + block·degree): the popularity CDF is the only
    full-size array; each row block's edges are drawn, de-duplicated,
    weighted, row-normalized, and published to the
    :class:`~repro.webgraph.store.ShardedGraphStore` before the next block
    starts.  Returns the finalized store.
    """
    from ..webgraph.store import DEFAULT_BLOCK_SIZE, ShardedStoreWriter

    block_size = int(block_size or DEFAULT_BLOCK_SIZE)
    n = config.n_sources
    master = np.random.default_rng(config.seed)
    mu = np.log(config.mean_size) - 0.5 * config.size_sigma**2
    sizes = np.maximum(
        np.ceil(master.lognormal(mu, config.size_sigma, size=n)), 1.0
    )
    weights = sizes ** config.popularity_exponent
    weights *= 1.0 + master.pareto(config.popularity_noise, size=n)
    cdf = np.cumsum(weights / weights.sum())
    cdf[-1] = 1.0  # guard against rounding
    del sizes, weights

    writer = ShardedStoreWriter(directory, n, block_size=block_size)
    for block_id, lo in enumerate(range(0, n, block_size)):
        hi = min(lo + block_size, n)
        rows_in_block = hi - lo
        # Per-block generator: the stream is a pure function of
        # (seed, block_id), independent of generation order.
        rng = np.random.default_rng([config.seed, block_id])
        degrees = 1 + rng.poisson(config.mean_out_degree - 1.0, rows_in_block)
        degrees = degrees.astype(np.int64)
        row_of = np.repeat(np.arange(rows_in_block, dtype=np.int64), degrees)
        targets = np.searchsorted(
            cdf, rng.random(int(degrees.sum())), side="right"
        ).astype(np.int64)
        # Sort + dedup (row, target) pairs; >= 1 target survives per row.
        order = np.lexsort((targets, row_of))
        sorted_t = targets[order]
        sorted_r = row_of[order]
        keep = np.ones(sorted_t.size, dtype=bool)
        keep[1:] = (sorted_r[1:] != sorted_r[:-1]) | (
            sorted_t[1:] != sorted_t[:-1]
        )
        cols = sorted_t[keep]
        kept_rows = sorted_r[keep]
        counts = np.bincount(kept_rows, minlength=rows_in_block)
        local_indptr = np.zeros(rows_in_block + 1, dtype=np.int64)
        np.cumsum(counts, out=local_indptr[1:])
        # Non-uniform edge weights, row-normalized to keep T' stochastic.
        raw = rng.random(cols.size) + 0.5
        row_mass = np.bincount(kept_rows, weights=raw, minlength=rows_in_block)
        data = raw / row_mass[kept_rows]
        writer.append_block(local_indptr, cols, data)
    return writer.finalize(
        meta={
            "generator": "synthetic-source",
            "seed": config.seed,
            "mean_out_degree": config.mean_out_degree,
        }
    )

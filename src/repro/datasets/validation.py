"""Dataset validation: does a synthetic web still earn its substitution?

DESIGN.md §2 argues the synthetic analogues preserve the ensemble
properties the paper's experiments exercise.  This module turns that
argument into executable checks, so regenerating a dataset (new seed,
new scale, tuned generator) immediately reports whether the analogue
still holds:

* **link locality** inside the 70–85 % band of the host-locality
  literature the paper cites;
* **source-edge density** within tolerance of the paper's Table 1 ratio;
* **heavy-tailed source sizes** (Gini above a floor);
* **a giant weak component** (real crawls are overwhelmingly connected);
* **spam fraction** near the paper's 1.4 % when spam is planted.

Used by ``tests/datasets/test_validation.py`` and printed by
``python -m repro dataset``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.components import component_summary
from ..graph.stats import gini_coefficient, intra_host_locality
from ..sources.sourcegraph import SourceGraph
from .registry import LoadedDataset

__all__ = ["CheckResult", "ValidationReport", "validate_dataset"]


@dataclass(frozen=True, slots=True)
class CheckResult:
    """One named validation check."""

    name: str
    passed: bool
    value: float
    expected: str

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for table rendering."""
        return {
            "check": self.name,
            "value": self.value,
            "expected": self.expected,
            "passed": "yes" if self.passed else "NO",
        }


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """All checks for one dataset."""

    dataset: str
    checks: tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(c.passed for c in self.checks)

    def failures(self) -> tuple[CheckResult, ...]:
        """The checks that failed."""
        return tuple(c for c in self.checks if not c.passed)

    def format(self) -> str:
        """Render the report as an aligned table."""
        from ..eval.reporting import format_table

        return format_table(
            [c.as_dict() for c in self.checks],
            ["check", "value", "expected", "passed"],
            title=f"dataset validation: {self.dataset}",
        )


# The paper's WB2001 spam fraction: 10,315 / 738,626.
_PAPER_SPAM_FRACTION = 10_315 / 738_626


def validate_dataset(
    ds: LoadedDataset,
    *,
    locality_band: tuple[float, float] = (0.65, 0.85),
    density_tolerance: float = 0.25,
    min_size_gini: float = 0.3,
    min_giant_fraction: float = 0.95,
    spam_fraction_tolerance: float = 0.5,
) -> ValidationReport:
    """Check a loaded dataset against the substitution targets.

    Parameters
    ----------
    ds:
        The dataset to validate.
    locality_band:
        Acceptable intra-source link fraction — the [7, 13, 14, 23]
        literature band (75–80 %) with slack on both sides; planted spam
        communities legitimately pull the measured value a few points
        below the clean generator target.
    density_tolerance:
        Relative tolerance on edges-per-source vs the paper's Table 1
        ratio (skipped for specs without paper ground truth).
    min_size_gini:
        Floor on source-size inequality (heavy-tail requirement).
    min_giant_fraction:
        Floor on the giant weak component's coverage.
    spam_fraction_tolerance:
        Relative tolerance on the planted-spam fraction vs the paper's
        1.4 % (skipped when no spam was planted).
    """
    checks: list[CheckResult] = []

    locality = intra_host_locality(ds.graph, ds.assignment.page_to_source)
    checks.append(
        CheckResult(
            name="intra_source_locality",
            passed=locality_band[0] <= locality <= locality_band[1],
            value=round(locality, 4),
            expected=f"[{locality_band[0]}, {locality_band[1]}]",
        )
    )

    if ds.spec.paper_sources:
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        density = sg.n_edges(count_self=False) / ds.n_sources
        paper_density = ds.spec.paper_edges / ds.spec.paper_sources
        rel = abs(density - paper_density) / paper_density
        checks.append(
            CheckResult(
                name="source_edge_density",
                passed=rel <= density_tolerance,
                value=round(density, 3),
                expected=(
                    f"{paper_density:.2f} ±{100 * density_tolerance:.0f}% (Table 1)"
                ),
            )
        )

    size_gini = gini_coefficient(ds.assignment.source_sizes)
    checks.append(
        CheckResult(
            name="source_size_gini",
            passed=size_gini >= min_size_gini,
            value=round(size_gini, 4),
            expected=f">= {min_size_gini}",
        )
    )

    giant = component_summary(ds.graph).giant_fraction
    checks.append(
        CheckResult(
            name="giant_component_fraction",
            passed=giant >= min_giant_fraction,
            value=round(giant, 4),
            expected=f">= {min_giant_fraction}",
        )
    )

    # The paper-anchored spam-fraction check only applies to the crawl
    # analogues; toy specs (paper_sources == 0) deliberately over-plant
    # spam so small tests have signal.
    if ds.spam_sources.size and ds.spec.paper_sources:
        fraction = ds.spam_sources.size / ds.n_sources
        rel = abs(fraction - _PAPER_SPAM_FRACTION) / _PAPER_SPAM_FRACTION
        checks.append(
            CheckResult(
                name="spam_fraction",
                passed=rel <= spam_fraction_tolerance,
                value=round(fraction, 4),
                expected=(
                    f"{_PAPER_SPAM_FRACTION:.4f} "
                    f"±{100 * spam_fraction_tolerance:.0f}%"
                ),
            )
        )

    return ValidationReport(dataset=ds.spec.name, checks=tuple(checks))

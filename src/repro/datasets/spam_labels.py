"""Planted spam communities: ground-truth spam with controlled topology.

The paper manually labeled 10,315 pornography sources in WB2001 and seeded
the spam-proximity walk with <10 % of them.  With synthetic graphs we get
to *plant* the spam instead, which gives exact ground truth and a
controllable attack topology.  A planted community is a blend of the
Section 2 structures:

* the spam sources interlink as a link exchange (dense ring + random
  chords among spam hubs);
* a subset act as link farms promoting designated target pages;
* a configurable number of **hijacked** legitimate pages link into the
  spam (this is what makes proximity propagation non-trivial: legitimate
  sources that link to spam must inherit some proximity);
* spam sources also link out to popular legitimate pages (camouflage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment

__all__ = ["SpamPlantConfig", "plant_spam_communities", "sample_seed_set"]


@dataclass(frozen=True, slots=True)
class SpamPlantConfig:
    """Parameters of the spam-community planting step.

    Attributes
    ----------
    n_spam_sources:
        Number of spam sources to create (the paper's WB2001 spam set is
        ~1.4 % of sources; the registry configs keep that fraction).
    pages_per_source:
        Mean pages per spam source (geometric, minimum 1).
    ring_chords:
        Extra random hub-to-hub exchange links per spam source.
    hijacked_per_source:
        Legitimate pages hijacked to link into each spam source.
    victim_pool_sources:
        Number of distinct legitimate sources the hijacked pages are drawn
        from (0 = derive as ``n_spam_sources // 2``).  Paper-era spam was
        hijack-concentrated: a spam campaign hits the same vulnerable
        boards/wikis repeatedly, so the spam in-neighbourhood stays small
        enough for the top-k throttle budget (2× the spam count, per the
        paper's 20,000-for-10,315 ratio) to cover it.
    camouflage_per_source:
        Outbound links per spam source to random legitimate pages.
    seed:
        Generator seed.
    """

    n_spam_sources: int = 50
    pages_per_source: int = 6
    ring_chords: int = 2
    hijacked_per_source: int = 3
    victim_pool_sources: int = 0
    camouflage_per_source: int = 2
    seed: int = 1337

    def __post_init__(self) -> None:
        if self.n_spam_sources < 2:
            raise DatasetError(
                f"n_spam_sources must be >= 2, got {self.n_spam_sources}"
            )
        if self.pages_per_source < 1:
            raise DatasetError(
                f"pages_per_source must be >= 1, got {self.pages_per_source}"
            )
        for name in (
            "ring_chords",
            "hijacked_per_source",
            "victim_pool_sources",
            "camouflage_per_source",
        ):
            if getattr(self, name) < 0:
                raise DatasetError(f"{name} must be >= 0")


def plant_spam_communities(
    graph: PageGraph,
    assignment: SourceAssignment,
    config: SpamPlantConfig,
) -> tuple[PageGraph, SourceAssignment, np.ndarray]:
    """Append spam communities to a clean web.

    Returns
    -------
    (graph, assignment, spam_sources)
        The augmented web plus the ids of the planted spam sources (the
        ground-truth label set).
    """
    rng = np.random.default_rng(config.seed)
    n_spam = config.n_spam_sources
    first_page = graph.n_nodes
    first_source = assignment.n_sources

    # Spam source sizes: geometric around the configured mean, >= 1.
    sizes = np.maximum(
        rng.geometric(1.0 / config.pages_per_source, size=n_spam), 1
    ).astype(np.int64)
    n_new_pages = int(sizes.sum())
    offsets = first_page + np.concatenate(
        [[0], np.cumsum(sizes)[:-1]]
    ).astype(np.int64)
    hubs = offsets  # first page of each spam source is its hub
    member_of = np.repeat(np.arange(n_spam, dtype=np.int64), sizes)
    new_pages = np.arange(first_page, first_page + n_new_pages, dtype=np.int64)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []

    # 1. Exchange ring: every spam page links to its own hub and to the
    #    next community's hub.
    src_parts.append(new_pages)
    dst_parts.append(hubs[member_of])
    src_parts.append(new_pages)
    dst_parts.append(hubs[(member_of + 1) % n_spam])

    # 2. Random chords between hubs (denser, less regular exchange).
    if config.ring_chords > 0:
        n_chords = n_spam * config.ring_chords
        a = rng.integers(0, n_spam, size=n_chords)
        b = rng.integers(0, n_spam, size=n_chords)
        keep = a != b
        src_parts.append(hubs[a[keep]])
        dst_parts.append(hubs[b[keep]])

    # 3. Hijacked legitimate pages linking into spam hubs, drawn from a
    #    bounded pool of victim sources (campaigns reuse the same
    #    vulnerable hosts).
    if config.hijacked_per_source > 0 and first_page > 0:
        n_hijack = n_spam * config.hijacked_per_source
        pool_size = config.victim_pool_sources or max(1, n_spam // 2)
        pool_size = min(pool_size, assignment.n_sources)
        pool = rng.choice(assignment.n_sources, size=pool_size, replace=False)
        victim_sources = pool[rng.integers(0, pool_size, size=n_hijack)]
        # One random page inside each chosen victim source.
        victims = np.empty(n_hijack, dtype=np.int64)
        for vs in np.unique(victim_sources):
            where = np.flatnonzero(victim_sources == vs)
            pages = assignment.pages_of(int(vs))
            victims[where] = rng.choice(pages, size=where.size, replace=True)
        pots = hubs[np.arange(n_hijack, dtype=np.int64) % n_spam]
        src_parts.append(victims)
        dst_parts.append(pots)

    # 4. Camouflage: spam hubs link out to random legitimate pages.
    if config.camouflage_per_source > 0 and first_page > 0:
        n_cam = n_spam * config.camouflage_per_source
        legit = rng.integers(0, first_page, size=n_cam)
        spam_hub = hubs[np.arange(n_cam, dtype=np.int64) % n_spam]
        src_parts.append(spam_hub)
        dst_parts.append(legit.astype(np.int64))

    spammed = add_edges(
        graph,
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        n_nodes=first_page + n_new_pages,
    )
    new_assignment = assignment.extended(n_new_pages, first_source + member_of)
    spam_sources = np.arange(first_source, first_source + n_spam, dtype=np.int64)
    return spammed, new_assignment, spam_sources


def sample_seed_set(
    spam_sources: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample the known-spam seed subset (the paper uses ~10 %).

    Always returns at least one seed.
    """
    spam_sources = np.asarray(spam_sources, dtype=np.int64)
    if spam_sources.size == 0:
        raise DatasetError("cannot sample seeds from an empty spam set")
    if not 0.0 < fraction <= 1.0:
        raise DatasetError(f"fraction must lie in (0, 1], got {fraction}")
    k = max(1, int(round(fraction * spam_sources.size)))
    return np.sort(rng.choice(spam_sources, size=k, replace=False))

"""The full Spam-Resilient SourceRank pipeline.

:class:`SpamResilientPipeline` wires the paper's components end to end:

1. group pages into sources (host assignment or caller-provided);
2. build the consensus-weighted source graph (Sections 3.1–3.2);
3. propagate spam proximity from a seed set (Section 5);
4. assign the throttling vector κ (Section 6.2's top-k heuristic);
5. compute Spam-Resilient SourceRank (Section 3.4), plus the baselines
   (PageRank, unthrottled SourceRank) for comparison.

This is the object a downstream user adopts; the quickstart example is a
fifteen-line use of it.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator

import numpy as np

from ..audit.invariants import InvariantAuditor
from ..config import (
    GraphStoreParams,
    ObservabilityParams,
    RankingParams,
    SpamProximityParams,
    ThrottleParams,
)
from ..errors import ConfigError
from ..graph.pagegraph import PageGraph
from ..linalg.iterate import ConvergenceInfo
from ..linalg.operator import (
    BlockedOperator,
    CsrOperator,
    ReversedOperator,
    ThrottledOperator,
)
from ..linalg.registry import solver_registry
from ..logging_utils import get_logger
from ..observability.events import EventLog, current_run_id
from ..observability.events import emit as emit_event
from ..observability.metrics import (
    DEFAULT_ITERATION_BUCKETS,
    get_registry,
)
from ..observability.profiling import Profiler, profile_block
from ..observability.tracing import SpanRecord, Tracer
from ..ranking.base import RankingResult
from ..ranking.pagerank import pagerank
from ..ranking.sourcerank import sourcerank
from ..ranking.srsourcerank import spam_resilient_sourcerank
from ..resilience.checkpoint import PipelineCheckpointer, content_key
from ..resilience.fallback import FallbackChain
from ..sources.assignment import SourceAssignment
from ..sources.sourcegraph import SourceGraph
from ..throttle.spam_proximity import spam_proximity
from ..throttle.strategies import assign_kappa
from ..throttle.vector import ThrottleVector

__all__ = [
    "SpamResilientPipeline",
    "PipelineResult",
    "PIPELINE_STAGES",
    "operator_from_store",
]

_logger = get_logger(__name__)

#: The five pipeline stages, in execution order; each becomes one trace span.
PIPELINE_STAGES: tuple[str, ...] = (
    "assignment",
    "source_graph",
    "proximity",
    "kappa",
    "rank",
)


def operator_from_store(
    store: object,
    params: GraphStoreParams | None = None,
) -> BlockedOperator:
    """Open a sharded graph store as an out-of-core transition operator.

    ``store`` is a :class:`~repro.webgraph.store.ShardedGraphStore` or a
    path to one on disk; ``params`` carries the cache/worker policy
    (defaults when omitted).  The returned
    :class:`~repro.linalg.BlockedOperator` owns any pool/cache resources
    it sets up — close it (or use it as a context manager) when done.
    """
    params = params or GraphStoreParams()
    return BlockedOperator(
        store,
        cache_blocks=params.cache_blocks,
        workers=params.workers,
        max_rebuilds=params.max_rebuilds,
        task_timeout=params.task_timeout,
    )


class _SharedOperators:
    """One web's source graph plus the lazily-built operators over it.

    The pipeline builds the source graph once per ``(graph, assignment)``
    pair and shares a single base :class:`CsrOperator` (SR-SourceRank and
    the baseline SourceRank walk the same unthrottled matrix) and a single
    :class:`ReversedOperator` (spam proximity) across every solve against
    that web.  Holds strong references to the inputs so the identity keys
    of the pipeline's cache stay valid.
    """

    __slots__ = ("graph", "assignment", "source_graph", "_kernel", "_base", "_reversed")

    def __init__(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        source_graph: SourceGraph,
        kernel: str,
    ) -> None:
        self.graph = graph
        self.assignment = assignment
        self.source_graph = source_graph
        self._kernel = kernel
        self._base: CsrOperator | None = None
        self._reversed: ReversedOperator | None = None

    @property
    def base(self) -> CsrOperator:
        """The unthrottled source-matrix operator, built on first use."""
        if self._base is None:
            self._base = CsrOperator(self.source_graph.matrix, kernel=self._kernel)
        return self._base

    @property
    def reversed(self) -> ReversedOperator:
        """The reversed-walk operator for spam proximity, built on first use."""
        if self._reversed is None:
            self._reversed = ReversedOperator(self.source_graph.matrix)
        return self._reversed

    def close(self) -> None:
        """Release kernel resources held by the built operators."""
        if self._base is not None:
            self._base.close()
            self._base = None
        self._reversed = None


@dataclass(frozen=True, slots=True)
class PipelineResult:
    """Everything the pipeline computed, for inspection and evaluation.

    ``trace`` is the run's span tree (root ``"pipeline"`` with one child
    per stage in :data:`PIPELINE_STAGES`, solver spans nested below);
    ``timings`` maps stage name to wall seconds.
    """

    source_graph: SourceGraph
    proximity: RankingResult | None
    kappa: ThrottleVector
    scores: RankingResult
    trace: SpanRecord | None = None
    timings: dict[str, float] = field(default_factory=dict)
    run_id: str | None = None

    def top_sources(self, k: int = 10) -> np.ndarray:
        """Ids of the k best-ranked sources."""
        return self.scores.top(k)

    def stage_seconds(self, stage: str) -> float:
        """Wall seconds spent in one named stage of this run."""
        if stage not in self.timings:
            raise ConfigError(
                f"unknown stage {stage!r}; run recorded {sorted(self.timings)}"
            )
        return self.timings[stage]


class SpamResilientPipeline:
    """Configure once, rank any web.

    Parameters
    ----------
    ranking:
        Mixing parameter / stopping rule for all walks (paper defaults
        when omitted).
    throttle:
        κ-assignment strategy (paper's top-k default when omitted).
    proximity:
        Spam-proximity walk parameters.
    weighting:
        Source-edge weighting: ``"consensus"`` (paper) or ``"uniform"``.
    full_throttle:
        κ=1 semantics: ``"dangling"`` (default — fully-throttled sources
        pass nothing to anyone including themselves, the behaviour the
        paper's Fig. 5 demonstrates) or ``"self"`` (the literal Section
        3.3 transform analysed in Section 4; see
        :mod:`repro.throttle.transform`).
    checkpoint_dir:
        When set, completed proximity/rank stages are checkpointed under
        this directory, keyed on a content hash of the inputs, and the
        iterative solves write periodic atomic solve checkpoints there
        (see :mod:`repro.resilience.checkpoint`).
    resume:
        When True (and ``checkpoint_dir`` is set), stages and solves
        whose checkpoints match the current inputs are resumed instead
        of recomputed.

    Notes
    -----
    When ``ranking.resilience.fallback_solvers`` is non-empty, the
    configured solver is wrapped in a
    :class:`~repro.resilience.FallbackChain` (primary solver first), so
    any guard trip during the rank or proximity stage fails over with a
    warm start instead of aborting the run.

    When ``ranking.audit`` is set, stage boundaries are audited by an
    :class:`~repro.audit.invariants.InvariantAuditor` (row-stochastic
    ``T'``, κ domain, ``T''`` diagonal/row mass, σ a distribution) and
    the power solves check per-iteration mass conservation; violations
    increment ``repro_audit_violations_total`` and, in strict mode,
    raise :class:`~repro.errors.AuditError`.

    The pipeline is a context manager: ``with SpamResilientPipeline() as
    pipe: ...`` guarantees the cached source graph and kernel resources
    (shared memory for the parallel kernel) are released even when a
    stage raises.

    Examples
    --------
    >>> from repro.datasets import load_dataset, sample_seed_set
    >>> import numpy as np
    >>> ds = load_dataset("tiny")
    >>> pipe = SpamResilientPipeline()
    >>> seeds = sample_seed_set(ds.spam_sources, 0.25, np.random.default_rng(0))
    >>> result = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
    >>> result.scores.n == ds.n_sources
    True
    """

    def __init__(
        self,
        ranking: RankingParams | None = None,
        throttle: ThrottleParams | None = None,
        proximity: SpamProximityParams | None = None,
        *,
        weighting: str = "consensus",
        full_throttle: str = "dangling",
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        observability: ObservabilityParams | None = None,
    ) -> None:
        self.ranking = ranking or RankingParams()
        self.throttle = throttle or ThrottleParams()
        self.proximity = proximity or SpamProximityParams()
        self.observability = observability or ObservabilityParams()
        self.events: EventLog | None = (
            EventLog(
                self.observability.events_path,
                run_id=self.observability.run_id,
                buffer=self.observability.events_buffer,
            )
            if self.observability.events
            else None
        )
        self.profiler: Profiler | None = (
            Profiler(top=self.observability.profile_top)
            if self.observability.profile
            else None
        )
        if weighting not in ("consensus", "uniform"):
            raise ConfigError(
                f"weighting must be 'consensus' or 'uniform', got {weighting!r}"
            )
        if full_throttle not in ("self", "dangling"):
            raise ConfigError(
                f"full_throttle must be 'self' or 'dangling', got {full_throttle!r}"
            )
        self.weighting = weighting
        self.full_throttle = full_throttle
        self._shared: tuple[tuple[int, int], _SharedOperators] | None = None
        self._checkpointer = (
            PipelineCheckpointer(checkpoint_dir, resume=resume)
            if checkpoint_dir is not None
            else None
        )
        self._auditor = InvariantAuditor(self.ranking.audit)
        resilience = self.ranking.resilience
        if resilience is not None and resilience.fallback_solvers:
            chain = FallbackChain(
                (self.ranking.solver, *resilience.fallback_solvers)
            )
            self.ranking = self.ranking.with_(solver=chain.register())

    # ------------------------------------------------------------------
    def build_source_graph(
        self, graph: PageGraph, assignment: SourceAssignment
    ) -> SourceGraph:
        """Step 1–2: quotient the page graph under the configured weighting."""
        return SourceGraph.from_page_graph(
            graph, assignment, weighting=self.weighting
        )

    def _shared_operators(
        self, graph: PageGraph, assignment: SourceAssignment
    ) -> _SharedOperators:
        """Source graph + operators for one web, cached across calls.

        A single-entry cache keyed on input identity: ``rank`` followed by
        ``baseline_sourcerank`` on the same web quotients the page graph
        and sets up kernels exactly once.  A new ``(graph, assignment)``
        pair evicts (and closes) the previous entry.
        """
        key = (id(graph), id(assignment))
        if self._shared is not None and self._shared[0] == key:
            return self._shared[1]
        if self._shared is not None:
            self._shared[1].close()
        shared = _SharedOperators(
            graph,
            assignment,
            self.build_source_graph(graph, assignment),
            self.ranking.kernel,
        )
        self._shared = (key, shared)
        return shared

    def clear_cache(self) -> None:
        """Drop the cached source graph/operators and release resources."""
        if self._shared is not None:
            self._shared[1].close()
            self._shared = None

    def close(self) -> None:
        """Release all cached resources (alias of :meth:`clear_cache`)."""
        self.clear_cache()

    def __enter__(self) -> "SpamResilientPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Runs on error paths too: a stage that raises mid-rank must not
        # leak the parallel kernel's shared-memory segments.
        self.close()

    @contextmanager
    def _stage(self, tracer: Tracer, name: str) -> Iterator[SpanRecord]:
        """One pipeline stage: trace span + event pair + profile block.

        ``stage_start``/``stage_end`` land on whatever event log is
        ambient (this pipeline's own, or one activated by a caller such
        as the serving updater); a stage that raises leaves a
        ``stage_failed`` event instead of ``stage_end``.
        """
        emit_event("stage_start", stage=name)
        try:
            with tracer.span(name) as sp, profile_block(f"stage:{name}"):
                yield sp
        except BaseException as exc:
            emit_event("stage_failed", stage=name, error=type(exc).__name__)
            raise
        emit_event("stage_end", stage=name, seconds=sp.duration)

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _checkpoint_setup(
        self,
        source_graph: SourceGraph,
        assignment: SourceAssignment,
        seeds: np.ndarray | None,
        kappa: ThrottleVector | np.ndarray | None,
    ) -> tuple[str | None, RankingParams, SpamProximityParams]:
        """Run key plus checkpoint-carrying params for one ``rank`` call.

        The key is a content hash of everything that determines the
        output — source-graph CSR arrays, page→source map, seeds or
        explicit κ, and every parameter set — so checkpoints can never be
        replayed onto different inputs.  Without a configured
        ``checkpoint_dir`` this is a no-op returning the plain params.
        """
        if self._checkpointer is None:
            return None, self.ranking, self.proximity
        kappa_part: object = "kappa:computed"
        if kappa is not None:
            values = kappa.kappa if isinstance(kappa, ThrottleVector) else kappa
            kappa_part = np.asarray(values, dtype=np.float64)
        run_key = content_key(
            source_graph.matrix,
            assignment.page_to_source,
            "seeds:none" if seeds is None else seeds,
            kappa_part,
            self.ranking,
            self.throttle,
            self.proximity,
            self.weighting,
            self.full_throttle,
        )
        resilience = self.ranking.resilience
        every = (
            resilience.checkpoint_every
            if resilience is not None and resilience.checkpoint_every
            else 25
        )
        solve_ckpt = self._checkpointer.solve_checkpointer(run_key, every=every)
        return (
            run_key,
            self.ranking.with_(checkpoint=solve_ckpt),
            replace(self.proximity, checkpoint=solve_ckpt),
        )

    _STAGE_FIELDS = ("scores", "iterations", "residual", "tolerance")

    def _load_stage_result(
        self, run_key: str | None, stage: str, label: str
    ) -> RankingResult | None:
        """Rebuild a stage's RankingResult from its checkpoint, if any."""
        if self._checkpointer is None or run_key is None:
            return None
        stored = self._checkpointer.load_stage(run_key, stage, self._STAGE_FIELDS)
        if stored is None:
            return None
        info = ConvergenceInfo(
            converged=True,
            iterations=int(stored["iterations"]),
            residual=float(stored["residual"]),
            tolerance=float(stored["tolerance"]),
        )
        return RankingResult(stored["scores"], info, label=label)

    def _save_stage_result(
        self, run_key: str | None, stage: str, result: RankingResult
    ) -> None:
        """Persist one completed stage's scores + convergence record."""
        if self._checkpointer is None or run_key is None:
            return
        self._checkpointer.save_stage(
            run_key,
            stage,
            scores=result.scores,
            iterations=np.int64(result.convergence.iterations),
            residual=np.float64(result.convergence.residual),
            tolerance=np.float64(result.convergence.tolerance),
        )

    def compute_kappa(
        self,
        source_graph: SourceGraph,
        spam_seeds: np.ndarray | list[int] | None,
    ) -> tuple[RankingResult | None, ThrottleVector]:
        """Steps 3–4: spam proximity (if seeds are known) and κ assignment.

        With no seeds the throttle vector is all-zeros and SR-SourceRank
        degrades to baseline SourceRank — the honest cold-start behaviour.
        """
        if spam_seeds is None or len(np.atleast_1d(np.asarray(spam_seeds))) == 0:
            return None, ThrottleVector.zeros(source_graph.n_sources)
        proximity = spam_proximity(source_graph, spam_seeds, self.proximity)
        kappa = assign_kappa(proximity.scores, self.throttle)
        return proximity, kappa

    def rank(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        *,
        spam_seeds: np.ndarray | list[int] | None = None,
        kappa: ThrottleVector | None = None,
    ) -> PipelineResult:
        """Run the full pipeline on a web.

        Parameters
        ----------
        graph, assignment:
            The page graph and its page→source map.
        spam_seeds:
            Ids of known spam *sources* (a small subsample suffices —
            Fig. 5 uses <10 % of ground truth).  Ignored when ``kappa``
            is given explicitly.
        kappa:
            Explicit throttling vector, bypassing spam proximity.

        Notes
        -----
        Every run is traced: the returned
        :attr:`PipelineResult.trace` holds a ``"pipeline"`` root span with
        one child per stage (``assignment``, ``source_graph``,
        ``proximity``, ``kappa``, ``rank``) and solver spans nested
        beneath them, and stage timings plus solver iteration counts are
        recorded in the global
        :class:`~repro.observability.metrics.MetricsRegistry`.
        """
        tracer = Tracer()
        with ExitStack() as stack:
            if self.events is not None:
                stack.enter_context(self.events.activate())
            if self.profiler is not None:
                stack.enter_context(self.profiler.activate())
            run_id = current_run_id()
            emit_event(
                "pipeline_start",
                pages=int(graph.n_nodes),
                sources=int(assignment.n_sources),
                weighting=self.weighting,
                solver=self.ranking.solver,
            )
            with tracer.activate(), tracer.span("pipeline") as root:
                with self._stage(tracer, "assignment") as sp:
                    seeds = None
                    if spam_seeds is not None:
                        seeds = np.atleast_1d(
                            np.asarray(spam_seeds, dtype=np.int64)
                        )
                    sp.meta.update(
                        pages=int(graph.n_nodes),
                        sources=int(assignment.n_sources),
                        seeds=0 if seeds is None else int(seeds.size),
                    )
                with self._stage(tracer, "source_graph") as sp:
                    shared = self._shared_operators(graph, assignment)
                    source_graph = shared.source_graph
                    sp.meta["edges"] = int(source_graph.matrix.nnz)
                    if self._auditor.enabled:
                        self._auditor.audit_transition(source_graph.matrix)
                        sp.meta["audited"] = True
                run_key, ranking_params, proximity_params = (
                    self._checkpoint_setup(
                        source_graph, assignment, seeds, kappa
                    )
                )
                if kappa is not None:
                    proximity = None
                    if not isinstance(kappa, ThrottleVector):
                        kappa = ThrottleVector(kappa)
                    with self._stage(tracer, "proximity") as sp:
                        sp.meta["skipped"] = "explicit kappa"
                    with self._stage(tracer, "kappa") as sp:
                        sp.meta["provided"] = True
                else:
                    with self._stage(tracer, "proximity") as sp:
                        if seeds is None or seeds.size == 0:
                            proximity = None
                            sp.meta["skipped"] = "no spam seeds"
                        else:
                            proximity = self._load_stage_result(
                                run_key, "proximity", "spam-proximity"
                            )
                            if proximity is not None:
                                sp.meta["resumed"] = True
                            else:
                                proximity = spam_proximity(
                                    source_graph,
                                    seeds,
                                    proximity_params,
                                    operator=shared.reversed,
                                )
                                self._save_stage_result(
                                    run_key, "proximity", proximity
                                )
                            sp.meta["iterations"] = (
                                proximity.convergence.iterations
                            )
                            if self._auditor.enabled:
                                self._auditor.audit_result(
                                    proximity, subject="spam-proximity"
                                )
                    with self._stage(tracer, "kappa") as sp:
                        if proximity is None:
                            kappa = ThrottleVector.zeros(
                                source_graph.n_sources
                            )
                        else:
                            kappa = assign_kappa(
                                proximity.scores, self.throttle
                            )
                        sp.meta["throttled"] = int(
                            kappa.fully_throttled().size
                        )
                if self._auditor.enabled:
                    # Audit the throttled walk the rank stage is about to
                    # solve with — the exact diag(s)·T' + diag(c) algebra
                    # the lazy operator applies, not a recomputation.
                    with self._stage(tracer, "audit") as sp:
                        self._auditor.audit_kappa(
                            kappa, n=source_graph.n_sources
                        )
                        throttled = ThrottledOperator(
                            shared.base, kappa, full_throttle=self.full_throttle
                        )
                        self._auditor.audit_throttled(throttled)
                        sp.meta["checks"] = "kappa,throttled"
                with self._stage(tracer, "rank") as sp:
                    scores = self._load_stage_result(
                        run_key, "rank", "sr-sourcerank"
                    )
                    if scores is not None:
                        sp.meta["resumed"] = True
                    else:
                        scores = spam_resilient_sourcerank(
                            source_graph,
                            kappa,
                            ranking_params,
                            full_throttle=self.full_throttle,
                            operator=shared.base,
                        )
                        self._save_stage_result(run_key, "rank", scores)
                    sp.meta["iterations"] = scores.convergence.iterations
                    if self._auditor.enabled:
                        self._auditor.audit_result(
                            scores, subject="sr-sourcerank"
                        )
            timings = {child.name: child.duration for child in root.children}
            self._record_run(root, timings, proximity, scores)
            emit_event(
                "pipeline_end",
                seconds=root.duration,
                converged=bool(scores.convergence.converged),
                iterations=int(scores.convergence.iterations),
            )
        return PipelineResult(
            source_graph=source_graph,
            proximity=proximity,
            kappa=kappa,
            scores=scores,
            trace=root,
            timings=timings,
            run_id=run_id,
        )

    @staticmethod
    def _record_run(
        root: SpanRecord,
        timings: dict[str, float],
        proximity: RankingResult | None,
        scores: RankingResult,
    ) -> None:
        """Publish one run's stage timings to the global metrics registry."""
        registry = get_registry()
        registry.counter(
            "repro_pipeline_runs_total",
            "Completed SpamResilientPipeline.rank calls",
        ).inc()
        stage_seconds = registry.histogram(
            "repro_pipeline_stage_seconds",
            "Wall time per pipeline stage",
            labelnames=("stage",),
        )
        for stage, seconds in timings.items():
            stage_seconds.labels(stage=stage).observe(seconds)
        iterations = registry.histogram(
            "repro_solver_iterations",
            "Iterations per iterative solve",
            labelnames=("label",),
            buckets=DEFAULT_ITERATION_BUCKETS,
        )
        if proximity is not None:
            iterations.labels(label=proximity.label or "spam-proximity").observe(
                proximity.convergence.iterations
            )
        iterations.labels(label=scores.label or "sr-sourcerank").observe(
            scores.convergence.iterations
        )
        _logger.info(
            "pipeline ranked %d sources in %.3f s (%s)",
            scores.n,
            root.duration,
            ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in timings.items()),
        )

    # ------------------------------------------------------------------
    # Out-of-core path
    # ------------------------------------------------------------------
    def rank_store(
        self,
        store: object,
        *,
        kappa: ThrottleVector | np.ndarray | None = None,
        store_params: GraphStoreParams | None = None,
    ) -> RankingResult:
        """Rank straight from a sharded on-disk source graph.

        The out-of-core sibling of :meth:`rank`: the source matrix is
        never materialized — blocks stream from the
        :class:`~repro.webgraph.store.ShardedGraphStore` through a
        :class:`~repro.linalg.BlockedOperator`, the throttle transform
        stays lazy on top of it, and peak memory is bounded by
        O(cached blocks + iterate).

        The store already *is* the source graph (rows row-normalized at
        decode time), so the assignment/source-graph/proximity stages do
        not apply; pass an explicit ``kappa`` (``None`` degrades to
        baseline SourceRank, matching :meth:`compute_kappa`'s cold-start
        behaviour).

        Parameters
        ----------
        store:
            A :class:`~repro.webgraph.store.ShardedGraphStore` or path to
            one.  A store passed by object stays open and owned by the
            caller; a path is opened and closed here.
        kappa:
            Explicit throttling vector over the store's sources.
        store_params:
            Cache/worker policy for the blocked operator
            (:class:`~repro.config.GraphStoreParams` defaults when
            omitted).
        """
        base = operator_from_store(store, store_params)
        try:
            if kappa is None:
                kappa = ThrottleVector.zeros(base.n)
            elif not isinstance(kappa, ThrottleVector):
                kappa = ThrottleVector(kappa)
            throttled = ThrottledOperator(
                base, kappa, full_throttle=self.full_throttle
            )
            try:
                with ExitStack() as stack:
                    if self.events is not None:
                        stack.enter_context(self.events.activate())
                    emit_event(
                        "pipeline_store_rank",
                        sources=int(base.n),
                        blocks=int(base.store.n_blocks),
                        kernel=base.kernel,
                        solver=self.ranking.solver,
                    )
                    return solver_registry.solve(
                        throttled,
                        self.ranking,
                        solver=self.ranking.solver,
                        label="sr-sourcerank:store",
                    )
            finally:
                throttled.close()
        finally:
            base.close()

    # ------------------------------------------------------------------
    # Baselines for comparison
    # ------------------------------------------------------------------
    def baseline_sourcerank(
        self,
        graph: PageGraph | None = None,
        assignment: SourceAssignment | None = None,
        *,
        source_graph: SourceGraph | None = None,
    ) -> RankingResult:
        """Unthrottled SourceRank over the same source graph.

        Reuses the source graph and base operator a prior :meth:`rank`
        call on the same ``(graph, assignment)`` pair already built,
        instead of re-quotienting the page graph.  Alternatively pass a
        prebuilt ``source_graph`` (e.g. :attr:`PipelineResult.source_graph`)
        directly.
        """
        if source_graph is not None:
            return sourcerank(source_graph, self.ranking)
        if graph is None or assignment is None:
            raise ConfigError(
                "baseline_sourcerank needs a (graph, assignment) pair or a "
                "prebuilt source_graph"
            )
        shared = self._shared_operators(graph, assignment)
        return sourcerank(
            shared.source_graph, self.ranking, operator=shared.base
        )

    def baseline_pagerank(self, graph: PageGraph) -> RankingResult:
        """Page-level PageRank (Eq. 1)."""
        return pagerank(graph, self.ranking)

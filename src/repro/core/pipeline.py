"""The full Spam-Resilient SourceRank pipeline.

:class:`SpamResilientPipeline` wires the paper's components end to end:

1. group pages into sources (host assignment or caller-provided);
2. build the consensus-weighted source graph (Sections 3.1–3.2);
3. propagate spam proximity from a seed set (Section 5);
4. assign the throttling vector κ (Section 6.2's top-k heuristic);
5. compute Spam-Resilient SourceRank (Section 3.4), plus the baselines
   (PageRank, unthrottled SourceRank) for comparison.

This is the object a downstream user adopts; the quickstart example is a
fifteen-line use of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RankingParams, SpamProximityParams, ThrottleParams
from ..errors import ConfigError
from ..graph.pagegraph import PageGraph
from ..ranking.base import RankingResult
from ..ranking.pagerank import pagerank
from ..ranking.sourcerank import sourcerank
from ..ranking.srsourcerank import spam_resilient_sourcerank
from ..sources.assignment import SourceAssignment
from ..sources.sourcegraph import SourceGraph
from ..throttle.spam_proximity import spam_proximity
from ..throttle.strategies import assign_kappa
from ..throttle.vector import ThrottleVector

__all__ = ["SpamResilientPipeline", "PipelineResult"]


@dataclass(frozen=True, slots=True)
class PipelineResult:
    """Everything the pipeline computed, for inspection and evaluation."""

    source_graph: SourceGraph
    proximity: RankingResult | None
    kappa: ThrottleVector
    scores: RankingResult

    def top_sources(self, k: int = 10) -> np.ndarray:
        """Ids of the k best-ranked sources."""
        return self.scores.top(k)


class SpamResilientPipeline:
    """Configure once, rank any web.

    Parameters
    ----------
    ranking:
        Mixing parameter / stopping rule for all walks (paper defaults
        when omitted).
    throttle:
        κ-assignment strategy (paper's top-k default when omitted).
    proximity:
        Spam-proximity walk parameters.
    weighting:
        Source-edge weighting: ``"consensus"`` (paper) or ``"uniform"``.
    full_throttle:
        κ=1 semantics: ``"dangling"`` (default — fully-throttled sources
        pass nothing to anyone including themselves, the behaviour the
        paper's Fig. 5 demonstrates) or ``"self"`` (the literal Section
        3.3 transform analysed in Section 4; see
        :mod:`repro.throttle.transform`).

    Examples
    --------
    >>> from repro.datasets import load_dataset, sample_seed_set
    >>> import numpy as np
    >>> ds = load_dataset("tiny")
    >>> pipe = SpamResilientPipeline()
    >>> seeds = sample_seed_set(ds.spam_sources, 0.25, np.random.default_rng(0))
    >>> result = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
    >>> result.scores.n == ds.n_sources
    True
    """

    def __init__(
        self,
        ranking: RankingParams | None = None,
        throttle: ThrottleParams | None = None,
        proximity: SpamProximityParams | None = None,
        *,
        weighting: str = "consensus",
        full_throttle: str = "dangling",
    ) -> None:
        self.ranking = ranking or RankingParams()
        self.throttle = throttle or ThrottleParams()
        self.proximity = proximity or SpamProximityParams()
        if weighting not in ("consensus", "uniform"):
            raise ConfigError(
                f"weighting must be 'consensus' or 'uniform', got {weighting!r}"
            )
        if full_throttle not in ("self", "dangling"):
            raise ConfigError(
                f"full_throttle must be 'self' or 'dangling', got {full_throttle!r}"
            )
        self.weighting = weighting
        self.full_throttle = full_throttle

    # ------------------------------------------------------------------
    def build_source_graph(
        self, graph: PageGraph, assignment: SourceAssignment
    ) -> SourceGraph:
        """Step 1–2: quotient the page graph under the configured weighting."""
        return SourceGraph.from_page_graph(
            graph, assignment, weighting=self.weighting
        )

    def compute_kappa(
        self,
        source_graph: SourceGraph,
        spam_seeds: np.ndarray | list[int] | None,
    ) -> tuple[RankingResult | None, ThrottleVector]:
        """Steps 3–4: spam proximity (if seeds are known) and κ assignment.

        With no seeds the throttle vector is all-zeros and SR-SourceRank
        degrades to baseline SourceRank — the honest cold-start behaviour.
        """
        if spam_seeds is None or len(np.atleast_1d(np.asarray(spam_seeds))) == 0:
            return None, ThrottleVector.zeros(source_graph.n_sources)
        proximity = spam_proximity(source_graph, spam_seeds, self.proximity)
        kappa = assign_kappa(proximity.scores, self.throttle)
        return proximity, kappa

    def rank(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        *,
        spam_seeds: np.ndarray | list[int] | None = None,
        kappa: ThrottleVector | None = None,
    ) -> PipelineResult:
        """Run the full pipeline on a web.

        Parameters
        ----------
        graph, assignment:
            The page graph and its page→source map.
        spam_seeds:
            Ids of known spam *sources* (a small subsample suffices —
            Fig. 5 uses <10 % of ground truth).  Ignored when ``kappa``
            is given explicitly.
        kappa:
            Explicit throttling vector, bypassing spam proximity.
        """
        source_graph = self.build_source_graph(graph, assignment)
        if kappa is not None:
            proximity = None
        else:
            proximity, kappa = self.compute_kappa(source_graph, spam_seeds)
        scores = spam_resilient_sourcerank(
            source_graph, kappa, self.ranking, full_throttle=self.full_throttle
        )
        return PipelineResult(
            source_graph=source_graph,
            proximity=proximity,
            kappa=kappa,
            scores=scores,
        )

    # ------------------------------------------------------------------
    # Baselines for comparison
    # ------------------------------------------------------------------
    def baseline_sourcerank(
        self, graph: PageGraph, assignment: SourceAssignment
    ) -> RankingResult:
        """Unthrottled SourceRank over the same source graph."""
        return sourcerank(self.build_source_graph(graph, assignment), self.ranking)

    def baseline_pagerank(self, graph: PageGraph) -> RankingResult:
        """Page-level PageRank (Eq. 1)."""
        return pagerank(graph, self.ranking)

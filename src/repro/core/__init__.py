"""End-to-end pipeline: the paper's full system in one object."""

from .pipeline import SpamResilientPipeline, PipelineResult

__all__ = ["SpamResilientPipeline", "PipelineResult"]

"""End-to-end pipeline: the paper's full system in one object."""

from .pipeline import SpamResilientPipeline, PipelineResult, operator_from_store

__all__ = ["SpamResilientPipeline", "PipelineResult", "operator_from_store"]

"""Correctness audit harness: invariants, differential oracle, metamorphic checks.

Three complementary layers of cross-checking for the ranking stack:

* :mod:`repro.audit.invariants` — cheap runtime invariant checks
  (row-stochasticity, ``T''_ii = κ_i``, mass conservation, σ a
  distribution), standalone or wired into the pipeline via
  :class:`~repro.config.AuditParams`;
* :mod:`repro.audit.differential` — a seeded oracle running every
  registered solver × kernel × {lazy, materialized, blocked} operator
  path (the blocked operand solves out-of-core from a sharded store) and
  flagging any pair that disagrees beyond 1e-9;
* :mod:`repro.audit.metamorphic` — relabeling-permutation,
  edge-weight-scaling, and seed-bias-monotonicity relations for
  :func:`~repro.ranking.srsourcerank.spam_resilient_sourcerank` and
  :func:`~repro.throttle.spam_proximity.spam_proximity`.

Violations flow through one channel: the
``repro_audit_violations_total`` metric (labelled by invariant) and, in
strict mode, a typed :class:`~repro.errors.AuditError`.
"""

from .differential import (
    DifferentialReport,
    GraphCase,
    generate_case_suite,
    run_differential_oracle,
)
from .invariants import (
    InvariantAuditor,
    InvariantViolation,
    check_iterate_mass,
    check_kappa_vector,
    check_row_stochastic,
    check_row_stochastic_blocks,
    check_score_distribution,
    check_throttled_matrix,
    check_throttled_operator,
    check_throttled_operator_blocks,
    record_violations,
)
from .metamorphic import (
    MetamorphicReport,
    check_permutation_relation,
    check_seed_monotonicity_relation,
    check_weight_scaling_relation,
    run_metamorphic_suite,
)

__all__ = [
    "InvariantViolation",
    "InvariantAuditor",
    "check_row_stochastic",
    "check_row_stochastic_blocks",
    "check_throttled_matrix",
    "check_throttled_operator",
    "check_throttled_operator_blocks",
    "check_score_distribution",
    "check_kappa_vector",
    "check_iterate_mass",
    "record_violations",
    "GraphCase",
    "DifferentialReport",
    "generate_case_suite",
    "run_differential_oracle",
    "MetamorphicReport",
    "check_permutation_relation",
    "check_weight_scaling_relation",
    "check_seed_monotonicity_relation",
    "run_metamorphic_suite",
]

"""Metamorphic relations for the ranking entry points.

Metamorphic testing sidesteps the oracle problem: we cannot say what σ
*should be* on a random graph, but we can say how it must *change* (or
not) under transformations with known effect.  Three relations hold for
the paper's model:

**Relabeling permutation** — rankings carry no meaning in node ids, so
for any permutation matrix ``P``::

    σ(P T' Pᵀ, P κ) = P σ(T', κ)

and likewise for spam-proximity with permuted seed ids.

**Edge-weight scaling** — ``T'`` is the row normalization of the source
weight matrix, so multiplying any row of the *weights* by a positive
constant changes nothing::

    σ(normalize(D W), κ) = σ(normalize(W), κ),   D = diag(d), d > 0

``spam_proximity`` binarizes the adjacency before inverting it, so it is
invariant under *arbitrary* positive reweighting, not just row scaling.

**Seed-bias monotonicity** — adding source ``j`` to the spam seed set
cannot *decrease* ``j``'s unnormalized spam-proximity score.  With
``G = (1 − β) (I − β M)⁻¹`` the resolvent of the reversed walk ``M``,
the score of ``j`` is ``σ_j ∝ Σ_{s ∈ S} G_{sj}``, and the renewal
identity ``G_{sj} = F_{sj} G_{jj} ≤ G_{jj}`` (``F_{sj}`` ≤ 1 the
first-passage generating value) shows the added diagonal term dominates
every cross term it displaces.  The relation is checked on the *rank*
of ``j`` (rank never drops), which survives the σ/||σ|| renormalization.
The identity needs the reversed walk to be substochastic row-by-row
*independent of the seed vector*, so suite graphs give every source an
in-link (no dangling rows in the reversed graph — the ``"teleport"``
patch-up would couple ``M`` to the seeds).

Each relation returns :class:`~repro.audit.invariants.InvariantViolation`
records; :func:`run_metamorphic_suite` sweeps all of them over a seeded
graph family and reports through the shared audit machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams, SpamProximityParams
from ..ranking.srsourcerank import spam_resilient_sourcerank
from ..sources.sourcegraph import SourceGraph
from ..throttle.spam_proximity import spam_proximity
from .invariants import InvariantViolation, record_violations

__all__ = [
    "check_permutation_relation",
    "check_weight_scaling_relation",
    "check_seed_monotonicity_relation",
    "MetamorphicReport",
    "run_metamorphic_suite",
]

#: Score-agreement tolerance for the equality relations.  Looser than
#: the differential oracle's 1e-9: both sides are independent iterative
#: solves of *different* (permuted / rescaled) systems, so floating-point
#: summation order differs and only agreement to solver accuracy holds.
RELATION_ATOL = 1e-8


def _permutation(rng: np.random.Generator, n: int) -> np.ndarray:
    perm = rng.permutation(n)
    # perm[i] = new id of old node i would invert the convention below;
    # we use perm as old-id-of-new-node so P @ x == x[perm].
    return perm


def _permute_matrix(matrix: sp.csr_matrix, perm: np.ndarray) -> sp.csr_matrix:
    """``P A Pᵀ`` for the permutation taking old id ``perm[i]`` to ``i``."""
    return matrix[perm][:, perm].tocsr()


def check_permutation_relation(
    weights: sp.csr_matrix,
    kappa: np.ndarray,
    *,
    perm: np.ndarray,
    params: RankingParams | None = None,
    full_throttle: str = "self",
    atol: float = RELATION_ATOL,
    subject: str = "permutation",
) -> list[InvariantViolation]:
    """σ(P T' Pᵀ, P κ) must equal P σ(T', κ)."""
    params = params or RankingParams(tolerance=1e-12)
    graph = SourceGraph.from_weight_matrix(weights)
    base = spam_resilient_sourcerank(
        graph, kappa, params, full_throttle=full_throttle
    ).scores
    permuted_graph = SourceGraph.from_weight_matrix(
        _permute_matrix(weights, perm)
    )
    permuted = spam_resilient_sourcerank(
        permuted_graph, kappa[perm], params, full_throttle=full_throttle
    ).scores
    diff = float(np.max(np.abs(permuted - base[perm])))
    if diff > atol:
        return [
            InvariantViolation(
                "metamorphic_permutation",
                subject,
                f"relabeling changed sigma by {diff:.3e} (atol {atol:.1e})",
                value=diff,
            )
        ]
    return []


def check_weight_scaling_relation(
    weights: sp.csr_matrix,
    kappa: np.ndarray,
    *,
    row_scale: np.ndarray,
    params: RankingParams | None = None,
    full_throttle: str = "self",
    atol: float = RELATION_ATOL,
    subject: str = "weight-scaling",
) -> list[InvariantViolation]:
    """Per-row positive weight scaling must not move σ at all.

    Row normalization divides each row by its sum, so ``diag(d) W`` and
    ``W`` produce the identical ``T'`` — any drift means normalization
    (or the transform downstream of it) is weight-sensitive.
    """
    params = params or RankingParams(tolerance=1e-12)
    row_scale = np.asarray(row_scale, dtype=np.float64).ravel()
    if row_scale.size != weights.shape[0] or (row_scale <= 0).any():
        raise ValueError("row_scale must be positive with one entry per row")
    base = spam_resilient_sourcerank(
        SourceGraph.from_weight_matrix(weights),
        kappa,
        params,
        full_throttle=full_throttle,
    ).scores
    scaled_weights = sp.diags(row_scale) @ weights
    scaled = spam_resilient_sourcerank(
        SourceGraph.from_weight_matrix(scaled_weights.tocsr()),
        kappa,
        params,
        full_throttle=full_throttle,
    ).scores
    diff = float(np.max(np.abs(scaled - base)))
    if diff > atol:
        return [
            InvariantViolation(
                "metamorphic_weight_scaling",
                subject,
                f"row-scaling the weights moved sigma by {diff:.3e} "
                f"(atol {atol:.1e})",
                value=diff,
            )
        ]
    return []


def check_seed_monotonicity_relation(
    source_graph: SourceGraph | sp.csr_matrix,
    seeds: Sequence[int],
    new_seed: int,
    *,
    params: SpamProximityParams | None = None,
    subject: str = "seed-monotonicity",
) -> list[InvariantViolation]:
    """Adding ``new_seed`` to the seed set must not demote it.

    Compares ``new_seed``'s *rank position* before and after (rank is
    invariant to the σ/||σ|| renormalization that makes raw scores
    incomparable across seed sets).  Assumes the reversed graph has no
    dangling rows — see the module docstring.
    """
    params = params or SpamProximityParams(tolerance=1e-12)
    seeds = [int(s) for s in seeds]
    new_seed = int(new_seed)
    if new_seed in seeds:
        raise ValueError(f"new_seed {new_seed} already in the seed set")
    before = spam_proximity(source_graph, seeds, params).scores
    after = spam_proximity(source_graph, seeds + [new_seed], params).scores
    # Rank = number of sources scoring strictly higher; smaller is better.
    slack = 1e-12
    rank_before = int((before > before[new_seed] + slack).sum())
    rank_after = int((after > after[new_seed] + slack).sum())
    if rank_after > rank_before:
        return [
            InvariantViolation(
                "metamorphic_seed_monotonicity",
                subject,
                f"adding source {new_seed} to the seed set demoted it from "
                f"rank {rank_before} to rank {rank_after}",
                value=float(rank_after - rank_before),
            )
        ]
    return []


@dataclass
class MetamorphicReport:
    """Outcome of one metamorphic sweep."""

    seed: int
    n_relations: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_relations": self.n_relations,
            "passed": self.passed,
            "violations": [v.as_dict() for v in self.violations],
        }

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"metamorphic suite {status}: {self.n_relations} relation "
            f"checks, {len(self.violations)} violation(s)"
        )


def _random_weights(
    rng: np.random.Generator, n: int, *, min_out: int = 2
) -> sp.csr_matrix:
    """Random positive weight matrix where every source has at least
    ``min_out`` out-edges and at least one in-link (so the reversed
    spam-proximity walk has no dangling rows)."""
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for i in range(n):
        degree = int(rng.integers(min_out, max(min_out + 1, n // 3)))
        targets = rng.choice(n, size=min(degree, n), replace=False)
        rows.extend([i] * targets.size)
        cols.extend(int(t) for t in targets)
        data.extend(float(w) for w in rng.uniform(0.5, 5.0, size=targets.size))
    # Guarantee in-links: close a Hamiltonian cycle over all sources.
    for i in range(n):
        rows.append(i)
        cols.append((i + 1) % n)
        data.append(float(rng.uniform(0.5, 5.0)))
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n), dtype=np.float64)
    matrix.sum_duplicates()
    return matrix


def run_metamorphic_suite(
    seed: int = 0,
    *,
    n: int = 20,
    n_graphs: int = 3,
    strict: bool = False,
) -> MetamorphicReport:
    """Sweep all three relations over a seeded random-graph family.

    Each graph gets one permutation check, one row-scaling check (both
    ``full_throttle`` modes on alternating graphs), and one
    seed-monotonicity check with a random seed set.  Violations are
    recorded through :func:`~repro.audit.invariants.record_violations`
    (metric + optional strict raise) and returned in the report.
    """
    rng = np.random.default_rng(seed)
    report = MetamorphicReport(seed=seed)
    for g in range(n_graphs):
        weights = _random_weights(rng, n)
        kappa = rng.uniform(0.0, 0.95, size=n)
        full_throttle = "dangling" if g % 2 else "self"
        subject = f"graph-{g}"

        report.violations.extend(
            check_permutation_relation(
                weights,
                kappa,
                perm=_permutation(rng, n),
                full_throttle=full_throttle,
                subject=f"{subject}:permutation",
            )
        )
        report.n_relations += 1

        report.violations.extend(
            check_weight_scaling_relation(
                weights,
                kappa,
                row_scale=rng.uniform(0.1, 10.0, size=n),
                full_throttle=full_throttle,
                subject=f"{subject}:weight-scaling",
            )
        )
        report.n_relations += 1

        ids = rng.permutation(n)
        seeds, new_seed = ids[:3].tolist(), int(ids[3])
        report.violations.extend(
            check_seed_monotonicity_relation(
                SourceGraph.from_weight_matrix(weights),
                seeds,
                new_seed,
                subject=f"{subject}:seed-monotonicity",
            )
        )
        report.n_relations += 1

    if report.violations:
        record_violations(report.violations, strict=strict)
    return report

"""Differential oracle: every solver × kernel × operator path must agree.

The stack offers three registered solvers (power, Jacobi, Gauss–Seidel),
three transpose-matvec kernels, and three ways to present the throttled
operand: the lazy :class:`~repro.linalg.operator.ThrottledOperator`, the
materialized :func:`~repro.throttle.transform.throttle_transform`
matrix, and — out-of-core — the lazy transform over a
:class:`~repro.linalg.BlockedOperator` streaming row-block shards from a
:class:`~repro.webgraph.store.ShardedGraphStore` (each case's matrix is
round-tripped through an on-disk store built in a temp directory, so the
oracle also proves the varint-gap codec path end to end).  All of them
solve the same Eq. 3 fixed point

    σᵀ = α σᵀ T'' + (1 − α) cᵀ

so after L1 normalization their score vectors must coincide — any pair
disagreeing beyond tolerance means one of the paths is wrong.  This
module generates a seeded suite of adversarial graphs (dangling rows,
κ ∈ {0, 1} extremes, disconnected components), runs every combination
through the :data:`~repro.linalg.registry.solver_registry`, and reports
every disagreeing pair in a JSON-serializable
:class:`DifferentialReport`.

Solves run at an inner tolerance of 1e-12 so the pairwise comparison at
1e-9 is meaningful: the fixed-point error of an iterate is bounded by
``residual / (1 − α)``, a ~6.7× amplification at the paper's α = 0.85.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..config import RankingParams
from ..linalg.operator import (
    KERNELS,
    BlockedOperator,
    CsrOperator,
    ThrottledOperator,
)
from ..linalg.registry import solver_registry
from ..throttle.transform import throttle_transform
from ..webgraph.store import ShardedGraphStore
from .invariants import (
    InvariantViolation,
    check_row_stochastic_blocks,
    check_score_distribution,
    check_throttled_matrix,
    check_throttled_operator_blocks,
    record_violations,
)

__all__ = [
    "GraphCase",
    "ComboResult",
    "Disagreement",
    "DifferentialReport",
    "generate_case_suite",
    "run_differential_oracle",
]

#: Inner solve tolerance: tight enough that a 1e-9 pairwise comparison
#: is dominated by genuine path differences, not stopping slack.
SOLVE_TOLERANCE = 1e-12
#: Pairwise score-vector agreement tolerance (the ISSUE acceptance bar).
AGREEMENT_ATOL = 1e-9


@dataclass(frozen=True)
class GraphCase:
    """One seeded graph instance the oracle exercises.

    Attributes
    ----------
    name:
        Stable identifier of the structural feature under test.
    matrix:
        Row-stochastic source transition matrix ``T'`` (CSR); dangling
        rows allowed.
    kappa:
        Throttling vector in ``[0, 1]`` (zero on dangling rows — rows
        with no off-diagonal mass cannot be boosted).
    full_throttle:
        κ = 1 semantics to apply (``"self"`` or ``"dangling"``).
    """

    name: str
    matrix: sp.csr_matrix
    kappa: np.ndarray
    full_throttle: str = "self"

    @property
    def n(self) -> int:
        return int(self.matrix.shape[0])


@dataclass(frozen=True)
class ComboResult:
    """Score vector from one solver × kernel × operand-mode path."""

    solver: str
    kernel: str
    operand: str  # "lazy" | "materialized" | "blocked"
    scores: np.ndarray
    iterations: int
    converged: bool

    @property
    def key(self) -> str:
        return f"{self.solver}/{self.kernel}/{self.operand}"


@dataclass(frozen=True)
class Disagreement:
    """A pair of paths whose σ differ beyond tolerance on one case."""

    case: str
    combo_a: str
    combo_b: str
    max_abs_diff: float
    atol: float

    def as_dict(self) -> dict:
        return {
            "case": self.case,
            "combo_a": self.combo_a,
            "combo_b": self.combo_b,
            "max_abs_diff": self.max_abs_diff,
            "atol": self.atol,
        }


@dataclass
class DifferentialReport:
    """Outcome of one oracle run, serializable for the CI artifact."""

    seed: int
    atol: float
    tolerance: float
    cases: list[dict] = field(default_factory=list)
    disagreements: list[Disagreement] = field(default_factory=list)
    invariant_violations: list[InvariantViolation] = field(default_factory=list)
    n_combos: int = 0

    @property
    def passed(self) -> bool:
        return not self.disagreements and not self.invariant_violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "atol": self.atol,
            "tolerance": self.tolerance,
            "n_combos": self.n_combos,
            "passed": self.passed,
            "cases": self.cases,
            "disagreements": [d.as_dict() for d in self.disagreements],
            "invariant_violations": [
                v.as_dict() for v in self.invariant_violations
            ],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str | Path) -> Path:
        """Write the JSON report; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"differential oracle {status}: {len(self.cases)} cases x "
            f"{self.n_combos} total combos, "
            f"{len(self.disagreements)} disagreement(s), "
            f"{len(self.invariant_violations)} invariant violation(s)"
        )


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
def _random_stochastic(
    rng: np.random.Generator,
    n: int,
    *,
    dangling: Sequence[int] = (),
    min_out: int = 2,
) -> sp.csr_matrix:
    """Random row-stochastic CSR where every non-dangling row has at
    least ``min_out`` out-edges (so throttling always has off-diagonal
    mass to rescale)."""
    dangling = set(int(d) for d in dangling)
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for i in range(n):
        if i in dangling:
            continue
        degree = int(rng.integers(min_out, max(min_out + 1, n // 2)))
        targets = rng.choice(n, size=min(degree, n), replace=False)
        weights = rng.uniform(0.1, 1.0, size=targets.size)
        weights /= weights.sum()
        rows.extend([i] * targets.size)
        cols.extend(int(t) for t in targets)
        data.extend(float(w) for w in weights)
    matrix = sp.csr_matrix(
        (data, (rows, cols)), shape=(n, n), dtype=np.float64
    )
    matrix.sum_duplicates()
    return matrix


def _random_kappa(
    rng: np.random.Generator, matrix: sp.csr_matrix, *, extremes: bool = False
) -> np.ndarray:
    """Random κ, forced to 0 on rows without off-diagonal mass."""
    n = matrix.shape[0]
    if extremes:
        kappa = rng.choice([0.0, 1.0], size=n, p=[0.6, 0.4])
    else:
        kappa = rng.uniform(0.0, 0.95, size=n)
    off_mass = np.asarray(matrix.sum(axis=1)).ravel() - matrix.diagonal()
    kappa[off_mass <= 0.0] = 0.0
    return kappa


def generate_case_suite(seed: int = 0, *, n: int = 24) -> list[GraphCase]:
    """The seeded adversarial graph suite the oracle runs on.

    Covers the structural features named in the ISSUE: dangling rows,
    κ ∈ {0, 1} extremes under both ``full_throttle`` readings, and
    disconnected components — plus a mixed-κ base case and a κ = 0
    identity case that pins the untouched path.
    """
    rng = np.random.default_rng(seed)
    cases: list[GraphCase] = []

    base = _random_stochastic(rng, n)
    cases.append(
        GraphCase("mixed-kappa", base, _random_kappa(rng, base))
    )

    n_dangling = max(2, n // 6)
    dangling_ids = rng.choice(n, size=n_dangling, replace=False)
    dangle = _random_stochastic(rng, n, dangling=dangling_ids)
    cases.append(
        GraphCase("dangling-rows", dangle, _random_kappa(rng, dangle))
    )

    extremes = _random_stochastic(rng, n)
    kappa_ext = _random_kappa(rng, extremes, extremes=True)
    cases.append(GraphCase("kappa-extremes-self", extremes, kappa_ext, "self"))
    cases.append(
        GraphCase("kappa-extremes-dangling", extremes, kappa_ext, "dangling")
    )

    half = n // 2
    block_a = _random_stochastic(rng, half)
    block_b = _random_stochastic(rng, n - half)
    blocks = sp.block_diag([block_a, block_b], format="csr")
    cases.append(
        GraphCase("disconnected", blocks, _random_kappa(rng, blocks))
    )

    plain = _random_stochastic(rng, n)
    cases.append(
        GraphCase("no-throttle", plain, np.zeros(n, dtype=np.float64))
    )
    return cases


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
def _solver_kernels(solver: str) -> tuple[str, ...]:
    """Kernels that change anything for ``solver`` (the linear solvers
    materialize the operand and ignore the kernel)."""
    return KERNELS if solver == "power" else ("scipy",)


def _run_combo(
    case: GraphCase,
    solver: str,
    kernel: str,
    operand_mode: str,
    params: RankingParams,
    *,
    store: ShardedGraphStore | None = None,
) -> ComboResult:
    label = f"audit:{case.name}:{solver}/{kernel}/{operand_mode}"
    blocked_base: BlockedOperator | None = None
    if operand_mode == "lazy":
        operand = ThrottledOperator(
            CsrOperator(case.matrix, kernel=kernel),
            case.kappa,
            full_throttle=case.full_throttle,
        )
    elif operand_mode == "blocked":
        assert store is not None
        blocked_base = BlockedOperator(store, cache_blocks=2)
        operand = ThrottledOperator(
            blocked_base, case.kappa, full_throttle=case.full_throttle
        )
    else:
        operand = throttle_transform(
            case.matrix, case.kappa, full_throttle=case.full_throttle
        )
    try:
        result = solver_registry.solve(
            operand,
            params,
            solver=solver,
            label=label,
            kernel=None if operand_mode == "blocked" else kernel,
        )
    finally:
        close = getattr(operand, "close", None)
        if close is not None:
            close()
        if blocked_base is not None:
            blocked_base.close()
    return ComboResult(
        solver=solver,
        kernel=kernel,
        operand=operand_mode,
        scores=np.asarray(result.scores, dtype=np.float64),
        iterations=int(result.convergence.iterations),
        converged=bool(result.convergence.converged),
    )


def run_differential_oracle(
    cases: Sequence[GraphCase] | None = None,
    *,
    seed: int = 0,
    atol: float = AGREEMENT_ATOL,
    tolerance: float = SOLVE_TOLERANCE,
    alpha: float = 0.85,
    solvers: Sequence[str] | None = None,
    strict: bool = False,
) -> DifferentialReport:
    """Run every solver × kernel × operand combination and cross-check.

    Parameters
    ----------
    cases:
        Graph cases to exercise; defaults to
        :func:`generate_case_suite` seeded with ``seed``.
    seed:
        Suite generation seed (recorded in the report).
    atol:
        Maximum allowed elementwise difference between any two paths'
        normalized score vectors.
    tolerance:
        Inner solve tolerance (see :data:`SOLVE_TOLERANCE`).
    alpha:
        Mixing parameter for all solves.
    solvers:
        Solver names to run; defaults to every registered solver.
    strict:
        When True, a failing report raises
        :class:`~repro.errors.AuditError` (via
        :func:`~repro.audit.invariants.record_violations`); default is
        report-only.

    Returns
    -------
    DifferentialReport
        Per-case combo inventory plus every disagreeing pair; also
        increments ``repro_audit_violations_total`` (invariant
        ``"differential"``) for each disagreement.
    """
    if cases is None:
        cases = generate_case_suite(seed)
    solver_names = tuple(solvers) if solvers else solver_registry.names()
    params = RankingParams(
        alpha=alpha, tolerance=tolerance, max_iter=20_000
    )
    report = DifferentialReport(seed=seed, atol=atol, tolerance=tolerance)

    for case in cases:
        combos: list[ComboResult] = []
        with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
            # Round-trip the case matrix through an on-disk sharded store
            # (several blocks, so block boundaries are exercised); the
            # blocked operand solves out-of-core from this store.
            store = ShardedGraphStore.from_matrix(
                case.matrix, tmp, block_size=max(1, case.n // 3)
            )
            for solver in solver_names:
                for kernel in _solver_kernels(solver):
                    for operand_mode in ("lazy", "materialized"):
                        combos.append(
                            _run_combo(
                                case, solver, kernel, operand_mode, params
                            )
                        )
                combos.append(
                    _run_combo(
                        case, solver, "blocked", "blocked", params, store=store
                    )
                )
            report.n_combos += len(combos)

            # Structural invariants on the materialized transform and on
            # every path's score vector — the oracle doubles as an
            # invariant sweep over the exact artifacts it solved with.
            throttled = throttle_transform(
                case.matrix, case.kappa, full_throttle=case.full_throttle
            )
            report.invariant_violations.extend(
                check_throttled_matrix(
                    case.matrix,
                    case.kappa,
                    throttled,
                    full_throttle=case.full_throttle,
                    subject=f"{case.name}:T''",
                )
            )
            # Per-block sweep over the out-of-core path: the store's rows
            # are stochastic block by block, and the throttle algebra the
            # blocked solve applies matches the Section 3.3 transform on
            # every block slice.
            report.invariant_violations.extend(
                check_row_stochastic_blocks(
                    store, subject=f"{case.name}:T'(blocked)"
                )
            )
            with BlockedOperator(store, cache_blocks=2) as blocked_base:
                blocked_throttled = ThrottledOperator(
                    blocked_base, case.kappa, full_throttle=case.full_throttle
                )
                try:
                    report.invariant_violations.extend(
                        check_throttled_operator_blocks(
                            blocked_throttled,
                            subject=f"{case.name}:T''(blocked)",
                        )
                    )
                finally:
                    blocked_throttled.close()
        for combo in combos:
            report.invariant_violations.extend(
                check_score_distribution(
                    combo.scores, subject=f"{case.name}:{combo.key}"
                )
            )

        max_diff = 0.0
        for i, a in enumerate(combos):
            for b in combos[i + 1 :]:
                diff = float(np.max(np.abs(a.scores - b.scores)))
                max_diff = max(max_diff, diff)
                if diff > atol:
                    report.disagreements.append(
                        Disagreement(
                            case=case.name,
                            combo_a=a.key,
                            combo_b=b.key,
                            max_abs_diff=diff,
                            atol=atol,
                        )
                    )
        report.cases.append(
            {
                "name": case.name,
                "n": case.n,
                "full_throttle": case.full_throttle,
                "n_combos": len(combos),
                "max_pairwise_diff": max_diff,
                "combos": [
                    {
                        "key": c.key,
                        "iterations": c.iterations,
                        "converged": c.converged,
                    }
                    for c in combos
                ],
            }
        )

    if report.disagreements or report.invariant_violations:
        violations = [
            InvariantViolation(
                "differential",
                f"{d.case}:{d.combo_a} vs {d.combo_b}",
                f"score vectors differ by {d.max_abs_diff:.3e} "
                f"(atol {d.atol:.1e})",
                value=d.max_abs_diff,
            )
            for d in report.disagreements
        ]
        violations.extend(report.invariant_violations)
        record_violations(violations, strict=strict)
    return report

"""Cheap runtime invariant checks for the ranking stack.

The paper's guarantees rest on a handful of structural invariants that
every solver / kernel / operator combination is supposed to preserve:

* the source transition matrix ``T'`` is row-stochastic (Section 3.2);
* the throttled matrix ``T''`` keeps boosted diagonals at exactly
  ``T''_ii = κ_i`` and boosted rows row-stochastic (Section 3.3), with
  κ = 1 rows either self-absorbing (``"self"``) or empty (``"dangling"``);
* the power iterate conserves probability mass (up to the sanctioned
  dangling leak of the linear formulation);
* the final σ is a finite, non-negative distribution.

Every check here is a pure function returning a list of
:class:`InvariantViolation` records — callable standalone from tests and
the differential oracle — and :class:`InvariantAuditor` bundles them with
an :class:`~repro.config.AuditParams` policy for the pipeline: violations
are counted in the ``repro_audit_violations_total`` metric (labelled by
invariant) and raised as a typed :class:`~repro.errors.AuditError` in
strict mode.

Each check is O(nnz) at worst (row sums / diagonal extraction), so the
audit is safe to leave on outside micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import AuditError, GraphError
from ..logging_utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..config import AuditParams
    from ..linalg.operator import ThrottledOperator
    from ..ranking.base import RankingResult

__all__ = [
    "InvariantViolation",
    "check_row_stochastic",
    "check_row_stochastic_blocks",
    "check_throttled_matrix",
    "check_throttled_operator",
    "check_throttled_operator_blocks",
    "check_score_distribution",
    "check_kappa_vector",
    "check_iterate_mass",
    "record_violations",
    "InvariantAuditor",
    "IterateMassAuditor",
]

_logger = get_logger(__name__)

#: Metric family counting audit violations, labelled by invariant name.
VIOLATIONS_METRIC = "repro_audit_violations_total"
#: Metric family counting audit checks performed, labelled by invariant name.
CHECKS_METRIC = "repro_audit_checks_total"


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One violated invariant: which rule, where, and by how much.

    Attributes
    ----------
    invariant:
        Machine-readable rule name (metric label), e.g.
        ``"row_stochastic"``, ``"throttle_diagonal"``.
    subject:
        What was being checked (``"T'"``, ``"sigma"``, a solve label...).
    message:
        Human-readable description of the violation.
    value:
        The worst offending magnitude, when meaningful.
    """

    invariant: str
    subject: str
    message: str
    value: float | None = None

    def __str__(self) -> str:
        text = f"[{self.invariant}] {self.subject}: {self.message}"
        if self.value is not None:
            text += f" (worst {self.value:.3e})"
        return text

    def as_dict(self) -> dict:
        """JSON-friendly rendering (for the differential oracle report)."""
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "message": self.message,
            "value": self.value,
        }


def _row_sums(matrix: sp.spmatrix) -> np.ndarray:
    return np.asarray(matrix.sum(axis=1)).ravel()


# ----------------------------------------------------------------------
# Pure checks
# ----------------------------------------------------------------------
def check_row_stochastic(
    matrix: sp.spmatrix,
    *,
    subject: str = "T'",
    atol: float = 1e-8,
    allow_zero_rows: bool = True,
) -> list[InvariantViolation]:
    """Every row sums to one (optionally allowing all-zero dangling rows)
    and every entry is non-negative and finite."""
    violations: list[InvariantViolation] = []
    csr = matrix.tocsr()
    if csr.nnz and not np.isfinite(csr.data).all():
        violations.append(
            InvariantViolation(
                "row_stochastic", subject, "matrix contains non-finite entries"
            )
        )
        return violations
    if csr.nnz and float(csr.data.min()) < -atol:
        violations.append(
            InvariantViolation(
                "row_stochastic",
                subject,
                "matrix contains negative transition weights",
                value=float(csr.data.min()),
            )
        )
    sums = _row_sums(csr)
    bad = np.abs(sums - 1.0) > atol
    if allow_zero_rows:
        bad &= sums != 0.0
    if bad.any():
        worst = int(np.argmax(np.where(bad, np.abs(sums - 1.0), 0.0)))
        violations.append(
            InvariantViolation(
                "row_stochastic",
                subject,
                f"{int(bad.sum())} rows do not sum to 1 "
                f"(e.g. row {worst} sums to {sums[worst]:.12g})",
                value=float(np.abs(sums[worst] - 1.0)),
            )
        )
    return violations


def _expected_throttle(
    base_diag: np.ndarray,
    base_sums: np.ndarray,
    kappa: np.ndarray,
    full_throttle: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expected ``T''`` diagonal and row sums from ``T'`` and κ.

    Returns ``(expected_diag, expected_sums, boosted_mask)`` following the
    Section 3.3 transform: boosted rows (``T'_ii < κ_i``) get diagonal
    exactly ``κ_i`` and total mass 1; κ = 1 rows under ``"dangling"``
    semantics are emptied entirely; every other row is untouched.
    """
    full = (
        (kappa >= 1.0)
        if full_throttle == "dangling"
        else np.zeros(kappa.size, dtype=bool)
    )
    boosted = (base_diag < kappa) & ~full
    expected_diag = np.where(boosted, kappa, base_diag)
    expected_diag[full] = 0.0
    expected_sums = np.where(boosted, 1.0, base_sums)
    expected_sums[full] = 0.0
    return expected_diag, expected_sums, boosted


def _check_throttled(
    diag: np.ndarray,
    sums: np.ndarray,
    base_diag: np.ndarray,
    base_sums: np.ndarray,
    kappa: np.ndarray,
    *,
    full_throttle: str,
    subject: str,
    atol: float,
) -> list[InvariantViolation]:
    violations: list[InvariantViolation] = []
    expected_diag, expected_sums, boosted = _expected_throttle(
        base_diag, base_sums, kappa, full_throttle
    )
    diag_err = np.abs(diag - expected_diag)
    bad_diag = diag_err > atol
    if bad_diag.any():
        worst = int(np.argmax(np.where(bad_diag, diag_err, 0.0)))
        kind = "boosted" if boosted[worst] else "untouched"
        violations.append(
            InvariantViolation(
                "throttle_diagonal",
                subject,
                f"{int(bad_diag.sum())} diagonal entries differ from the "
                f"Section 3.3 value (e.g. {kind} row {worst}: "
                f"T''_ii={diag[worst]:.12g}, expected "
                f"{expected_diag[worst]:.12g}, kappa={kappa[worst]:.12g})",
                value=float(diag_err[worst]),
            )
        )
    sum_err = np.abs(sums - expected_sums)
    bad_sums = sum_err > atol
    if bad_sums.any():
        worst = int(np.argmax(np.where(bad_sums, sum_err, 0.0)))
        violations.append(
            InvariantViolation(
                "throttle_row_mass",
                subject,
                f"{int(bad_sums.sum())} rows of T'' carry the wrong total "
                f"mass (e.g. row {worst}: {sums[worst]:.12g}, expected "
                f"{expected_sums[worst]:.12g})",
                value=float(sum_err[worst]),
            )
        )
    return violations


def check_throttled_matrix(
    base: sp.spmatrix,
    kappa: np.ndarray,
    throttled: sp.spmatrix,
    *,
    full_throttle: str = "self",
    subject: str = "T''",
    atol: float = 1e-8,
) -> list[InvariantViolation]:
    """A materialized ``T''`` satisfies the Section 3.3 invariants.

    Checks ``T''_ii = κ_i`` on boosted rows, untouched rows byte-for-byte
    mass, boosted rows row-stochastic, and κ = 1 rows empty under the
    ``"dangling"`` reading.
    """
    base = base.tocsr()
    throttled = throttled.tocsr()
    kappa = np.asarray(getattr(kappa, "kappa", kappa), dtype=np.float64).ravel()
    return _check_throttled(
        throttled.diagonal(),
        _row_sums(throttled),
        base.diagonal(),
        _row_sums(base),
        kappa,
        full_throttle=full_throttle,
        subject=subject,
        atol=atol,
    )


def check_throttled_operator(
    operator: "ThrottledOperator",
    *,
    subject: str = "T''",
    atol: float = 1e-8,
) -> list[InvariantViolation]:
    """A lazy :class:`~repro.linalg.operator.ThrottledOperator` implies the
    same diagonal/row-mass invariants its materialized ``T''`` must have.

    Reads the diagonal and row sums the operator actually applies
    (``diag(s)·T' + diag(c)``) — so this audits the numbers the solve
    will see, not a recomputation of the transform.
    """
    base = operator.base.matrix
    return _check_throttled(
        operator.diagonal(),
        operator.row_sums(),
        base.diagonal(),
        _row_sums(base),
        operator.kappa,
        full_throttle=operator.full_throttle,
        subject=subject,
        atol=atol,
    )


def _block_diagonal(block: sp.csr_matrix, row_start: int) -> np.ndarray:
    """Main-diagonal entries of a row block: local row ``i`` maps to
    global column ``row_start + i`` in the (n_rows × n) block."""
    n_rows = block.shape[0]
    row_of = np.repeat(
        np.arange(n_rows, dtype=np.int64), np.diff(block.indptr)
    )
    hit = block.indices == row_of + row_start
    diag = np.zeros(n_rows, dtype=np.float64)
    diag[row_of[hit]] = block.data[hit]
    return diag


def check_row_stochastic_blocks(
    store: object,
    *,
    subject: str = "T'",
    atol: float = 1e-8,
    allow_zero_rows: bool = True,
) -> list[InvariantViolation]:
    """Row-stochasticity of a sharded graph, one row block at a time.

    The out-of-core sibling of :func:`check_row_stochastic`: ``store`` is
    a :class:`~repro.webgraph.store.ShardedGraphStore` (or a
    :class:`~repro.linalg.BlockedOperator` over one) and each decoded
    block is checked independently, so the full matrix is never
    materialized and peak memory stays O(block).  Violations carry the
    block id in their subject (``T'[block 3]``).
    """
    violations: list[InvariantViolation] = []
    for info, block in store.iter_blocks():
        violations.extend(
            check_row_stochastic(
                block,
                subject=f"{subject}[block {info.block_id}]",
                atol=atol,
                allow_zero_rows=allow_zero_rows,
            )
        )
    return violations


def check_throttled_operator_blocks(
    operator: "ThrottledOperator",
    *,
    subject: str = "T''",
    atol: float = 1e-8,
) -> list[InvariantViolation]:
    """Section 3.3 throttle algebra over a blocked base, block by block.

    The out-of-core sibling of :func:`check_throttled_operator`: the
    operator's base must expose ``iter_blocks()`` / ``shards``
    (a :class:`~repro.linalg.BlockedOperator`).  Each block's base
    diagonal and row sums are recomputed from the decoded shard and
    checked against the slice of the throttled operator's effective
    diagonal/row mass — auditing the exact numbers the out-of-core solve
    applies without assembling ``T'`` or ``T''``.
    """
    base = operator.base
    if not hasattr(base, "iter_blocks"):
        raise GraphError(
            "check_throttled_operator_blocks needs an operator over a "
            f"blocked base (got base {type(base).__name__}); use "
            "check_throttled_operator for in-memory bases"
        )
    kappa = np.asarray(operator.kappa, dtype=np.float64).ravel()
    op_diag = operator.diagonal()
    op_sums = operator.row_sums()
    violations: list[InvariantViolation] = []
    for info, block in base.iter_blocks():
        lo, hi = info.row_start, info.row_stop
        violations.extend(
            _check_throttled(
                op_diag[lo:hi],
                op_sums[lo:hi],
                _block_diagonal(block, lo),
                np.asarray(block.sum(axis=1)).ravel(),
                kappa[lo:hi],
                full_throttle=operator.full_throttle,
                subject=f"{subject}[block {info.block_id}]",
                atol=atol,
            )
        )
    return violations


def check_score_distribution(
    scores: np.ndarray,
    *,
    subject: str = "sigma",
    atol: float = 1e-8,
) -> list[InvariantViolation]:
    """σ is a finite, non-negative probability distribution."""
    violations: list[InvariantViolation] = []
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if not np.isfinite(scores).all():
        violations.append(
            InvariantViolation(
                "score_finite", subject, "score vector contains non-finite values"
            )
        )
        return violations
    if scores.size and float(scores.min()) < -atol:
        violations.append(
            InvariantViolation(
                "score_nonnegative",
                subject,
                f"{int((scores < -atol).sum())} scores are negative",
                value=float(scores.min()),
            )
        )
    total = float(scores.sum())
    if abs(total - 1.0) > atol:
        violations.append(
            InvariantViolation(
                "score_mass",
                subject,
                f"scores sum to {total:.12g}, expected 1",
                value=abs(total - 1.0),
            )
        )
    return violations


def check_kappa_vector(
    kappa: np.ndarray,
    *,
    n: int | None = None,
    subject: str = "kappa",
) -> list[InvariantViolation]:
    """κ is finite, inside [0, 1], and sized to the source graph."""
    violations: list[InvariantViolation] = []
    kappa = np.asarray(getattr(kappa, "kappa", kappa), dtype=np.float64).ravel()
    if not np.isfinite(kappa).all():
        violations.append(
            InvariantViolation(
                "kappa_domain", subject, "throttle vector contains non-finite values"
            )
        )
        return violations
    if kappa.size and (kappa.min() < 0.0 or kappa.max() > 1.0):
        violations.append(
            InvariantViolation(
                "kappa_domain",
                subject,
                f"throttle values outside [0, 1]: range "
                f"[{kappa.min():.12g}, {kappa.max():.12g}]",
                value=float(max(-kappa.min(), kappa.max() - 1.0)),
            )
        )
    if n is not None and kappa.size != int(n):
        violations.append(
            InvariantViolation(
                "kappa_size",
                subject,
                f"throttle vector covers {kappa.size} sources but the "
                f"source graph has {int(n)}",
            )
        )
    return violations


def check_iterate_mass(
    x: np.ndarray,
    *,
    iteration: int,
    subject: str = "iterate",
    atol: float = 1e-8,
    leaky: bool = False,
) -> list[InvariantViolation]:
    """The power iterate conserves probability mass.

    Without dangling rows the iterate must keep total mass 1 exactly;
    with dangling rows under the paper's "linear" handling mass may leak
    (``leaky=True``) but must stay positive and never exceed 1.
    """
    violations: list[InvariantViolation] = []
    x = np.asarray(x)
    if not np.isfinite(x).all():
        violations.append(
            InvariantViolation(
                "mass_conservation",
                subject,
                f"non-finite iterate at iteration {iteration}",
            )
        )
        return violations
    mass = float(x.sum())
    if leaky:
        if not (0.0 < mass <= 1.0 + atol):
            violations.append(
                InvariantViolation(
                    "mass_conservation",
                    subject,
                    f"iterate mass {mass:.12g} outside (0, 1] at iteration "
                    f"{iteration} (dangling leak may only shrink mass)",
                    value=abs(mass - 1.0),
                )
            )
    elif abs(mass - 1.0) > atol:
        violations.append(
            InvariantViolation(
                "mass_conservation",
                subject,
                f"iterate mass {mass:.12g} != 1 at iteration {iteration}",
                value=abs(mass - 1.0),
            )
        )
    return violations


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def record_violations(
    violations: Sequence[InvariantViolation],
    *,
    strict: bool = True,
    warn: bool = True,
) -> tuple[InvariantViolation, ...]:
    """Publish violations to the metrics registry; raise in strict mode.

    Every violation increments ``repro_audit_violations_total`` labelled
    with its invariant name.  With ``strict`` a non-empty list raises
    :class:`~repro.errors.AuditError`; otherwise violations are logged as
    warnings (``warn=False`` silences the log, the counters still move).
    Returns the violations unchanged for chaining.
    """
    violations = tuple(violations)
    if not violations:
        return violations
    from ..observability.events import emit as emit_event
    from ..observability.metrics import get_registry

    counter = get_registry().counter(
        VIOLATIONS_METRIC,
        "Correctness-audit invariant violations",
        labelnames=("invariant",),
    )
    for violation in violations:
        counter.labels(invariant=violation.invariant).inc()
        emit_event(
            "audit_violation",
            invariant=violation.invariant,
            subject=violation.subject,
            message=violation.message,
            worst=violation.value,
            strict=strict,
        )
        if warn and not strict:
            _logger.warning("audit violation: %s", violation)
    if strict:
        raise AuditError(violations)
    return violations


class InvariantAuditor:
    """Stage-boundary invariant checks behind one :class:`AuditParams` policy.

    The pipeline owns one of these per configured
    :attr:`~repro.config.RankingParams.audit`; every ``audit_*`` method
    runs its checks (when the policy enables that family), counts each
    check in ``repro_audit_checks_total``, records violations through
    :func:`record_violations`, and raises
    :class:`~repro.errors.AuditError` in strict mode.  With
    ``params=None`` every method is a cheap no-op returning ``()``.
    """

    __slots__ = ("params",)

    def __init__(self, params: "AuditParams | None" = None) -> None:
        self.params = params

    @property
    def enabled(self) -> bool:
        """Whether any checks will run."""
        return self.params is not None

    def _count_check(self, invariant: str) -> None:
        from ..observability.metrics import get_registry

        get_registry().counter(
            CHECKS_METRIC,
            "Correctness-audit checks performed",
            labelnames=("invariant",),
        ).labels(invariant=invariant).inc()

    def _finish(
        self, violations: Iterable[InvariantViolation]
    ) -> tuple[InvariantViolation, ...]:
        assert self.params is not None
        return record_violations(violations, strict=self.params.strict)

    def audit_transition(
        self, matrix: sp.spmatrix, *, subject: str = "T'"
    ) -> tuple[InvariantViolation, ...]:
        """Row-stochasticity of a transition matrix (``T'`` has no
        dangling rows by SourceGraph construction)."""
        if self.params is None or not self.params.check_transition:
            return ()
        self._count_check("row_stochastic")
        return self._finish(
            check_row_stochastic(
                matrix,
                subject=subject,
                atol=self.params.atol,
                allow_zero_rows=False,
            )
        )

    def audit_kappa(
        self, kappa: np.ndarray, *, n: int | None = None
    ) -> tuple[InvariantViolation, ...]:
        """κ domain/size validity."""
        if self.params is None or not self.params.check_transition:
            return ()
        self._count_check("kappa_domain")
        return self._finish(check_kappa_vector(kappa, n=n))

    def audit_throttled(
        self, operator: "ThrottledOperator", *, subject: str = "T''"
    ) -> tuple[InvariantViolation, ...]:
        """Section 3.3 diagonal/row-mass invariants of the throttled walk."""
        if self.params is None or not self.params.check_transition:
            return ()
        self._count_check("throttle_diagonal")
        return self._finish(
            check_throttled_operator(
                operator, subject=subject, atol=self.params.atol
            )
        )

    def audit_result(
        self, result: "RankingResult", *, subject: str | None = None
    ) -> tuple[InvariantViolation, ...]:
        """Final σ is a finite, non-negative distribution."""
        if self.params is None or not self.params.check_scores:
            return ()
        self._count_check("score_distribution")
        return self._finish(
            check_score_distribution(
                result.scores,
                subject=subject or result.label or "sigma",
                atol=self.params.atol,
            )
        )


class IterateMassAuditor:
    """Per-iteration mass-conservation checks for the iteration engine.

    Built lazily by :func:`repro.linalg.iterate.iterate_to_fixpoint` when
    ``params.audit`` is set (power solver only — the linear solvers'
    intermediate iterates are not distributions).  Violations are counted
    every time; in lenient mode only the first is logged to avoid
    per-iteration log spam.
    """

    __slots__ = ("params", "subject", "leaky", "_warned")

    def __init__(
        self, params: "AuditParams", *, subject: str, leaky: bool
    ) -> None:
        self.params = params
        self.subject = subject
        self.leaky = leaky
        self._warned = False

    def check(self, iteration: int, x: np.ndarray) -> None:
        """Audit one iterate; raises :class:`AuditError` in strict mode."""
        violations = check_iterate_mass(
            x,
            iteration=iteration,
            subject=self.subject,
            atol=self.params.atol,
            leaky=self.leaky,
        )
        if violations:
            record_violations(
                violations, strict=self.params.strict, warn=not self._warned
            )
            self._warned = True

"""Vectorized quotient-graph kernels (page graph → source graph).

Two aggregation semantics are needed by the paper:

* :func:`quotient_edge_counts` — raw page-edge multiplicity between source
  pairs (the naive quotient, used for uniform weighting and statistics);
* :func:`quotient_unique_page_counts` — the *source consensus* count of
  Section 3.2: the number of **unique pages** of the origin source that
  link to *any* page of the target source (a page linking to five pages of
  the same target source counts once).

Both run in O(edges log edges) with no Python-level loops.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import SourceAssignmentError
from ..graph.pagegraph import PageGraph
from .assignment import SourceAssignment

__all__ = ["quotient_edge_counts", "quotient_unique_page_counts"]


def _check(graph: PageGraph, assignment: SourceAssignment) -> None:
    if assignment.n_pages != graph.n_nodes:
        raise SourceAssignmentError(
            f"assignment covers {assignment.n_pages} pages but graph has "
            f"{graph.n_nodes} nodes"
        )


def quotient_edge_counts(
    graph: PageGraph,
    assignment: SourceAssignment,
    *,
    include_intra: bool = True,
) -> sp.csr_matrix:
    """Source-pair edge multiplicities.

    Entry ``(i, j)`` counts page edges from source ``i`` to source ``j``
    (including ``i == j`` diagonal entries unless ``include_intra=False``).

    Returns
    -------
    scipy.sparse.csr_matrix of int64, shape ``(n_sources, n_sources)``.
    """
    _check(graph, assignment)
    n_s = assignment.n_sources
    if graph.n_edges == 0 or n_s == 0:
        return sp.csr_matrix((n_s, n_s), dtype=np.int64)
    src, dst = graph.edge_arrays()
    a = assignment.page_to_source
    s_src = a[src]
    s_dst = a[dst]
    if not include_intra:
        mask = s_src != s_dst
        s_src, s_dst = s_src[mask], s_dst[mask]
    mat = sp.coo_matrix(
        (np.ones(s_src.size, dtype=np.int64), (s_src, s_dst)), shape=(n_s, n_s)
    ).tocsr()
    mat.sum_duplicates()
    return mat


def quotient_unique_page_counts(
    graph: PageGraph,
    assignment: SourceAssignment,
    *,
    include_intra: bool = True,
) -> sp.csr_matrix:
    """Source-consensus counts ``w(s_i, s_j)`` of Section 3.2 (unnormalized).

    Entry ``(i, j)`` is the number of distinct pages in source ``i`` that
    have at least one hyperlink to some page in source ``j``:

    .. math::

        w(s_i, s_j) = \\sum_{p \\in s_i}
            \\bigvee_{q \\in s_j} I[(p, q) \\in L_P]

    Implementation: map each page edge to the pair ``(page, target_source)``,
    de-duplicate the pairs, then count pairs per ``(source(page), target
    source)``.  All steps are vectorized sorts/uniques.
    """
    _check(graph, assignment)
    n_s = assignment.n_sources
    if graph.n_edges == 0 or n_s == 0:
        return sp.csr_matrix((n_s, n_s), dtype=np.int64)
    src, dst = graph.edge_arrays()
    a = assignment.page_to_source
    s_dst = a[dst]
    if not include_intra:
        mask = a[src] != s_dst
        src, s_dst = src[mask], s_dst[mask]
        if src.size == 0:
            return sp.csr_matrix((n_s, n_s), dtype=np.int64)
    # De-duplicate (page, target_source) pairs with a single fused key.
    key = src * np.int64(n_s) + s_dst
    unique_keys = np.unique(key)
    u_page = unique_keys // n_s
    u_sdst = unique_keys % n_s
    s_src = a[u_page]
    mat = sp.coo_matrix(
        (np.ones(u_page.size, dtype=np.int64), (s_src, u_sdst)), shape=(n_s, n_s)
    ).tocsr()
    mat.sum_duplicates()
    return mat

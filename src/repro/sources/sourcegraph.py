"""The weighted source graph ``G_S`` with mandatory self-edges.

:class:`SourceGraph` bundles the pieces Sections 3.1–3.3 need downstream:

* the row-normalized transition matrix ``T'`` (uniform or consensus
  weighting);
* structural self-edges on every source (Section 3.3 requires
  ``(s_i, s_i) ∈ L_S`` for all ``i``, even when the underlying page graph
  has no intra-source links — the throttle transform must be able to raise
  the self-weight);
* the page→source assignment used to build it.

A source with no outgoing weight at all receives self-weight 1 (it keeps
its random walker until teleportation), which is the source-level analogue
of the standard dangling-node self-loop fix and keeps ``T'`` row-stochastic.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError, SourceAssignmentError
from ..graph.matrix import is_row_stochastic, row_normalize
from ..graph.pagegraph import PageGraph
from .assignment import SourceAssignment
from .consensus import consensus_weights, uniform_weights

__all__ = ["SourceGraph"]

_WEIGHTINGS = ("consensus", "uniform")


def _with_structural_diagonal(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Ensure every diagonal entry is structurally present.

    scipy drops explicit zeros on many operations, so instead of inserting
    zero diagonals we give empty rows self-weight 1.0 and leave non-empty
    rows untouched; the throttle transform inserts/raises diagonals itself
    from the (dense) diagonal vector.
    """
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    empty = np.flatnonzero(sums == 0)
    if empty.size == 0:
        return matrix
    fix = sp.coo_matrix(
        (np.ones(empty.size), (empty, empty)), shape=matrix.shape
    ).tocsr()
    return (matrix + fix).tocsr()


class SourceGraph:
    """Weighted, row-stochastic source graph.

    Build with :meth:`from_page_graph` (the normal path) or
    :meth:`from_weight_matrix` (source-level analytical experiments that
    never materialize a page graph).
    """

    __slots__ = ("_matrix", "_assignment", "_weighting")

    def __init__(
        self,
        matrix: sp.csr_matrix,
        assignment: SourceAssignment | None = None,
        weighting: str = "custom",
    ) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"source matrix must be square, got {matrix.shape}")
        if assignment is not None and assignment.n_sources != matrix.shape[0]:
            raise SourceAssignmentError(
                f"assignment has {assignment.n_sources} sources but matrix is "
                f"{matrix.shape[0]}x{matrix.shape[1]}"
            )
        matrix = matrix.tocsr()
        matrix.sort_indices()
        if not is_row_stochastic(matrix, atol=1e-8, allow_zero_rows=False):
            raise GraphError(
                "source transition matrix must be row-stochastic "
                "(normalize and fix empty rows before constructing SourceGraph)"
            )
        self._matrix = matrix
        self._assignment = assignment
        self._weighting = weighting

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_page_graph(
        cls,
        graph: PageGraph,
        assignment: SourceAssignment,
        *,
        weighting: str = "consensus",
    ) -> "SourceGraph":
        """Quotient a page graph into a weighted source graph.

        Parameters
        ----------
        weighting:
            ``"consensus"`` (Section 3.2, the paper's choice) or
            ``"uniform"`` (Section 3.1 baseline).
        """
        if weighting not in _WEIGHTINGS:
            raise GraphError(
                f"weighting must be one of {_WEIGHTINGS}, got {weighting!r}"
            )
        if weighting == "consensus":
            normalized = consensus_weights(graph, assignment, include_intra=True)
        else:
            normalized = uniform_weights(graph, assignment, include_intra=True)
        normalized = _with_structural_diagonal(normalized)
        return cls(normalized, assignment, weighting)

    @classmethod
    def from_weight_matrix(
        cls,
        weights: sp.spmatrix | sp.sparray | np.ndarray,
        assignment: SourceAssignment | None = None,
    ) -> "SourceGraph":
        """Build from raw non-negative weights (rows are normalized here)."""
        if not sp.issparse(weights):
            weights = sp.csr_matrix(np.asarray(weights, dtype=np.float64))
        normalized = row_normalize(weights.astype(np.float64))
        normalized = _with_structural_diagonal(normalized)
        return cls(normalized, assignment, "custom")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        """Number of sources."""
        return int(self._matrix.shape[0])

    @property
    def matrix(self) -> sp.csr_matrix:
        """The row-stochastic transition matrix ``T'`` (do not mutate)."""
        return self._matrix

    @property
    def assignment(self) -> SourceAssignment | None:
        """The page→source assignment, when built from a page graph."""
        return self._assignment

    @property
    def weighting(self) -> str:
        """Weighting scheme used: ``"consensus"``, ``"uniform"``, ``"custom"``."""
        return self._weighting

    def n_edges(self, *, count_self: bool = True) -> int:
        """Number of source edges (optionally excluding self-edges).

        Note: Table 1 of the paper counts source edges *excluding* the
        structural self-edges we add (they are a Section 3.3 augmentation,
        not part of the crawled source graph).
        """
        if count_self:
            return int(self._matrix.nnz)
        diag_present = int(np.count_nonzero(self._matrix.diagonal() != 0))
        return int(self._matrix.nnz) - diag_present

    def self_weights(self) -> np.ndarray:
        """Dense vector of current self-edge weights ``T'_ii``."""
        return np.asarray(self._matrix.diagonal()).ravel()

    def out_weight_sums(self) -> np.ndarray:
        """Row sums (all ~1 by construction; exposed for invariants tests)."""
        return np.asarray(self._matrix.sum(axis=1)).ravel()

    def __repr__(self) -> str:
        return (
            f"SourceGraph(n_sources={self.n_sources}, "
            f"n_edges={self.n_edges()}, weighting={self._weighting!r})"
        )

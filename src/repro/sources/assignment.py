"""Page-to-source assignment.

A :class:`SourceAssignment` is a dense ``int64`` array mapping each page id
to a source id in ``[0, n_sources)``.  The paper's default grouping key is
the URL host (Section 6.1); registered-domain grouping and arbitrary
expert-provided maps (as in [11]) are also supported.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import SourceAssignmentError
from ..graph.urls import extract_host, extract_registered_domain

__all__ = ["SourceAssignment"]


class SourceAssignment:
    """Immutable mapping from page ids to dense source ids.

    Parameters
    ----------
    page_to_source:
        Integer array of length ``n_pages``; entry ``p`` is the source id of
        page ``p``.  Source ids must form a dense range ``[0, n_sources)``.
    source_names:
        Optional sequence of length ``n_sources`` giving a human-readable
        name (e.g. the host) per source.
    """

    __slots__ = ("_page_to_source", "_n_sources", "_source_names", "_source_sizes")

    def __init__(
        self,
        page_to_source: np.ndarray | Sequence[int],
        source_names: Sequence[str] | None = None,
    ) -> None:
        arr = np.asarray(page_to_source)
        if arr.ndim != 1:
            raise SourceAssignmentError("page_to_source must be one-dimensional")
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            raise SourceAssignmentError(
                f"page_to_source must be integral, got dtype {arr.dtype}"
            )
        arr = arr.astype(np.int64, copy=True)
        if arr.size:
            if arr.min() < 0:
                raise SourceAssignmentError("source ids must be non-negative")
            n_sources = int(arr.max()) + 1
            present = np.zeros(n_sources, dtype=bool)
            present[arr] = True
            if not present.all():
                missing = int(np.flatnonzero(~present)[0])
                raise SourceAssignmentError(
                    f"source ids must be dense; id {missing} has no pages"
                )
        else:
            n_sources = 0
        if source_names is not None and len(source_names) != n_sources:
            raise SourceAssignmentError(
                f"source_names has length {len(source_names)}, expected {n_sources}"
            )
        arr.setflags(write=False)
        self._page_to_source = arr
        self._n_sources = n_sources
        self._source_names = tuple(source_names) if source_names is not None else None
        sizes = np.bincount(arr, minlength=n_sources).astype(np.int64)
        sizes.setflags(write=False)
        self._source_sizes = sizes

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_keys(cls, keys: Iterable[object]) -> "SourceAssignment":
        """Group pages by arbitrary hashable keys, in first-seen order.

        >>> a = SourceAssignment.from_keys(["h1", "h2", "h1"])
        >>> a.page_to_source.tolist()
        [0, 1, 0]
        """
        mapping: dict[object, int] = {}
        ids: list[int] = []
        for key in keys:
            sid = mapping.get(key)
            if sid is None:
                sid = len(mapping)
                mapping[key] = sid
            ids.append(sid)
        names = [str(k) for k in mapping]
        return cls(np.asarray(ids, dtype=np.int64), names)

    @classmethod
    def from_urls(
        cls,
        urls: Sequence[str],
        *,
        key: str | Callable[[str], str] = "host",
    ) -> "SourceAssignment":
        """Group pages by a URL-derived key.

        Parameters
        ----------
        urls:
            One URL per page, index-aligned with page ids.
        key:
            ``"host"`` (paper default), ``"domain"`` (registered domain), or
            a callable ``url -> group_key``.
        """
        if callable(key):
            key_fn = key
        elif key == "host":
            key_fn = extract_host
        elif key == "domain":
            key_fn = extract_registered_domain
        else:
            raise SourceAssignmentError(
                f"key must be 'host', 'domain', or callable, got {key!r}"
            )
        return cls.from_keys(key_fn(url) for url in urls)

    @classmethod
    def identity(cls, n_pages: int) -> "SourceAssignment":
        """Each page is its own source (degenerates SourceRank to PageRank
        structure, useful for differential testing)."""
        return cls(np.arange(int(n_pages), dtype=np.int64))

    @classmethod
    def single_source(cls, n_pages: int) -> "SourceAssignment":
        """All pages in one source (the other degenerate extreme)."""
        return cls(np.zeros(int(n_pages), dtype=np.int64))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def page_to_source(self) -> np.ndarray:
        """Read-only page→source id array."""
        return self._page_to_source

    @property
    def n_pages(self) -> int:
        """Number of pages covered."""
        return int(self._page_to_source.size)

    @property
    def n_sources(self) -> int:
        """Number of distinct sources."""
        return self._n_sources

    @property
    def source_sizes(self) -> np.ndarray:
        """Read-only array: number of pages per source."""
        return self._source_sizes

    def source_of(self, page: int) -> int:
        """Source id of one page."""
        page = int(page)
        if not 0 <= page < self.n_pages:
            raise SourceAssignmentError(
                f"page {page} out of range for {self.n_pages} pages"
            )
        return int(self._page_to_source[page])

    def pages_of(self, source: int) -> np.ndarray:
        """All page ids belonging to ``source`` (O(n_pages))."""
        source = int(source)
        if not 0 <= source < self._n_sources:
            raise SourceAssignmentError(
                f"source {source} out of range for {self._n_sources} sources"
            )
        return np.flatnonzero(self._page_to_source == source)

    def name_of(self, source: int) -> str:
        """Human-readable name of ``source`` (host/domain/key)."""
        if self._source_names is None:
            raise SourceAssignmentError("this assignment carries no source names")
        source = int(source)
        if not 0 <= source < self._n_sources:
            raise SourceAssignmentError(
                f"source {source} out of range for {self._n_sources} sources"
            )
        return self._source_names[source]

    def extended(self, extra_pages: int, source_ids: np.ndarray | Sequence[int]) -> "SourceAssignment":
        """Return a new assignment with ``extra_pages`` appended.

        Spam scenarios use this to place injected pages into target or
        colluding sources.  ``source_ids`` may reference existing sources or
        introduce new dense ids at the end.
        """
        extra = np.asarray(source_ids, dtype=np.int64)
        if extra.shape != (int(extra_pages),):
            raise SourceAssignmentError(
                f"source_ids must have shape ({extra_pages},), got {extra.shape}"
            )
        combined = np.concatenate([self._page_to_source, extra])
        names = None
        if self._source_names is not None:
            n_new = int(combined.max()) + 1 - self._n_sources if combined.size else 0
            if n_new > 0:
                names = list(self._source_names) + [
                    f"spam-source-{i}" for i in range(n_new)
                ]
            else:
                names = list(self._source_names)
        return SourceAssignment(combined, names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceAssignment):
            return NotImplemented
        return np.array_equal(self._page_to_source, other._page_to_source)

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)

    def __repr__(self) -> str:
        return (
            f"SourceAssignment(n_pages={self.n_pages}, n_sources={self._n_sources})"
        )

"""Source-view substrate: page-to-source assignment and the source graph.

Section 3.1 of the paper introduces the hierarchical *source view*: pages
are grouped into logical collections (sources, host-level by default) and
the page graph is quotiented into a source graph ``G_S = <S, L_S>``.  This
package provides:

* :class:`~repro.sources.assignment.SourceAssignment` — the page→source map,
  constructed from hosts, registered domains, explicit arrays, or URL lists;
* :mod:`repro.sources.quotient` — vectorized quotient-graph machinery;
* :mod:`repro.sources.consensus` — the *source consensus* edge weighting
  ``w(s_i, s_j)`` (count of unique pages in ``s_i`` linking into ``s_j``);
* :class:`~repro.sources.sourcegraph.SourceGraph` — the weighted source
  graph with the mandatory self-edges of Section 3.3.
"""

from .assignment import SourceAssignment
from .quotient import quotient_edge_counts, quotient_unique_page_counts
from .consensus import consensus_weights, uniform_weights
from .sourcegraph import SourceGraph
from .io import (
    load_assignment,
    load_source_graph,
    save_assignment,
    save_source_graph,
)

__all__ = [
    "SourceAssignment",
    "quotient_edge_counts",
    "quotient_unique_page_counts",
    "consensus_weights",
    "uniform_weights",
    "SourceGraph",
    "save_assignment",
    "load_assignment",
    "save_source_graph",
    "load_source_graph",
]

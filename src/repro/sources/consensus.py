"""Source-edge weighting schemes (Section 3.1 vs Section 3.2).

Two schemes are implemented:

* :func:`uniform_weights` — the naive Section 3.1 matrix
  ``T_ij = 1 / o(s_i)``: every out-edge of a source counts the same.
* :func:`consensus_weights` — the Section 3.2 *source consensus* weighting:
  the raw weight of ``(s_i, s_j)`` is the number of unique pages of ``s_i``
  linking into ``s_j``, then each row is normalized to sum to one.  This is
  the spam-resilient choice: a hijacker must capture many pages of a
  legitimate source to move its outgoing weights.

Both return **normalized** CSR matrices; rows with no edges are all-zero
(resolved later by self-edge augmentation in
:class:`~repro.sources.sourcegraph.SourceGraph`).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.matrix import row_normalize
from ..graph.pagegraph import PageGraph
from .assignment import SourceAssignment
from .quotient import quotient_edge_counts, quotient_unique_page_counts

__all__ = ["uniform_weights", "consensus_weights"]


def uniform_weights(
    graph: PageGraph,
    assignment: SourceAssignment,
    *,
    include_intra: bool = True,
) -> sp.csr_matrix:
    """Uniform source transition weights ``T_ij = 1 / o(s_i)``.

    ``o(s_i)`` counts distinct out-neighbour sources (Section 3.1's edge
    count), including the self-edge when intra-source links exist and
    ``include_intra`` is True.
    """
    counts = quotient_edge_counts(graph, assignment, include_intra=include_intra)
    # Binarize: an edge either exists or not; weight is 1/out-degree.
    binary = counts.copy()
    binary.data = np.ones_like(binary.data, dtype=np.float64)
    return row_normalize(binary.astype(np.float64), copy=False)


def consensus_weights(
    graph: PageGraph,
    assignment: SourceAssignment,
    *,
    include_intra: bool = True,
) -> sp.csr_matrix:
    """Source-consensus transition weights (Section 3.2), row-normalized.

    Raw entry ``(i, j)`` counts unique pages of ``s_i`` linking into
    ``s_j``; rows are scaled to sum to one as the paper requires
    ("the outgoing edge weights for any source sum to 1").
    """
    counts = quotient_unique_page_counts(
        graph, assignment, include_intra=include_intra
    )
    return row_normalize(counts.astype(np.float64), copy=False)

"""Persistence for source-level artifacts.

Saves/loads a :class:`~repro.sources.assignment.SourceAssignment` and a
weighted :class:`~repro.sources.sourcegraph.SourceGraph` in ``.npz``
containers, so the expensive quotient step of a large web can be done
once and reused across experiments.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from ..errors import SourceAssignmentError
from .assignment import SourceAssignment
from .sourcegraph import SourceGraph

__all__ = [
    "save_assignment",
    "load_assignment",
    "save_source_graph",
    "load_source_graph",
]

_ASSIGNMENT_VERSION = 1
_SOURCEGRAPH_VERSION = 1


def save_assignment(assignment: SourceAssignment, path: str | Path) -> None:
    """Serialize an assignment (ids plus names, when present)."""
    fields: dict[str, object] = {
        "format_version": np.int64(_ASSIGNMENT_VERSION),
        "page_to_source": assignment.page_to_source,
    }
    try:
        names = [assignment.name_of(s) for s in range(assignment.n_sources)]
        fields["source_names"] = np.asarray(names, dtype=object)
    except SourceAssignmentError:
        pass
    np.savez_compressed(path, **fields)  # type: ignore[arg-type]


def load_assignment(path: str | Path) -> SourceAssignment:
    """Load an assignment written by :func:`save_assignment`."""
    with np.load(path, allow_pickle=True) as data:
        try:
            version = int(data["format_version"])
            ids = data["page_to_source"]
        except KeyError as exc:
            raise SourceAssignmentError(f"{path}: missing field {exc}") from exc
        names = (
            [str(n) for n in data["source_names"]]
            if "source_names" in data
            else None
        )
    if version != _ASSIGNMENT_VERSION:
        raise SourceAssignmentError(
            f"{path}: unsupported assignment format version {version}"
        )
    return SourceAssignment(ids, names)


def save_source_graph(source_graph: SourceGraph, path: str | Path) -> None:
    """Serialize a source graph's weighted CSR matrix (assignment is
    saved separately when needed — it is page-level data)."""
    m = source_graph.matrix
    np.savez_compressed(
        path,
        format_version=np.int64(_SOURCEGRAPH_VERSION),
        n_sources=np.int64(source_graph.n_sources),
        weighting=np.asarray(source_graph.weighting),
        data=m.data,
        indices=m.indices,
        indptr=m.indptr,
    )


def load_source_graph(path: str | Path) -> SourceGraph:
    """Load a source graph written by :func:`save_source_graph`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["format_version"])
            n = int(data["n_sources"])
            matrix = sp.csr_matrix(
                (data["data"], data["indices"], data["indptr"]), shape=(n, n)
            )
            weighting = str(data["weighting"])
        except KeyError as exc:
            raise SourceAssignmentError(f"{path}: missing field {exc}") from exc
    if version != _SOURCEGRAPH_VERSION:
        raise SourceAssignmentError(
            f"{path}: unsupported source-graph format version {version}"
        )
    return SourceGraph(matrix, None, weighting)

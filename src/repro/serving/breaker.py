"""Circuit breaker guarding the ranking service's background updater.

When update solves fail repeatedly (a poisoned input, a broken kernel, a
flaky pool), retrying as fast as requests arrive just burns CPU and keeps
the service pinned in its failure path.  The breaker implements the
classic three-state pattern:

* **closed** — updates flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures, updates
  are refused until an exponential-backoff deadline (doubling per trip,
  capped, with seeded jitter so restarted replicas don't retry in
  lockstep).
* **half_open** — past the deadline exactly one probe update is let
  through; success closes the breaker, failure re-opens it with a longer
  backoff.

State transitions are counted in ``repro_breaker_transitions_total`` and
the current state is mirrored in the ``repro_breaker_state`` gauge
(0 = closed, 1 = open, 2 = half-open).  The clock and RNG seed are
injectable so tests can drive the breaker deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from ..logging_utils import get_logger
from ..observability.metrics import get_registry

__all__ = ["CircuitBreaker", "BREAKER_STATES"]

_logger = get_logger(__name__)

#: Breaker states, index = the ``repro_breaker_state`` gauge value.
BREAKER_STATES: tuple[str, ...] = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure breaker with capped exponential backoff.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    backoff_base_seconds, backoff_max_seconds:
        The first open interval and its cap; the interval doubles on
        every consecutive trip (``base * 2**(trips-1)``, capped).
    jitter:
        Fractional jitter in ``[0, 1]``: each open interval is scaled by
        ``1 + jitter * u`` with ``u ~ U[0, 1)`` from a seeded RNG.
    seed:
        Jitter RNG seed (deterministic backoff schedules in tests).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        backoff_base_seconds: float = 0.5,
        backoff_max_seconds: float = 30.0,
        jitter: float = 0.1,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(int(failure_threshold), 1)
        self.backoff_base = float(backoff_base_seconds)
        self.backoff_max = float(backoff_max_seconds)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        self._clock = clock
        self._lock = threading.RLock()
        self._state = "closed"
        self._failures = 0
        self._trips = 0
        self._open_until = 0.0
        self._set_gauge()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half_open``)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        with self._lock:
            return self._failures

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 if not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(self._open_until - self._clock(), 0.0)

    def _set_gauge(self) -> None:
        get_registry().gauge(
            "repro_breaker_state",
            "Updater circuit breaker state (0=closed, 1=open, 2=half_open)",
        ).set(BREAKER_STATES.index(self._state))

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        get_registry().counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state transitions, by new state",
            labelnames=("state",),
        ).labels(state=state).inc()
        _logger.info("circuit breaker: %s -> %s", self._state, state)
        self._state = state
        self._set_gauge()

    # ------------------------------------------------------------------
    # Protocol: allow / record_success / record_failure
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May an update run now?

        Closed: yes.  Open: no, until the backoff deadline passes — then
        the breaker moves to half-open and admits exactly one probe.
        Half-open: no (one probe is already in flight; its outcome
        decides the next state).
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open" and self._clock() >= self._open_until:
                self._transition("half_open")
                return True
            return False

    def record_success(self) -> None:
        """An admitted update succeeded: reset and close."""
        with self._lock:
            self._failures = 0
            self._trips = 0
            self._transition("closed")

    def record_failure(self) -> None:
        """An admitted update failed: count it, and trip open if due.

        A half-open probe failure trips immediately (the backoff doubles);
        in the closed state the breaker trips once ``failure_threshold``
        consecutive failures accumulate.
        """
        with self._lock:
            self._failures += 1
            probe_failed = self._state == "half_open"
            if probe_failed or self._failures >= self.failure_threshold:
                self._trips += 1
                interval = min(
                    self.backoff_base * 2.0 ** (self._trips - 1),
                    self.backoff_max,
                )
                interval *= 1.0 + self.jitter * float(self._rng.random())
                self._open_until = self._clock() + interval
                self._transition("open")
                _logger.warning(
                    "circuit breaker open for %.3fs (trip %d, %d consecutive failures)",
                    interval,
                    self._trips,
                    self._failures,
                )

    def reset(self) -> None:
        """Force-close the breaker and clear all counters."""
        with self._lock:
            self._failures = 0
            self._trips = 0
            self._open_until = 0.0
            self._transition("closed")

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}, "
            f"threshold={self.failure_threshold})"
        )

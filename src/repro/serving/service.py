"""Fault-tolerant ranking service with explicit degraded modes.

:class:`RankingService` answers score / top-k / percentile queries from
the latest healthy :class:`~repro.serving.snapshot.RankingSnapshot` while
a background updater re-solves the ranking as the web evolves.  Reads
never touch the solver: they only ever see a fully published snapshot,
so a crashed, diverging, or corrupted update can delay freshness but can
never produce a wrong or partial answer.

The serving state machine::

                      update succeeds (from any state)
      ┌─────────────────────────────────────────────────────┐
      │                                                     │
      ▼         failure          ≥ baseline_after       ≥ read_only_after
  [healthy] ────────────► [stale] ────────────► [baseline] ────────────► [read_only]
   serve SR               serve last            serve last               refuse new
   snapshot               SR snapshot           baseline                 updates; keep
                          (staleness            SourceRank               answering reads
                          grows)                snapshot

* **healthy** — the newest spam-resilient σ is served.
* **stale** — updates are failing; the last good SR snapshot keeps being
  served, with staleness (in updates and seconds) exported and stamped
  on every response.
* **baseline** — after ``baseline_after`` consecutive failures the
  service falls back to the last *baseline* SourceRank snapshot (the
  unthrottled ranking published at bootstrap): degraded relevance,
  honest provenance.
* **read_only** — after ``read_only_after`` consecutive failures (or
  when no baseline exists to fall back to) new update submissions are
  refused with :class:`~repro.errors.AdmissionError`; reads continue
  from whatever snapshot is adopted, and *already queued* updates still
  run — one clean success snaps the service straight back to healthy.

Failed updates are **dropped, not retried**: a poisoned request (e.g. a
graph that makes the solve diverge) would otherwise wedge the updater
forever.  Staleness grows until a later clean update lands.  The
:class:`~repro.serving.breaker.CircuitBreaker` additionally spaces out
solve attempts under persistent failure (exponential backoff, half-open
probes) so a broken environment isn't hammered.

Every transition is observable: the ``repro_serving_state`` gauge, the
``repro_serving_transitions_total{from_state,to_state}`` counter, and
per-response provenance (state, snapshot version/kind/age, staleness).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from ..config import (
    ObservabilityParams,
    RankingParams,
    ResilienceParams,
    ServingParams,
)
from ..errors import AdmissionError, ServingError, ThrottleError
from ..graph.pagegraph import PageGraph
from ..logging_utils import get_logger
from ..observability.endpoint import TelemetryServer
from ..observability.events import EventLog
from ..observability.metrics import get_registry
from ..observability.profiling import Profiler, profile_block
from ..observability.tracing import Tracer, span
from ..ranking.incremental import IncrementalSourceRank
from ..ranking.sourcerank import sourcerank
from ..resilience.checkpoint import content_key
from ..resilience.fallback import FallbackChain
from ..sources.assignment import SourceAssignment
from ..sources.sourcegraph import SourceGraph
from ..throttle.vector import ThrottleVector
from .breaker import CircuitBreaker
from .snapshot import RankingSnapshot, SnapshotStore

__all__ = ["RankingService", "ServeResponse", "SERVING_STATES"]

_logger = get_logger(__name__)

#: Serving states, index = the ``repro_serving_state`` gauge value.
SERVING_STATES: tuple[str, ...] = ("healthy", "stale", "baseline", "read_only")

#: Buckets for read latencies — reads are in-memory lookups, so the
#: default seconds buckets would put every observation in the first one.
READ_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 0.01, 0.05, 0.25, 1.0,
)


@dataclass(frozen=True, slots=True)
class ServeResponse:
    """One query answer plus full serving provenance.

    Attributes
    ----------
    value:
        The answer (a float for score/percentile, an ndarray of source
        ids for top-k).
    state:
        Serving state at answer time (one of :data:`SERVING_STATES`).
    snapshot_version, snapshot_kind:
        Which published snapshot produced the answer.
    snapshot_age:
        Seconds since that snapshot was published.
    staleness:
        Updates submitted but not yet applied (0 when fully caught up).
    """

    value: object
    state: str
    snapshot_version: int
    snapshot_kind: str
    snapshot_age: float
    staleness: int


@dataclass(slots=True)
class _UpdateRequest:
    seq: int
    graph: PageGraph
    assignment: SourceAssignment
    kappa: ThrottleVector | None
    solve_kwargs: dict = field(default_factory=dict)


def _labelled(name: str, help_text: str, labelnames: tuple[str, ...] = ()):
    if labelnames:
        return get_registry().counter(name, help_text, labelnames=labelnames)
    return get_registry().counter(name, help_text)


class RankingService:
    """Snapshot-backed ranking queries plus a guarded background updater.

    Parameters
    ----------
    store:
        A :class:`~repro.serving.snapshot.SnapshotStore` or a directory
        path for one.  On construction the service recovers the newest
        healthy snapshot from it (SR preferred, baseline as fallback) —
        restart safety comes entirely from the store.
    params:
        Ranking parameters for updates.  When the attached
        :class:`~repro.config.ResilienceParams` names fallback solvers, a
        :class:`~repro.resilience.fallback.FallbackChain` is wired in
        front of the solver exactly as the batch pipeline does — a
        NaN-corrupted power solve fails over to Jacobi *inside* the
        update, invisible to readers.  Defaults to the paper parameters
        with a ``power → jacobi`` chain.
    serving:
        Degradation thresholds, admission limits, and breaker timings
        (:class:`~repro.config.ServingParams`).
    weighting, full_throttle:
        Source-graph construction and κ = 1 semantics, as in
        :class:`~repro.ranking.incremental.IncrementalSourceRank`.
    breaker:
        Injectable :class:`~repro.serving.breaker.CircuitBreaker`
        (built from ``serving`` when omitted).
    clock:
        Wall-clock source for snapshot ages (injectable for tests).
    """

    def __init__(
        self,
        store: SnapshotStore | str | Path,
        params: RankingParams | None = None,
        serving: ServingParams | None = None,
        *,
        weighting: str = "consensus",
        full_throttle: str = "self",
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.time,
        observability: ObservabilityParams | None = None,
    ) -> None:
        self.serving = serving or ServingParams()
        self.observability = observability or ObservabilityParams()
        if isinstance(store, (str, Path)):
            store = SnapshotStore(store, keep=self.serving.snapshot_keep)
        self.store = store
        if params is None:
            params = RankingParams(
                resilience=ResilienceParams(fallback_solvers=("jacobi",))
            )
        resilience = params.resilience
        if resilience is not None and resilience.fallback_solvers:
            chain = FallbackChain((params.solver, *resilience.fallback_solvers))
            params = params.with_(solver=chain.register())
        self.params = params
        self.weighting = weighting
        self.full_throttle = full_throttle
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=self.serving.failure_threshold,
            backoff_base_seconds=self.serving.backoff_base_seconds,
            backoff_max_seconds=self.serving.backoff_max_seconds,
            jitter=self.serving.backoff_jitter,
            seed=self.serving.seed,
        )
        self._clock = clock
        self._ranker = IncrementalSourceRank(
            params, weighting=weighting, full_throttle=full_throttle
        )
        self._lock = threading.RLock()
        # Serializes update *execution* (pop → solve → publish → adopt).
        # Reads only ever take ``_lock``; ``_run_lock`` is never acquired
        # while ``_lock`` is held, so the two cannot deadlock.
        self._run_lock = threading.Lock()
        self._queue: deque[_UpdateRequest] = deque()
        self._state = "healthy"
        self._current: RankingSnapshot | None = None
        self._last_sr: RankingSnapshot | None = None
        self._submitted_seq = 0
        self._applied_seq = 0
        self._consecutive_failures = 0
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        # --- telemetry v2: correlated events, tracing, live endpoint ---
        obs = self.observability
        self.events: EventLog | None = (
            EventLog(
                obs.events_path, run_id=obs.run_id, buffer=obs.events_buffer
            )
            if obs.events
            else None
        )
        self.tracer: Tracer | None = (
            Tracer(max_roots=obs.trace_buffer) if obs.endpoint else None
        )
        self.profiler: Profiler | None = (
            Profiler(top=obs.profile_top) if obs.profile else None
        )
        self._state_since = self._clock()
        self._read_seconds = get_registry().histogram(
            "repro_serving_read_seconds",
            "Read-path latency by operation",
            labelnames=("op",),
            buckets=READ_LATENCY_BUCKETS,
        )
        self.telemetry: TelemetryServer | None = None
        if obs.endpoint:
            self.telemetry = TelemetryServer(
                health_fn=self.health,
                tracer=self.tracer,
                event_log=self.events,
                host=obs.endpoint_host,
                port=obs.endpoint_port,
            ).start()
        self._recover()
        self._export_state()
        self._emit(
            "service_start",
            state=self._state,
            recovered_version=(
                None if self._current is None else self._current.version
            ),
            endpoint=(
                None
                if self.telemetry is None
                else "%s:%d" % self.telemetry.address
            ),
        )

    # ------------------------------------------------------------------
    # Recovery and bootstrap
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Adopt the newest healthy snapshot from the store, if any."""
        snapshot = self.store.latest(kind="sr")
        if snapshot is not None:
            self._last_sr = snapshot
            self._current = snapshot
            self._ranker.seed(snapshot.result())
            _logger.info("recovered SR snapshot %d from store", snapshot.version)
            return
        snapshot = self.store.latest(kind="baseline")
        if snapshot is not None:
            self._current = snapshot
            self._state = "baseline"
            _logger.warning(
                "no SR snapshot on disk; recovered baseline snapshot %d",
                snapshot.version,
            )

    def bootstrap(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        kappa: ThrottleVector | None = None,
    ) -> RankingSnapshot:
        """Publish the initial baseline and SR snapshots for a web.

        The baseline (unthrottled SourceRank) snapshot is the
        degraded-mode fallback; the SR snapshot is what healthy serving
        answers from.  Returns the SR snapshot.

        Bootstrap takes the updater's run lock, so it cannot interleave
        with an in-flight background update: the SR snapshot it adopts
        is always newer than anything the updater published before it.
        """
        with self._run_lock, self._observed():
            self._emit(
                "bootstrap_start",
                pages=int(graph.n_nodes),
                sources=int(assignment.n_sources),
            )
            source_graph = SourceGraph.from_page_graph(
                graph, assignment, weighting=self.weighting
            )
            n = source_graph.n_sources
            base = sourcerank(source_graph, self.params)
            baseline = self.store.publish(
                kind="baseline",
                sigma=base.scores,
                kappa=np.zeros(n),
                key=self._input_key(graph, assignment, None),
                solver=self.params.solver,
                convergence=base.convergence,
            )
            self._emit(
                "snapshot_published",
                snapshot_kind="baseline",
                version=baseline.version,
            )
            result = self._ranker.update(graph, assignment, kappa)
            snapshot = self.store.publish(
                kind="sr",
                sigma=result.scores,
                kappa=np.zeros(n) if kappa is None else self._padded_kappa(kappa, n),
                key=self._input_key(graph, assignment, kappa),
                solver=self.params.solver,
                convergence=result.convergence,
            )
            self._emit(
                "snapshot_published", snapshot_kind="sr", version=snapshot.version
            )
            with self._lock:
                self._last_sr = snapshot
                self._current = snapshot
                self._consecutive_failures = 0
                self._set_state("healthy")
            self._emit("bootstrap_end", version=snapshot.version)
            return snapshot

    def _input_key(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        kappa: ThrottleVector | None,
    ) -> str:
        return content_key(
            graph.indptr,
            graph.indices,
            np.int64(graph.n_nodes),
            assignment.page_to_source,
            None if kappa is None else kappa.kappa,
            self.weighting,
            self.full_throttle,
        )

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields: object) -> None:
        """Land one event on this service's log (no-op without one).

        Goes straight to ``self.events`` rather than the ambient log so
        events from *caller* threads (submissions, queries) correlate
        under the service's ``run_id`` too — ambience only covers the
        threads the service itself activates.
        """
        if self.events is not None:
            self.events.emit(kind, **fields)

    @contextmanager
    def _observed(self) -> Iterator[None]:
        """Make the service's log/tracer/profiler ambient for this thread.

        Context variables do not propagate into threads, so every thread
        that executes solves on the service's behalf — the background
        updater, or a caller running ``run_pending``/``bootstrap``
        directly — enters this context so the solver layer's
        ``solve_*``/``fallback``/``checkpoint_*`` events and spans land
        on the service's telemetry.
        """
        with ExitStack() as stack:
            if self.events is not None:
                stack.enter_context(self.events.activate())
            if self.tracer is not None:
                stack.enter_context(self.tracer.activate())
            if self.profiler is not None:
                stack.enter_context(self.profiler.activate())
            yield

    @property
    def run_id(self) -> str | None:
        """The correlation id stamped on this service's events, if any."""
        return None if self.events is None else self.events.run_id

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _set_state(self, state: str) -> None:
        """Transition (under the lock), exporting gauge and counter."""
        if state not in SERVING_STATES:
            raise ServingError(f"unknown serving state {state!r}")
        if state == self._state:
            return
        get_registry().counter(
            "repro_serving_transitions_total",
            "Serving state transitions",
            labelnames=("from_state", "to_state"),
        ).labels(from_state=self._state, to_state=state).inc()
        now = self._clock()
        get_registry().counter(
            "repro_serving_state_seconds_total",
            "Cumulative seconds spent in each serving state",
            labelnames=("state",),
        ).labels(state=self._state).inc(max(now - self._state_since, 0.0))
        self._state_since = now
        _logger.info("serving state: %s -> %s", self._state, state)
        self._emit("state_transition", from_state=self._state, to_state=state)
        self._state = state
        self._export_state()

    def _export_state(self) -> None:
        registry = get_registry()
        registry.gauge(
            "repro_serving_state",
            "Serving state (0=healthy, 1=stale, 2=baseline, 3=read_only)",
        ).set(SERVING_STATES.index(self._state))
        registry.gauge(
            "repro_serving_ready",
            "1 when a healthy snapshot is adopted and reads can be answered",
        ).set(1.0 if self._current is not None else 0.0)
        registry.gauge(
            "repro_serving_staleness_updates",
            "Updates submitted but not yet applied",
        ).set(float(self._submitted_seq - self._applied_seq))
        registry.gauge(
            "repro_serving_queue_depth",
            "Pending update requests",
        ).set(float(len(self._queue)))

    def _degrade(self, baseline: RankingSnapshot | None) -> None:
        """Apply the failure-count thresholds after a failed update.

        ``baseline`` is the fallback snapshot, looked up by the caller
        *before* taking the service lock — a store walk (disk reads plus
        digest verification) must never stall concurrent readers.
        """
        failures = self._consecutive_failures
        if failures >= self.serving.read_only_after:
            self._set_state("read_only")
        elif failures >= self.serving.baseline_after:
            if baseline is not None:
                self._current = baseline
                self._set_state("baseline")
            else:
                # Nothing safer to fall back to: stop accepting work.
                self._set_state("read_only")
        else:
            self._set_state("stale")

    # ------------------------------------------------------------------
    # Admission and updates
    # ------------------------------------------------------------------
    def submit_update(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        kappa: ThrottleVector | None = None,
        **solve_kwargs: object,
    ) -> int:
        """Queue an update; returns its sequence number.

        Raises
        ------
        AdmissionError
            ``reason="read_only"`` when the service has degraded past
            accepting writes; ``reason="queue_full"`` when
            ``ServingParams.max_pending`` requests are already waiting
            (backpressure — the caller should retry later).
        """
        with self._lock:
            if self._state == "read_only":
                self._reject("read_only")
                self._emit("admission_rejected", reason="read_only")
                raise AdmissionError(
                    "read_only",
                    "service is read-only after repeated update failures; "
                    "reads continue from the adopted snapshot",
                )
            if len(self._queue) >= self.serving.max_pending:
                self._reject("queue_full")
                self._emit("admission_rejected", reason="queue_full")
                raise AdmissionError(
                    "queue_full",
                    f"update queue is full ({self.serving.max_pending} "
                    "pending); retry after the updater drains",
                )
            self._submitted_seq += 1
            request = _UpdateRequest(
                seq=self._submitted_seq,
                graph=graph,
                assignment=assignment,
                kappa=kappa,
                solve_kwargs=dict(solve_kwargs),
            )
            self._queue.append(request)
            self._export_state()
            self._emit(
                "update_submitted",
                seq=request.seq,
                queue_depth=len(self._queue),
            )
            return request.seq

    @staticmethod
    def _reject(reason: str) -> None:
        get_registry().counter(
            "repro_serving_admission_rejections_total",
            "Update submissions refused, by reason",
            labelnames=("reason",),
        ).labels(reason=reason).inc()

    def pending(self) -> int:
        """Queued updates not yet attempted."""
        with self._lock:
            return len(self._queue)

    def run_pending(self, max_updates: int | None = None) -> int:
        """Run queued updates synchronously; returns how many were applied.

        Each request is popped, solved *outside* the service lock (reads
        proceed concurrently), and on success published + adopted.  A
        failed solve — or a failed snapshot publish — drops the request,
        records the failure with the breaker, and advances the
        degradation state machine.  When the breaker is open the queue
        is left untouched until the backoff deadline passes.

        Execution is serialized across callers: the background loop and
        any direct ``run_pending`` calls take turns under a single run
        lock, so requests are always solved, published, and adopted in
        submission order — a slow older solve can never overwrite a
        newer snapshot as "current".
        """
        applied = 0
        with self._observed():
            while max_updates is None or applied < max_updates:
                with self._run_lock:
                    with self._lock:
                        if not self._queue:
                            break
                        if not self.breaker.allow():
                            break
                        request = self._queue.popleft()
                        self._export_state()
                    ok = self._run_one(request)
                if ok:
                    applied += 1
        return applied

    def _run_one(self, request: _UpdateRequest) -> bool:
        updates = _labelled(
            "repro_serving_updates_total",
            "Background update attempts, by outcome",
            ("status",),
        )
        self._emit("update_start", seq=request.seq)
        try:
            with span("update", seq=request.seq), profile_block(
                "update", seq=request.seq
            ):
                result = self._ranker.update(
                    request.graph,
                    request.assignment,
                    request.kappa,
                    **request.solve_kwargs,
                )
            kappa = request.kappa
            n = result.n
            snapshot = self.store.publish(
                kind="sr",
                sigma=result.scores,
                kappa=(
                    np.zeros(n) if kappa is None else self._padded_kappa(kappa, n)
                ),
                key=self._input_key(request.graph, request.assignment, kappa),
                solver=self.params.solver,
                convergence=result.convergence,
            )
            self._emit(
                "snapshot_published", snapshot_kind="sr", version=snapshot.version
            )
        except Exception as exc:  # noqa: BLE001 - solve OR publish failure
            # The publish sits inside this try on purpose: a disk-full or
            # torn-write error must run the exact same failure path as a
            # diverging solve — count it, tell the breaker (a half-open
            # probe would otherwise wedge half-open forever), degrade.
            updates.labels(status="failed").inc()
            self.breaker.record_failure()
            failures = self._consecutive_failures + 1
            baseline = None
            if self.serving.baseline_after <= failures < self.serving.read_only_after:
                # Store walk outside the service lock: reads proceed.
                baseline = self.store.latest(kind="baseline")
            with self._lock:
                self._consecutive_failures += 1
                self._degrade(baseline)
            self._emit(
                "update_failed",
                seq=request.seq,
                error=type(exc).__name__,
                detail=str(exc),
                consecutive_failures=failures,
            )
            _logger.warning(
                "update %d failed and was dropped (%s: %s)",
                request.seq,
                type(exc).__name__,
                exc,
            )
            return False
        updates.labels(status="ok").inc()
        self.breaker.record_success()
        with self._lock:
            if request.seq >= self._applied_seq:
                self._last_sr = snapshot
                self._current = snapshot
                self._applied_seq = request.seq
            self._consecutive_failures = 0
            self._set_state("healthy")
            self._export_state()
        self._emit(
            "update_applied", seq=request.seq, version=snapshot.version
        )
        return True

    @staticmethod
    def _padded_kappa(kappa: ThrottleVector, n: int) -> np.ndarray:
        if kappa.n > n:
            # Mirrors IncrementalSourceRank.update: a κ assigned on a larger
            # web must never be published alongside a shorter σ — the extra
            # entries would silently shift meaning on the next re-assignment.
            raise ThrottleError(
                f"throttle vector covers {kappa.n} sources but the source "
                f"graph has only {n}; a κ assigned on a larger web cannot "
                "be applied to a smaller one — recompute κ for this web"
            )
        if kappa.n == n:
            return kappa.kappa
        padded = np.zeros(n)
        padded[: kappa.n] = kappa.kappa
        return padded

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _snapshot_for_read(self) -> tuple[RankingSnapshot, str, int]:
        with self._lock:
            snapshot = self._current
            state = self._state
            staleness = self._submitted_seq - self._applied_seq
        if snapshot is None:
            raise ServingError(
                "no snapshot available; bootstrap the service or point it "
                "at a store holding at least one healthy snapshot"
            )
        return snapshot, state, staleness

    def _read(
        self, op: str, fn: Callable[[RankingSnapshot], object]
    ) -> ServeResponse:
        """Answer one read, funnelling *every* failure — missing snapshot,
        out-of-range id, anything ``fn`` raises — through a single
        accounting path so ``repro_serving_reads_total{status="error"}``
        and the latency histogram never under-count.
        """
        started = time.perf_counter()
        try:
            snapshot, state, staleness = self._snapshot_for_read()
            value = fn(snapshot)
        except Exception as exc:
            _labelled(
                "repro_serving_reads_total",
                "Queries answered, by outcome",
                ("status",),
            ).labels(status="error").inc()
            self._read_seconds.labels(op=op).observe(
                time.perf_counter() - started
            )
            self._emit("read_failed", op=op, error=type(exc).__name__)
            raise
        return self._respond(
            snapshot, state, staleness, value, op=op, started=started
        )

    def _respond(
        self,
        snapshot: RankingSnapshot,
        state: str,
        staleness: int,
        value: object,
        *,
        op: str = "read",
        started: float | None = None,
    ) -> ServeResponse:
        age = snapshot.age(self._clock())
        registry = get_registry()
        registry.gauge(
            "repro_serving_snapshot_age_seconds",
            "Age of the snapshot answering reads",
        ).set(age)
        _labelled(
            "repro_serving_reads_total",
            "Queries answered, by outcome",
            ("status",),
        ).labels(status="ok").inc()
        if started is not None:
            self._read_seconds.labels(op=op).observe(
                time.perf_counter() - started
            )
        return ServeResponse(
            value=value,
            state=state,
            snapshot_version=snapshot.version,
            snapshot_kind=snapshot.kind,
            snapshot_age=age,
            staleness=staleness,
        )

    def score(self, source: int) -> ServeResponse:
        """The served σ value of one source."""
        return self._read("score", lambda s: s.result().score_of(source))

    def top_k(self, k: int) -> ServeResponse:
        """Ids of the ``k`` best-ranked sources, best first."""
        return self._read("top_k", lambda s: s.result().top(k))

    def percentile(self, source: int) -> ServeResponse:
        """The served ranking percentile (100 = best) of one source."""
        return self._read(
            "percentile", lambda s: s.result().percentile_of(source)
        )

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """Readiness: can reads be answered at all?"""
        with self._lock:
            return self._current is not None

    def health(self) -> dict:
        """Structured health probe (JSON-ready).

        Besides the degradation-ladder detail, reports the service's
        correlation ``run_id``, how long it has sat in the current state,
        and bucket-interpolated p50/p99 read latencies per operation —
        the numbers an SLO dashboard scrapes from ``/health``.
        """
        with self._lock:
            snapshot = self._current
            payload = {
                "state": self._state,
                "ready": snapshot is not None,
                "snapshot_version": None if snapshot is None else snapshot.version,
                "snapshot_kind": None if snapshot is None else snapshot.kind,
                "snapshot_age_seconds": (
                    None if snapshot is None else snapshot.age(self._clock())
                ),
                "staleness_updates": self._submitted_seq - self._applied_seq,
                "queue_depth": len(self._queue),
                "consecutive_failures": self._consecutive_failures,
                "breaker_state": self.breaker.state,
                "breaker_retry_after_seconds": self.breaker.retry_after(),
                "state_seconds": max(self._clock() - self._state_since, 0.0),
                "run_id": self.run_id,
            }
        latency: dict[str, dict[str, float | int | None]] = {}
        for child in self._read_seconds.children():
            if not child.count:
                continue
            latency[child.label_values.get("op", "read")] = {
                "count": child.count,
                "p50_seconds": child.quantile(0.5),
                "p99_seconds": child.quantile(0.99),
            }
        payload["read_latency"] = latency
        return payload

    # ------------------------------------------------------------------
    # Background updater
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background updater thread (idempotent).

        Also (re)starts the telemetry endpoint if one is configured —
        after a ``stop()``/``start()`` cycle the endpoint may come back
        on a different port when ``endpoint_port=0``.
        """
        if self.telemetry is not None:
            self.telemetry.start()
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-serving-updater", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the background updater thread and join it.

        The telemetry endpoint is shut down too; the event log and its
        ring buffer stay readable after stop.
        """
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop_event.set()
        if thread is not None:
            thread.join(timeout=timeout)
        if self.telemetry is not None:
            self.telemetry.stop()
        self._emit("service_stop", state=self._state)

    def _loop(self) -> None:
        # run_pending re-activates the service's event log / tracer /
        # profiler inside this thread (context variables do not cross
        # thread boundaries), so updater telemetry correlates with the
        # service run_id.
        while not self._stop_event.is_set():
            try:
                applied = self.run_pending()
            except Exception:  # noqa: BLE001 - updater must never die
                _logger.exception("updater loop iteration failed")
                applied = 0
            if applied == 0:
                self._stop_event.wait(self.serving.poll_interval_seconds)

    def __enter__(self) -> "RankingService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

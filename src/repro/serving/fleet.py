"""Replicated serving fleet: one publisher, N read-only replica processes.

The single-process :class:`~repro.serving.RankingService` couples the
updater (solve + publish) and the read path in one interpreter; this
module splits them across processes so reads scale horizontally while
exactly one process keeps writing:

* the **publisher** is an ordinary :class:`RankingService` — it solves,
  publishes to the :class:`~repro.serving.snapshot.SnapshotStore`, and
  never answers fleet reads;
* each **replica** (:class:`ReplicaService`, run by :func:`_replica_main`
  in a ``spawn``-ed process) polls the same store directory, adopting
  each new snapshot through a :class:`SnapshotFollower` — seq-guarded
  (an older version is never adopted after a newer one) and
  digest-verified (adoption reuses :meth:`SnapshotStore.load`, so a torn
  or tampered publish is skipped, never served) — and answers
  ``score`` / ``top_k`` / ``percentile`` reads over a newline-delimited
  JSON TCP protocol;
* the :class:`ServingFleet` orchestrator owns the topology: it spawns
  replicas, fronts them with the asyncio
  :class:`~repro.serving.frontend.FrontDoor`, rebinds the publisher's
  telemetry ``/health`` to the fan-out view, and can kill / restart
  replicas mid-traffic (the chaos lever ``benchmarks/bench_fleet.py``
  pulls).

See ``docs/architecture.md`` ("Replicated serving fleet") for the
topology diagram and the adoption/eviction state machines.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..config import FleetParams, SLOParams
from ..errors import FleetError, NodeIndexError, ServingError
from ..logging_utils import get_logger
from ..observability.metrics import get_registry
from ..resilience.faults import FaultPlan, FaultyStore, SocketFaultInjector
from .frontend import FleetClient, FrontDoor
from .service import RankingService
from .snapshot import RankingSnapshot, SnapshotStore

__all__ = [
    "SnapshotFollower",
    "ReplicaService",
    "ReplicaHandle",
    "ServingFleet",
    "replica_request",
]

_logger = get_logger(__name__)


def _encode(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8") + b"\n"


def replica_request(
    address: tuple[str, int], payload: dict, *, timeout: float = 10.0
) -> dict:
    """One request/response round trip straight to a replica socket.

    Bypasses the front door — used for graceful shutdown, for the
    bench's σ-identity audit, and anywhere a *specific* replica must be
    interrogated rather than whichever one the balancer picks.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(_encode(payload))
        with sock.makefile("rb") as rfile:
            line = rfile.readline()
    if not line:
        raise FleetError(f"replica at {address} closed the connection")
    return json.loads(line)


# ----------------------------------------------------------------------
# Snapshot adoption
# ----------------------------------------------------------------------
class SnapshotFollower:
    """Seq-guarded, digest-verified snapshot adoption for one replica.

    Wraps a :class:`SnapshotStore` and tracks the single snapshot the
    replica currently serves.  :meth:`poll_once` asks the store for its
    newest *healthy* snapshot (``load`` re-verifies the payload digest,
    so corruption can never be adopted) and :meth:`adopt` applies the
    monotonicity guard: a version at or below the current one is
    refused.  That ordering guarantee is what makes replica reads
    coherent — after the store prunes, or when a torn write makes
    ``latest()`` land on an older file, the replica keeps serving the
    newer σ it already holds rather than travelling back in time.
    """

    def __init__(
        self,
        store: SnapshotStore,
        *,
        kind: str = "sr",
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.store = store
        self.kind = kind
        self._clock = clock
        self._lock = threading.Lock()
        self._current: RankingSnapshot | None = None
        self._percentiles: np.ndarray | None = None
        self._adoptions = 0
        self._rejected_stale = 0
        registry = get_registry()
        self._adoptions_total = registry.counter(
            "repro_fleet_adoptions_total",
            "Snapshots adopted by this process's follower(s)",
        )
        # One labeled family for every way an adoption candidate can be
        # refused: "stale" is counted here (the follower's monotonicity
        # guard); store-level reasons ("unreadable", "digest",
        # "format_version") are counted by the store itself under
        # repro_snapshot_rejects_total — distinct labels per kind.
        self._rejects_total = registry.counter(
            "repro_fleet_adoption_rejects_total",
            "Adoption candidates refused by the follower, by reason",
            labelnames=("reason",),
        )

    @property
    def current(self) -> RankingSnapshot | None:
        """The snapshot reads are answered from (``None`` before first adopt)."""
        with self._lock:
            return self._current

    @property
    def adoptions(self) -> int:
        """How many snapshots have been adopted since construction."""
        with self._lock:
            return self._adoptions

    @property
    def rejected_stale(self) -> int:
        """Adoption attempts refused because they were not newer."""
        with self._lock:
            return self._rejected_stale

    def adopt(self, snapshot: RankingSnapshot) -> bool:
        """Adopt ``snapshot`` iff it is strictly newer than the current one."""
        with self._lock:
            if (
                self._current is not None
                and snapshot.version <= self._current.version
            ):
                if snapshot.version < self._current.version:
                    self._rejected_stale += 1
                    self._rejects_total.labels(reason="stale").inc()
                return False
            self._current = snapshot
            self._percentiles = None
            self._adoptions += 1
            self._adoptions_total.inc()
        _logger.info(
            "adopted snapshot %d (%s, n=%d)",
            snapshot.version,
            snapshot.kind,
            snapshot.n,
        )
        return True

    def poll_once(self) -> bool:
        """Check the store for a newer healthy snapshot; adopt if found."""
        latest = self.store.latest(kind=self.kind)
        if latest is None:
            return False
        return self.adopt(latest)

    def percentiles(self) -> np.ndarray:
        """Cached percentile vector of the current snapshot."""
        with self._lock:
            snapshot = self._current
            if snapshot is None:
                raise ServingError(
                    "no snapshot adopted yet; the publisher has not "
                    "published (or the replica has not polled) a healthy "
                    "snapshot"
                )
            if self._percentiles is None:
                self._percentiles = snapshot.result().percentiles()
            return self._percentiles

    def snapshot_for_read(self) -> RankingSnapshot:
        """The current snapshot, or a :class:`ServingError` when empty."""
        snapshot = self.current
        if snapshot is None:
            raise ServingError(
                "no snapshot adopted yet; the publisher has not published "
                "(or the replica has not polled) a healthy snapshot"
            )
        return snapshot


# ----------------------------------------------------------------------
# Replica process
# ----------------------------------------------------------------------
class _ReplicaTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    replica: "ReplicaService"


#: Ops never subjected to socket fault injection: the control plane must
#: stay reachable so a chaos phase can always be switched off again.
_CHAOS_EXEMPT_OPS: tuple[str, ...] = ("chaos", "stop")


class _ReplicaHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # noqa: D102 - socketserver contract
        replica = self.server.replica  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            try:
                message = json.loads(line)
            except (ValueError, UnicodeDecodeError) as exc:
                self.wfile.write(
                    _encode(
                        {
                            "ok": False,
                            "error": "FleetError",
                            "detail": f"malformed request: {exc}",
                        }
                    )
                )
                continue
            response = replica.handle(message)
            op = message.get("op")
            if op in _CHAOS_EXEMPT_OPS:
                self.wfile.write(_encode(response))
            elif not replica.injector.send(
                self.wfile, _encode(response), self.connection
            ):
                # An injected reset/torn frame cut this client off —
                # drop the connection like the fault it is simulating.
                return
            if op == "stop":
                # shutdown() blocks until serve_forever returns, and we
                # are running *inside* a handler thread — hand it off.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class ReplicaService:
    """A read-only ranking replica: adopt snapshots, answer reads.

    Holds no solver and accepts no writes — its entire state is the
    snapshot its :class:`SnapshotFollower` adopted from the shared
    store.  ``handle`` is a pure request→response map (unit-testable
    in-process); :meth:`bind` + :meth:`serve_forever` put it behind a
    threading TCP server speaking newline-delimited JSON.

    Supported ops: ``score`` / ``percentile`` (batched ``ids``),
    ``top_k``, ``health``, ``sigma`` (the full served vector, for
    identity audits), ``chaos`` (configure/toggle the replica's fault
    plan — the control lever ``bench_chaos.py`` pulls), and ``stop``.
    """

    def __init__(
        self,
        store: SnapshotStore | str | Path,
        *,
        replica_id: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.05,
        clock: Callable[[], float] = time.time,
        chaos: FaultPlan | None = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = SnapshotStore(store)
        self.replica_id = int(replica_id)
        # Every replica carries an (initially empty) fault plan wrapping
        # both its socket layer and its view of the snapshot store, so
        # gray failures can be switched on over the wire at any moment.
        self.chaos = chaos if chaos is not None else FaultPlan(seed=replica_id)
        self.injector = SocketFaultInjector(self.chaos)
        self.follower = SnapshotFollower(
            FaultyStore(store, self.chaos), clock=clock
        )
        self._host = host
        self._port = int(port)
        self._poll_interval = float(poll_interval)
        self._clock = clock
        self._started_at = clock()
        self._counters_lock = threading.Lock()
        self._reads_ok = 0
        self._reads_error = 0
        self._server: _ReplicaTCPServer | None = None
        self._poll_stop = threading.Event()
        self._poll_thread: threading.Thread | None = None

    # -- request handling ------------------------------------------------
    def handle(self, message: dict) -> dict:
        """Answer one decoded request (never raises)."""
        op = message.get("op")
        try:
            if op == "score":
                return self._values(message, what="score")
            if op == "percentile":
                return self._values(message, what="percentile")
            if op == "top_k":
                return self._top_k(message)
            if op == "health":
                return {"ok": True, **self.health()}
            if op == "sigma":
                snapshot = self.follower.snapshot_for_read()
                return {
                    "ok": True,
                    "version": snapshot.version,
                    "sigma": snapshot.result().scores.tolist(),
                }
            if op == "chaos":
                config = {
                    key: value
                    for key, value in message.items()
                    if key != "op"
                }
                return {
                    "ok": True,
                    "replica": self.replica_id,
                    "chaos": self.chaos.apply_config(config),
                }
            if op == "stop":
                return {"ok": True, "stopping": True}
            raise FleetError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            with self._counters_lock:
                self._reads_error += 1
            return {
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
                "replica": self.replica_id,
            }

    def _meta(self, snapshot: RankingSnapshot) -> dict:
        return {
            "replica": self.replica_id,
            "version": snapshot.version,
            "kind": snapshot.kind,
            "age": snapshot.age(self._clock()),
        }

    def _checked_ids(self, message: dict, n: int) -> np.ndarray:
        ids = np.asarray(message.get("ids", ()), dtype=np.int64).ravel()
        bad = ids[(ids < 0) | (ids >= n)]
        if bad.size:
            raise NodeIndexError(int(bad[0]), n)
        return ids

    def _values(self, message: dict, *, what: str) -> dict:
        snapshot = self.follower.snapshot_for_read()
        ids = self._checked_ids(message, snapshot.n)
        if what == "score":
            values = snapshot.result().scores[ids]
        else:
            values = self.follower.percentiles()[ids]
        with self._counters_lock:
            self._reads_ok += int(ids.size)
        return {
            "ok": True,
            "values": values.tolist(),
            **self._meta(snapshot),
        }

    def _top_k(self, message: dict) -> dict:
        snapshot = self.follower.snapshot_for_read()
        ids = snapshot.result().top(int(message.get("k", 0)))
        with self._counters_lock:
            self._reads_ok += int(ids.size)
        return {"ok": True, "ids": ids.tolist(), **self._meta(snapshot)}

    def health(self) -> dict:
        """Replica-local health document (JSON-ready)."""
        snapshot = self.follower.current
        with self._counters_lock:
            reads_ok, reads_error = self._reads_ok, self._reads_error
        return {
            "replica": self.replica_id,
            "pid": os.getpid(),
            "ready": snapshot is not None,
            "snapshot_version": None if snapshot is None else snapshot.version,
            "snapshot_kind": None if snapshot is None else snapshot.kind,
            "snapshot_age_seconds": (
                None if snapshot is None else snapshot.age(self._clock())
            ),
            "n_sources": None if snapshot is None else snapshot.n,
            "adoptions": self.follower.adoptions,
            "rejected_stale": self.follower.rejected_stale,
            "reads_ok": reads_ok,
            "reads_error": reads_error,
            "uptime_seconds": max(self._clock() - self._started_at, 0.0),
            "chaos": self.chaos.describe(),
        }

    # -- serving ----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)``; raises before :meth:`bind`."""
        if self._server is None:
            raise FleetError(
                "replica is not bound yet", replica=self.replica_id
            )
        return self._server.server_address[:2]

    def bind(self) -> "ReplicaService":
        """Bind the TCP listener and start the snapshot poll thread."""
        if self._server is not None:
            return self
        self._server = _ReplicaTCPServer(
            (self._host, self._port), _ReplicaHandler, bind_and_activate=True
        )
        self._server.replica = self
        self._poll_thread = threading.Thread(
            target=self._poll_loop,
            name=f"repro-replica-{self.replica_id}-poll",
            daemon=True,
        )
        self._poll_thread.start()
        return self

    def _poll_loop(self) -> None:
        while not self._poll_stop.is_set():
            try:
                self.follower.poll_once()
            except Exception:  # noqa: BLE001 - polling must survive
                _logger.exception(
                    "replica %d snapshot poll failed", self.replica_id
                )
            self._poll_stop.wait(self._poll_interval)

    def serve_forever(self) -> None:
        """Block answering reads until ``stop`` arrives (or :meth:`close`)."""
        if self._server is None:
            self.bind()
        assert self._server is not None
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def close(self) -> None:
        """Tear the listener and poll thread down (idempotent)."""
        self._poll_stop.set()
        server, self._server = self._server, None
        if server is not None:
            server.server_close()
        if self._poll_thread is not None:
            self._poll_thread.join(timeout=5)
            self._poll_thread = None


def _replica_main(
    conn,
    store_dir: str,
    replica_id: int,
    host: str,
    poll_interval: float,
    ready_requires_snapshot: bool,
    ready_timeout: float,
) -> None:
    """Entry point of a spawned replica process.

    Reports ``("ready", host, port)`` (or ``("error", detail)``) back on
    ``conn`` once the socket is bound and — when demanded — a first
    snapshot is adopted, then serves until told to stop.
    """
    replica = ReplicaService(
        Path(store_dir),
        replica_id=replica_id,
        host=host,
        poll_interval=poll_interval,
    )
    try:
        replica.bind()
        if ready_requires_snapshot:
            deadline = time.monotonic() + ready_timeout
            while replica.follower.current is None:
                if time.monotonic() >= deadline:
                    raise FleetError(
                        f"replica {replica_id} found no healthy snapshot in "
                        f"{store_dir} within {ready_timeout:.1f}s",
                        replica=replica_id,
                    )
                time.sleep(min(poll_interval, 0.05))
        conn.send(("ready",) + tuple(replica.address))
    except Exception as exc:  # noqa: BLE001 - must report, not die silent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        replica.close()
        return
    conn.close()
    replica.serve_forever()


class ReplicaHandle:
    """Parent-side handle on one spawned replica process."""

    def __init__(
        self,
        *,
        replica_id: int,
        process: multiprocessing.process.BaseProcess,
        address: tuple[str, int],
        store_dir: Path,
    ) -> None:
        self.replica_id = int(replica_id)
        self.process = process
        self.address = address
        self.store_dir = store_dir

    @classmethod
    def spawn(
        cls, store_dir: str | Path, replica_id: int, params: FleetParams
    ) -> "ReplicaHandle":
        """Spawn one replica and wait for it to report ready.

        Uses the ``spawn`` start method: the publisher process runs
        updater/telemetry threads, which ``fork`` would duplicate into
        a wedged child.
        """
        store_dir = Path(store_dir)
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_replica_main,
            args=(
                child_conn,
                str(store_dir),
                int(replica_id),
                params.host,
                params.replica_poll_seconds,
                params.ready_requires_snapshot,
                params.spawn_timeout_seconds,
            ),
            name=f"repro-replica-{replica_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        # The child's own readiness deadline (spawn_timeout_seconds) only
        # starts ticking after its interpreter finishes importing; wait
        # past it so a child-side "no healthy snapshot" error reaches us
        # instead of racing our poll.
        if not parent_conn.poll(params.spawn_timeout_seconds + 30.0):
            process.terminate()
            process.join(5)
            raise FleetError(
                f"replica {replica_id} did not report ready within "
                f"{params.spawn_timeout_seconds:.1f}s",
                replica=replica_id,
            )
        try:
            message = parent_conn.recv()
        except EOFError:
            process.join(5)
            raise FleetError(
                f"replica {replica_id} died before reporting ready "
                f"(exitcode {process.exitcode})",
                replica=replica_id,
            ) from None
        finally:
            parent_conn.close()
        if message[0] != "ready":
            process.join(5)
            raise FleetError(
                f"replica {replica_id} failed to start: {message[1]}",
                replica=replica_id,
            )
        handle = cls(
            replica_id=replica_id,
            process=process,
            address=(message[1], int(message[2])),
            store_dir=store_dir,
        )
        _logger.info(
            "replica %d ready at %s:%d (pid %d)",
            replica_id,
            *handle.address,
            process.pid,
        )
        return handle

    def alive(self) -> bool:
        """Is the replica process still running?"""
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the replica — the chaos lever; no goodbye handshake."""
        self.process.kill()
        self.process.join(10)

    def terminate(self, *, timeout: float = 5.0) -> None:
        """Stop the replica gracefully, escalating to SIGTERM/SIGKILL."""
        if self.alive():
            try:
                replica_request(self.address, {"op": "stop"}, timeout=timeout)
            except Exception:  # noqa: BLE001 - already gone is fine
                pass
            self.process.join(timeout)
        if self.alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
class ServingFleet:
    """One publisher, N replicas, one front door — the serving topology.

    Parameters
    ----------
    service:
        The publisher :class:`RankingService`.  Its store directory is
        what replicas follow; bootstrap it (or point it at a non-empty
        store) before :meth:`start` when
        ``params.ready_requires_snapshot`` is on.
    params:
        Fleet topology and protocol knobs (:class:`FleetParams`).

    ``start`` spawns the replicas, raises the front door, starts the
    publisher's background updater, and — when the publisher exposes a
    telemetry endpoint — rebinds its ``/health`` to the fleet fan-out
    view (publisher + front door + per-replica state).
    """

    def __init__(
        self,
        service: RankingService,
        params: FleetParams | None = None,
        *,
        slo: SLOParams | None = None,
    ) -> None:
        self.service = service
        self.params = params or FleetParams()
        self.slo = slo
        self.replicas: dict[int, ReplicaHandle] = {}
        self.frontdoor: FrontDoor | None = None
        self._prev_health_fn: Callable[[], dict] | None = None
        self._started = False

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "ServingFleet":
        """Spawn replicas, raise the front door, start the updater."""
        if self._started:
            return self
        store_dir = self.service.store.directory
        try:
            for replica_id in range(self.params.replicas):
                self.replicas[replica_id] = ReplicaHandle.spawn(
                    store_dir, replica_id, self.params
                )
            self.frontdoor = FrontDoor(
                {rid: h.address for rid, h in self.replicas.items()},
                self.params,
                slo=self.slo,
            ).start()
        except Exception:
            self._teardown_replicas()
            raise
        if self.service.telemetry is not None:
            self._prev_health_fn = self.service.telemetry.health_fn
            self.service.telemetry.health_fn = self.health
        self.service.start()
        self._started = True
        _logger.info(
            "fleet up: %d replicas behind %s:%d",
            len(self.replicas),
            *self.frontdoor.address,
        )
        return self

    def stop(self) -> None:
        """Stop updater, front door, and every replica (idempotent)."""
        if self.service.telemetry is not None and self._prev_health_fn is not None:
            self.service.telemetry.health_fn = self._prev_health_fn
            self._prev_health_fn = None
        self.service.stop()
        if self.frontdoor is not None:
            self.frontdoor.stop()
            self.frontdoor = None
        self._teardown_replicas()
        self._started = False

    def _teardown_replicas(self) -> None:
        for handle in self.replicas.values():
            try:
                handle.terminate()
            except Exception:  # noqa: BLE001 - teardown keeps going
                _logger.exception(
                    "replica %d did not stop cleanly", handle.replica_id
                )
        self.replicas.clear()

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- chaos levers -------------------------------------------------------
    def kill_replica(self, replica_id: int) -> None:
        """SIGKILL one replica; the front door evicts it on first error."""
        handle = self._handle(replica_id)
        handle.kill()
        _logger.info("killed replica %d (pid %s)", replica_id, handle.process.pid)

    def restart_replica(self, replica_id: int) -> ReplicaHandle:
        """Spawn a fresh process for ``replica_id`` and re-route traffic.

        The new replica binds a new port; the front door's routing table
        is updated in place and the replica returns to ACTIVE rotation
        immediately (no probe wait).
        """
        old = self._handle(replica_id)
        if old.alive():
            old.terminate()
        handle = ReplicaHandle.spawn(old.store_dir, replica_id, self.params)
        self.replicas[replica_id] = handle
        if self.frontdoor is not None:
            self.frontdoor.update_replica(replica_id, handle.address)
        return handle

    def set_replica_chaos(self, replica_id: int, **config) -> dict:
        """Configure one replica's fault plan over its own socket.

        Keyword form of the ``chaos`` op:
        ``set_replica_chaos(0, rules={...}, activate=[...],
        deactivate=[...], reset=True)``.  Returns the replica's plan
        description after the change.  Bypasses the front door — chaos
        control must reach a replica even while it is evicted.
        """
        handle = self._handle(replica_id)
        response = replica_request(
            handle.address,
            {"op": "chaos", **config},
            timeout=self.params.request_timeout_seconds,
        )
        if not response.get("ok"):
            raise FleetError(
                f"chaos config rejected by replica {replica_id}: "
                f"{response.get('detail')}",
                replica=replica_id,
            )
        return response["chaos"]

    def _handle(self, replica_id: int) -> ReplicaHandle:
        try:
            return self.replicas[replica_id]
        except KeyError:
            raise FleetError(
                f"no replica {replica_id} in this fleet "
                f"(have {sorted(self.replicas)})",
                replica=replica_id,
            ) from None

    # -- views ---------------------------------------------------------------
    def client(self) -> FleetClient:
        """A blocking client connected to the front door."""
        if self.frontdoor is None:
            raise FleetError("fleet is not started")
        return FleetClient(
            self.frontdoor.address,
            timeout=self.params.request_timeout_seconds + 5.0,
        )

    def replica_addresses(self) -> Mapping[int, tuple[str, int]]:
        """Current replica routing table (for direct interrogation)."""
        return {rid: h.address for rid, h in self.replicas.items()}

    def health(self) -> dict:
        """Fleet-wide health: publisher + front door + per-replica fan-out.

        This is what the publisher's telemetry ``/health`` serves while
        the fleet runs.
        """
        payload: dict = {"fleet": True, "publisher": self.service.health()}
        if self.frontdoor is not None:
            payload["frontend"] = self.frontdoor.stats()
            payload["replicas"] = self.frontdoor.health()
        payload["replica_processes"] = {
            str(rid): {
                "alive": handle.alive(),
                "pid": handle.process.pid,
                "address": list(handle.address),
            }
            for rid, handle in sorted(self.replicas.items())
        }
        return payload

"""Versioned, integrity-checked snapshot store for published rankings.

A snapshot is one published ranking: the σ vector, the κ it was computed
under, convergence provenance, and the :func:`~repro.resilience.checkpoint.content_key`
of the inputs that produced it.  Snapshots are monotonically numbered and
written with the same atomic tmp + ``os.replace`` publish (and ``.npz``
format-version field) as the resilience checkpoints, plus a payload
digest recomputed on load — a torn, truncated, or tampered snapshot is
*skipped* (with a warning and a ``repro_snapshot_rejects_total`` count),
never served.  :meth:`SnapshotStore.latest` therefore always lands on
the newest snapshot that is actually healthy, which is what makes a
:class:`~repro.serving.service.RankingService` restart safe: whatever a
crash left behind, the store serves the last complete publish.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import ServingError
from ..linalg.iterate import ConvergenceInfo
from ..logging_utils import get_logger
from ..observability.metrics import get_registry
from ..ranking.base import RankingResult
from ..resilience.checkpoint import atomic_savez, content_key

__all__ = ["RankingSnapshot", "SnapshotStore", "SNAPSHOT_KINDS"]

_logger = get_logger(__name__)

_SNAPSHOT_FORMAT_VERSION = 2
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.npz$")

#: The two snapshot kinds a service publishes: the throttled SR ranking
#: and the unthrottled baseline it degrades to.
SNAPSHOT_KINDS: tuple[str, ...] = ("sr", "baseline")


def _record_reject(reason: str) -> None:
    get_registry().counter(
        "repro_snapshot_rejects_total",
        "Snapshots refused at load time, by reason",
        labelnames=("reason",),
    ).labels(reason=reason).inc()


class RankingSnapshot:
    """One published ranking: σ, κ, provenance, and an input fingerprint."""

    __slots__ = (
        "version",
        "kind",
        "sigma",
        "kappa",
        "key",
        "published_at",
        "solver",
        "convergence",
        "_result",
    )

    def __init__(
        self,
        *,
        version: int,
        kind: str,
        sigma: np.ndarray,
        kappa: np.ndarray,
        key: str,
        published_at: float,
        solver: str,
        convergence: ConvergenceInfo,
    ) -> None:
        if kind not in SNAPSHOT_KINDS:
            raise ServingError(
                f"snapshot kind must be one of {SNAPSHOT_KINDS}, got {kind!r}"
            )
        sigma = np.asarray(sigma, dtype=np.float64).ravel()
        kappa = np.asarray(kappa, dtype=np.float64).ravel()
        sigma.setflags(write=False)
        kappa.setflags(write=False)
        self.version = int(version)
        self.kind = str(kind)
        self.sigma = sigma
        self.kappa = kappa
        self.key = str(key)
        self.published_at = float(published_at)
        self.solver = str(solver)
        self.convergence = convergence
        self._result: RankingResult | None = None

    @property
    def n(self) -> int:
        """Number of ranked sources."""
        return int(self.sigma.size)

    def result(self) -> RankingResult:
        """The snapshot as a :class:`~repro.ranking.base.RankingResult`.

        Built once and cached — the service answers top-k/percentile
        queries through the result's rank-order helpers.
        """
        if self._result is None:
            self._result = RankingResult(
                self.sigma,
                self.convergence,
                label=f"snapshot-{self.version}:{self.kind}",
            )
        return self._result

    def age(self, now: float) -> float:
        """Seconds between this snapshot's publish and ``now``."""
        return max(float(now) - self.published_at, 0.0)

    def digest(self) -> str:
        """Content fingerprint of the payload, verified on every load."""
        return content_key(
            np.int64(self.version),
            self.kind,
            self.sigma,
            self.kappa,
            self.key,
            self.solver,
            np.int64(int(self.convergence.converged)),
            np.int64(self.convergence.iterations),
            np.float64(self.convergence.residual),
            np.float64(self.convergence.tolerance),
            np.float64(self.published_at),
        )

    def __repr__(self) -> str:
        return (
            f"RankingSnapshot(version={self.version}, kind={self.kind!r}, "
            f"n={self.n}, published_at={self.published_at:.3f})"
        )


class SnapshotStore:
    """Atomic, monotonically versioned snapshot files under one directory.

    Parameters
    ----------
    directory:
        Where ``snapshot-<version>.npz`` files live (created on first
        publish).
    keep:
        Retention per kind: :meth:`publish` prunes all but the newest
        ``keep`` snapshots of each kind (the newest healthy baseline is
        always retained — it is the degraded-mode fallback).
    clock:
        Wall-clock source for ``published_at`` (injectable for tests).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        keep: int = 8,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory)
        self.keep = max(int(keep), 1)
        self._clock = clock
        self._lock = threading.Lock()
        # version -> kind ("sr"/"baseline") or None for known-unreadable
        # files.  Filled by publish and by prune's first look at a file,
        # so retention never re-loads (and re-sha256s) the same snapshot
        # twice.  Only consulted for pruning decisions — serving paths
        # (:meth:`load`/:meth:`latest`) always verify the bytes on disk.
        self._kinds: dict[int, str | None] = {}

    # ------------------------------------------------------------------
    # Paths and enumeration
    # ------------------------------------------------------------------
    def path_for(self, version: int) -> Path:
        """Snapshot file path for one version number."""
        return self.directory / f"snapshot-{int(version):08d}.npz"

    def versions(self) -> tuple[int, ...]:
        """All version numbers present on disk, ascending (healthy or not)."""
        if not self.directory.is_dir():
            return ()
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return tuple(sorted(found))

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(
        self,
        *,
        kind: str,
        sigma: np.ndarray,
        kappa: np.ndarray,
        key: str = "",
        solver: str = "",
        convergence: ConvergenceInfo | None = None,
    ) -> RankingSnapshot:
        """Atomically write the next-numbered snapshot and return it.

        The version counter is the max on-disk version plus one, taken
        under the store lock, so concurrent publishers can never collide
        or reuse a number.  The file carries a payload digest; any later
        mutation of the bytes is detected at load time.
        """
        if convergence is None:
            convergence = ConvergenceInfo(
                converged=True, iterations=0, residual=0.0, tolerance=0.0
            )
        with self._lock:
            existing = self.versions()
            version = (existing[-1] if existing else 0) + 1
            snapshot = RankingSnapshot(
                version=version,
                kind=kind,
                sigma=sigma,
                kappa=kappa,
                key=key,
                published_at=self._clock(),
                solver=solver,
                convergence=convergence,
            )
            atomic_savez(
                self.path_for(version),
                format_version=np.int64(_SNAPSHOT_FORMAT_VERSION),
                version=np.int64(version),
                kind=snapshot.kind,
                sigma=snapshot.sigma,
                kappa=snapshot.kappa,
                key=snapshot.key,
                solver=snapshot.solver,
                converged=np.bool_(convergence.converged),
                iterations=np.int64(convergence.iterations),
                residual=np.float64(convergence.residual),
                tolerance=np.float64(convergence.tolerance),
                published_at=np.float64(snapshot.published_at),
                digest=snapshot.digest(),
            )
            self._kinds[version] = snapshot.kind
            self._prune_locked()
        get_registry().counter(
            "repro_snapshot_publishes_total",
            "Snapshots published, by kind",
            labelnames=("kind",),
        ).labels(kind=snapshot.kind).inc()
        _logger.info(
            "published snapshot %d (%s, n=%d)", version, kind, snapshot.n
        )
        return snapshot

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, version: int) -> RankingSnapshot | None:
        """Load and verify one snapshot; ``None`` if missing or unhealthy.

        Verification order: the archive must parse (a torn tmp+rename can
        never produce a half-file, but an external truncation can), the
        format version must match, and the payload digest must recompute
        to the stored value.  Any failure is a warning plus a
        ``repro_snapshot_rejects_total`` count — never an exception, and
        never a served-but-wrong σ.
        """
        path = self.path_for(version)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                stored_format = int(data["format_version"])
                if stored_format != _SNAPSHOT_FORMAT_VERSION:
                    _record_reject("format_version")
                    _logger.warning(
                        "rejecting snapshot %s: format version %d != %d",
                        path,
                        stored_format,
                        _SNAPSHOT_FORMAT_VERSION,
                    )
                    return None
                snapshot = RankingSnapshot(
                    version=int(data["version"]),
                    kind=str(data["kind"]),
                    sigma=np.asarray(data["sigma"], dtype=np.float64),
                    kappa=np.asarray(data["kappa"], dtype=np.float64),
                    key=str(data["key"]),
                    published_at=float(data["published_at"]),
                    solver=str(data["solver"]),
                    convergence=ConvergenceInfo(
                        converged=bool(data["converged"]),
                        iterations=int(data["iterations"]),
                        residual=float(data["residual"]),
                        tolerance=float(data["tolerance"]),
                    ),
                )
                stored_digest = str(data["digest"])
        except Exception as exc:  # noqa: BLE001 - any corruption ⇒ skip
            _record_reject("unreadable")
            _logger.warning("rejecting unreadable snapshot %s (%s)", path, exc)
            return None
        if snapshot.digest() != stored_digest:
            _record_reject("digest")
            _logger.warning(
                "rejecting snapshot %s: payload digest mismatch "
                "(tampered or corrupted)",
                path,
            )
            return None
        return snapshot

    def latest(self, kind: str | None = None) -> RankingSnapshot | None:
        """The newest *healthy* snapshot (of ``kind``, when given).

        Walks versions newest-first, skipping anything :meth:`load`
        rejects — the recovery path after a torn write or a crash
        mid-publish.
        """
        for version in reversed(self.versions()):
            snapshot = self.load(version)
            if snapshot is None:
                continue
            if kind is None or snapshot.kind == kind:
                return snapshot
        return None

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def _prune_locked(self) -> None:
        """Drop all but the newest ``keep`` snapshots of each kind.

        The newest loadable baseline is always retained regardless of
        age: it is the serve-from-baseline fallback, and deleting it
        would silently remove a degraded mode.

        Kinds come from the ``_kinds`` cache where available (publish
        fills it; an unknown version is loaded and verified exactly
        once), so the prune that runs on every publish does not re-read
        and re-digest the whole retained set each time.
        """
        per_kind: dict[str, list[int]] = {}
        unreadable: list[int] = []
        for version in reversed(self.versions()):
            if version not in self._kinds:
                snapshot = self.load(version)
                self._kinds[version] = None if snapshot is None else snapshot.kind
            kind = self._kinds[version]
            if kind is None:
                unreadable.append(version)
                continue
            per_kind.setdefault(kind, []).append(version)
        doomed: list[int] = []
        for versions in per_kind.values():
            doomed.extend(versions[self.keep:])
        # Unreadable files older than the newest healthy snapshot carry
        # no information; clear them so the directory cannot grow
        # unboundedly under repeated torn writes.
        newest_healthy = max(
            (vs[0] for vs in per_kind.values()), default=None
        )
        if newest_healthy is not None:
            doomed.extend(v for v in unreadable if v < newest_healthy)
        for version in doomed:
            try:
                self.path_for(version).unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                pass
            self._kinds.pop(version, None)

    def prune(self) -> None:
        """Apply the retention policy now (publish does this implicitly)."""
        with self._lock:
            self._prune_locked()

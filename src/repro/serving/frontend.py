"""Asyncio front door for the replicated serving fleet.

:class:`FrontDoor` is the single address clients talk to.  It runs an
asyncio TCP server on a dedicated thread, speaks the same
newline-delimited JSON protocol as the replicas, and per request:

* **balances** — reads rotate round-robin over the ACTIVE replicas;
* **batches** — singleton ``score``/``percentile`` reads arriving within
  one linger window coalesce into a single backend request (pre-batched
  ``ids`` requests pass straight through);
* **meets deadlines** — every read carries a per-op deadline budget
  (:class:`~repro.config.SLOParams`); a read that cannot be answered in
  budget returns a typed ``DeadlineExceededError`` response instead of
  hanging its caller, and every read's burn ratio (elapsed / budget) is
  recorded;
* **hedges** — when the first attempt has been outstanding longer than
  the tracked p95 attempt latency (with a configured floor), a backup
  request fires on a second replica; the first response wins, and the
  loser is abandoned to drain in the background (its latency still
  feeds the outlier detector, a transport failure still evicts);
* **bounds retries** — retries and hedges draw from a token-bucket
  retry budget, so a fleet-wide outage degrades into fast typed
  failures instead of a retry storm;
* **evicts** — a replica that times out or drops its connection moves
  ACTIVE → EVICTED and the read retries on another replica; a replica
  that is *alive but slow* (windowed p95 attempt latency above the
  ejection threshold) moves ACTIVE → SLOW.  A background probe loop
  reinstates replicas once they answer health checks (fast enough)
  again — but never before a per-replica exponential backoff floor, so
  a flapping replica cannot thrash the rotation;
* **sheds** — reads beyond ``max_inflight`` are refused at the door
  with an ``AdmissionError``-typed response carrying ``retry_after``,
  keeping queueing delay bounded while deadlines are burning;
* **fans out** — ``health`` aggregates per-replica state, which the
  publisher's telemetry ``/health`` exposes while a fleet runs.

:class:`FleetClient` is the blocking counterpart used by the CLI, the
bench harness, and tests; every request it sends is bounded by an
overall deadline (a stalled or dribbling front door raises
:class:`~repro.errors.DeadlineExceededError` instead of hanging the
caller forever).

See ``docs/architecture.md`` ("SLO guardrails & chaos testing") for the
hedging / ejection / shedding state machine.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Callable, Mapping

import socket

import numpy as np

from ..config import FleetParams, SLOParams
from ..errors import DeadlineExceededError, FleetError
from ..logging_utils import get_logger
from ..observability.metrics import get_registry
from .service import READ_LATENCY_BUCKETS

__all__ = ["FrontDoor", "FleetClient", "REPLICA_STATES"]

_logger = get_logger(__name__)

#: Front-door view of one replica: in rotation, transport-dead, or
#: quarantined as a latency outlier (alive but too slow to serve).
REPLICA_STATES: tuple[str, ...] = ("active", "evicted", "slow")

#: Ops whose singleton form (``{"id": i}``) the front door micro-batches.
_BATCHED_OPS: tuple[str, ...] = ("score", "percentile")

#: Ops subject to deadline budgets and admission-control shedding.
_READ_OPS: tuple[str, ...] = ("score", "percentile", "top_k")

_STREAM_LIMIT = 2**22  # readline cap: a 100k-source σ dump fits

#: Buckets of the deadline-burn histogram (elapsed / budget; > 1 means
#: the deadline was missed).
_BURN_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5, 2.0, 5.0,
)


def _encode(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8") + b"\n"


class _TokenBucket:
    """Retry/hedge budget: ``rate`` tokens/s refill, capped at ``burst``.

    Only touched from the event loop thread — no lock needed.
    """

    def __init__(
        self, rate: float, burst: float, clock: Callable[[], float]
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_take(self, n: float = 1.0) -> bool:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        now = self._clock()
        return min(self.burst, self._tokens + (now - self._last) * self.rate)


class _Backend:
    """Front-door-side record of one replica."""

    __slots__ = (
        "replica_id",
        "address",
        "state",
        "reader",
        "writer",
        "lock",
        "reads",
        "errors",
        "evictions",
        "quarantines",
        "reinstatements",
        "latency",
        "window",
        "flaps",
        "eligible_at",
        "last_version",
        "last_error",
    )

    def __init__(
        self, replica_id: int, address: tuple[str, int], latency, window: int
    ) -> None:
        self.replica_id = int(replica_id)
        self.address = (str(address[0]), int(address[1]))
        self.state = "active"
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.lock = asyncio.Lock()
        self.reads = 0
        self.errors = 0
        self.evictions = 0
        self.quarantines = 0
        self.reinstatements = 0
        self.latency = latency
        self.window: deque[float] = deque(maxlen=int(window))
        self.flaps = 0
        self.eligible_at = 0.0
        self.last_version: int | None = None
        self.last_error: str | None = None

    def close_connection(self) -> None:
        writer, self.writer, self.reader = self.writer, None, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already broken is fine
                pass

    def window_p95(self) -> float | None:
        if not self.window:
            return None
        return float(np.quantile(np.asarray(self.window), 0.95))


class _Batcher:
    """Micro-batches singleton reads of one op into backend requests."""

    def __init__(self, door: "FrontDoor", op: str) -> None:
        self._door = door
        self.op = op
        self._pending: list[tuple[int, asyncio.Future]] = []
        self._flusher: asyncio.Task | None = None

    async def submit(self, node: int) -> dict:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((int(node), future))
        if len(self._pending) >= self._door.params.batch_max_ids:
            if self._flusher is not None:
                self._flusher.cancel()
                self._flusher = None
            self._flush()
        elif self._flusher is None:
            self._flusher = asyncio.create_task(self._linger())
        return await future

    async def _linger(self) -> None:
        try:
            await asyncio.sleep(self._door.params.batch_linger_seconds)
        except asyncio.CancelledError:
            return
        self._flusher = None
        self._flush()

    def _flush(self) -> None:
        batch, self._pending = self._pending, []
        if batch:
            asyncio.get_running_loop().create_task(self._send(batch))

    async def _send(self, batch: list[tuple[int, asyncio.Future]]) -> None:
        ids = [node for node, _ in batch]
        response = await self._door.backend_read(
            {"op": self.op, "ids": ids}, reads=len(ids), op=self.op
        )
        self._door.record_batch(len(ids))
        if response.get("ok"):
            values = response.get("values", ())
            meta = {
                key: response.get(key)
                for key in ("version", "kind", "age", "replica")
            }
            for (node, future), value in zip(batch, values):
                if not future.done():
                    future.set_result(
                        {"ok": True, "value": value, "batch": len(ids), **meta}
                    )
            return
        if len(batch) > 1 and response.get("error") in (
            "NodeIndexError",
            "GraphError",
        ):
            # One bad id must not poison its batch-mates: split and
            # retry each id alone so only the culprit gets the error.
            for node, future in batch:
                single = await self._door.backend_read(
                    {"op": self.op, "ids": [node]}, reads=1, op=self.op
                )
                if not future.done():
                    if single.get("ok"):
                        future.set_result(
                            {
                                "ok": True,
                                "value": single["values"][0],
                                "batch": 1,
                                **{
                                    key: single.get(key)
                                    for key in ("version", "kind", "age", "replica")
                                },
                            }
                        )
                    else:
                        future.set_result(single)
            return
        for _, future in batch:
            if not future.done():
                future.set_result(response)


class FrontDoor:
    """Load-balancing, batching, SLO-guarded fleet entry point.

    Parameters
    ----------
    replicas:
        Initial routing table: ``replica_id -> (host, port)``.
    params:
        Protocol knobs (:class:`~repro.config.FleetParams`); the
        listener binds ``params.host``:``params.frontend_port``.
    slo:
        Per-op deadline budgets, hedging, retry-budget, ejection, and
        shedding policy (:class:`~repro.config.SLOParams`).  The
        defaults are generous enough to be invisible on a healthy
        fleet.

    ``start()`` raises the asyncio loop on a daemon thread and blocks
    until the listener is bound; every public method is safe to call
    from any thread.
    """

    def __init__(
        self,
        replicas: Mapping[int, tuple[str, int]],
        params: FleetParams | None = None,
        *,
        slo: SLOParams | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.params = params or FleetParams()
        self.slo = slo or SLOParams()
        self._clock = clock
        registry = get_registry()
        self._reads_total = registry.counter(
            "repro_fleet_reads_total",
            "Front-door reads, by outcome",
            labelnames=("status",),
        )
        self._evictions_total = registry.counter(
            "repro_fleet_evictions_total",
            "Replicas evicted from rotation after transport errors",
        )
        self._slow_ejections_total = registry.counter(
            "repro_fleet_slow_ejections_total",
            "Replicas quarantined as latency outliers (slow, not dead)",
        )
        self._reinstatements_total = registry.counter(
            "repro_fleet_reinstatements_total",
            "Evicted/quarantined replicas returned to rotation",
        )
        self._retries_total = registry.counter(
            "repro_fleet_retries_total",
            "Reads re-attempted on another replica",
        )
        self._hedges_total = registry.counter(
            "repro_fleet_hedges_total",
            "Hedged backup reads, by outcome (fired/win/loss)",
            labelnames=("outcome",),
        )
        self._shed_total = registry.counter(
            "repro_fleet_shed_total",
            "Reads refused by front-door admission control (load shedding)",
        )
        self._deadline_miss_total = registry.counter(
            "repro_fleet_deadline_misses_total",
            "Reads that burned through their per-op deadline budget",
            labelnames=("op",),
        )
        self._deadline_burn = registry.histogram(
            "repro_fleet_deadline_burn_ratio",
            "Elapsed / deadline-budget ratio per read, by op",
            labelnames=("op",),
            buckets=_BURN_BUCKETS,
        )
        self._retry_exhausted_total = registry.counter(
            "repro_fleet_retry_budget_exhausted_total",
            "Retries/hedges skipped because the retry token bucket was empty",
        )
        self._batch_flushes_total = registry.counter(
            "repro_fleet_batch_flushes_total",
            "Micro-batches flushed to replicas",
        )
        self._active_gauge = registry.gauge(
            "repro_fleet_replicas_active",
            "Replicas currently in rotation",
        )
        self._inflight_gauge = registry.gauge(
            "repro_fleet_inflight",
            "Reads currently in flight at the front door",
        )
        self._backend_seconds = registry.histogram(
            "repro_fleet_backend_seconds",
            "Per-replica backend round-trip latency",
            labelnames=("replica",),
            buckets=READ_LATENCY_BUCKETS,
        )
        self._backends: dict[int, _Backend] = {
            rid: self._new_backend(rid, addr)
            for rid, addr in sorted(replicas.items())
        }
        if not self._backends:
            raise FleetError("front door needs at least one replica")
        self._rr = 0
        self._requests = 0
        self._reads_ok = 0
        self._reads_failed = 0
        self._reads_rejected = 0
        self._reads_shed = 0
        self._reads_deadline = 0
        self._batched_reads = 0
        self._inflight = 0
        self._hedges_fired = 0
        self._hedge_wins = 0
        self._deadline_misses: dict[str, int] = {}
        self._retry_budget = _TokenBucket(
            self.slo.retry_budget_per_second,
            self.slo.retry_budget_burst,
            clock,
        )
        self._op_latency: dict[str, deque[float]] = {
            op: deque(maxlen=256) for op in _READ_OPS
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None
        self._batchers: dict[str, _Batcher] = {}
        self._active_gauge.set(len(self._backends))

    def _new_backend(self, replica_id: int, address: tuple[str, int]) -> _Backend:
        return _Backend(
            replica_id,
            address,
            self._backend_seconds.labels(replica=str(replica_id)),
            self.slo.eject_window,
        )

    # ------------------------------------------------------------------
    # Lifecycle (called from the host thread)
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the listener."""
        if self._address is None:
            raise FleetError("front door is not started")
        return self._address

    def start(self) -> "FrontDoor":
        """Raise the loop thread and bind the listener (idempotent)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-front-door", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise FleetError("front door failed to start within 30s")
        if self._startup_error is not None:
            raise FleetError(
                f"front door failed to bind: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        """Close the listener and join the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if thread is not None:
            thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        for op in _BATCHED_OPS:
            self._batchers[op] = _Batcher(self, op)
        try:
            self._server = await asyncio.start_server(
                self._serve_client,
                self.params.host,
                self.params.frontend_port,
                limit=_STREAM_LIMIT,
            )
            self._address = self._server.sockets[0].getsockname()[:2]
        except Exception as exc:  # noqa: BLE001 - surface to start()
            self._startup_error = exc
            self._started.set()
            return
        probe = asyncio.create_task(self._probe_loop())
        self._started.set()
        _logger.info("front door listening on %s:%d", *self._address)
        try:
            await self._stop_event.wait()
        finally:
            probe.cancel()
            self._server.close()
            await self._server.wait_closed()
            for backend in self._backends.values():
                backend.close_connection()

    # ------------------------------------------------------------------
    # Client protocol
    # ------------------------------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = json.loads(line)
                except (ValueError, UnicodeDecodeError) as exc:
                    response = {
                        "ok": False,
                        "error": "FleetError",
                        "detail": f"malformed request: {exc}",
                    }
                else:
                    response = await self._dispatch(message)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            writer.close()

    async def _dispatch(self, message: dict) -> dict:
        self._requests += 1
        op = message.get("op")
        try:
            if op in _READ_OPS:
                if op in _BATCHED_OPS and "ids" in message:
                    reads = len(message["ids"])
                elif op == "top_k":
                    reads = max(int(message.get("k", 0)), 1)
                else:
                    reads = 1
                shed = self._maybe_shed(op, reads)
                if shed is not None:
                    return shed
                self._inflight += 1
                self._inflight_gauge.set(self._inflight)
                try:
                    return await self._dispatch_read(message, op, reads)
                finally:
                    self._inflight -= 1
                    self._inflight_gauge.set(self._inflight)
            if op == "health":
                return await self._fanout_health()
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            return {
                "ok": False,
                "error": "FleetError",
                "detail": f"unknown op {op!r}",
            }
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
            }

    async def _dispatch_read(self, message: dict, op: str, reads: int) -> dict:
        if op in _BATCHED_OPS:
            if "ids" in message:
                ids = [int(i) for i in message["ids"]]
                return await self.backend_read(
                    {"op": op, "ids": ids}, reads=reads, op=op
                )
            return await self._batchers[op].submit(int(message["id"]))
        k = int(message.get("k", 0))
        return await self.backend_read(
            {"op": "top_k", "k": k}, reads=reads, op="top_k"
        )

    def _maybe_shed(self, op: str, reads: int) -> dict | None:
        """Admission control: refuse the read when the door is saturated."""
        if self._inflight < self.slo.max_inflight:
            return None
        self._shed_total.inc()
        self._reads_shed += reads
        self._reads_total.labels(status="shed").inc(reads)
        return {
            "ok": False,
            "error": "AdmissionError",
            "reason": "overload",
            "retry_after": self.slo.shed_retry_after_seconds,
            "detail": (
                f"front door is saturated ({self._inflight} reads in "
                f"flight >= max_inflight {self.slo.max_inflight}); "
                f"retry after {self.slo.shed_retry_after_seconds:.3f}s"
            ),
        }

    # ------------------------------------------------------------------
    # Backend routing
    # ------------------------------------------------------------------
    def _pick(self, exclude: set[int]) -> _Backend | None:
        backends = sorted(self._backends)
        for offset in range(len(backends)):
            rid = backends[(self._rr + offset) % len(backends)]
            backend = self._backends[rid]
            if backend.state == "active" and rid not in exclude:
                self._rr = (self._rr + offset + 1) % len(backends)
                return backend
        return None

    def _hedge_after(self, op: str) -> float:
        """Outstanding time after which a backup request may fire."""
        samples = self._op_latency.get(op)
        threshold = self.slo.hedge_threshold_seconds
        if samples is not None and len(samples) >= self.slo.hedge_min_samples:
            tracked = float(
                np.quantile(np.asarray(samples), self.slo.hedge_quantile)
            )
            threshold = max(threshold, tracked)
        return threshold

    def _note_latency(self, backend: _Backend, seconds: float, op: str) -> None:
        """Record one completed attempt and apply latency-outlier ejection."""
        backend.latency.observe(seconds)
        backend.window.append(seconds)
        samples = self._op_latency.get(op)
        if samples is not None:
            samples.append(seconds)
        if (
            backend.state == "active"
            and len(backend.window) >= self.slo.eject_min_samples
        ):
            p95 = backend.window_p95()
            if p95 is not None and p95 > self.slo.eject_latency_seconds:
                self._quarantine(
                    backend,
                    f"latency outlier: windowed p95 {p95 * 1e3:.1f}ms > "
                    f"{self.slo.eject_latency_seconds * 1e3:.1f}ms",
                )

    async def backend_read(
        self, payload: dict, *, reads: int, op: str | None = None
    ) -> dict:
        """Send one read to some healthy replica under its deadline budget.

        A transport failure (timeout, refused/broken connection) evicts
        the replica and retries elsewhere; a replica still waiting for
        its first snapshot (``ServingError``) is retried elsewhere
        without eviction; any other replica-reported error (e.g. an
        out-of-range id) is the *request's* fault and is returned as-is.
        Retries and hedges draw from the token-bucket retry budget; the
        whole read is bounded by the per-op deadline, after which a
        typed ``DeadlineExceededError`` response is returned.
        """
        op = op or str(payload.get("op") or "score")
        budget = self.slo.deadline_for(op)
        started = self._clock()
        line = _encode(payload)
        tried: set[int] = set()
        last_error: str | None = None
        attempts = max(self.params.max_retries, len(self._backends))
        for attempt in range(attempts):
            remaining = budget - (self._clock() - started)
            if remaining <= 0:
                return self._deadline_missed(
                    op, budget, started, reads, last_error
                )
            if attempt > 0 and not self._retry_budget.try_take():
                self._retry_exhausted_total.inc()
                last_error = (
                    f"{last_error or 'transport failure'} "
                    "[retry budget exhausted]"
                )
                break
            backend = self._pick(tried)
            if backend is None:
                break
            response, winner, detail = await self._attempt_with_hedge(
                backend, line, op, remaining, tried
            )
            if response is None or winner is None:
                last_error = detail or last_error
                continue
            if response.get("ok"):
                winner.reads += reads
                winner.last_version = response.get(
                    "version", winner.last_version
                )
                self._reads_ok += reads
                self._reads_total.labels(status="ok").inc(reads)
                self._observe_burn(op, started, budget)
                response.setdefault("replica", winner.replica_id)
                return response
            if response.get("error") == "ServingError":
                # Replica is up but empty (no snapshot adopted yet):
                # another replica may well have adopted — retry there.
                tried.add(winner.replica_id)
                last_error = response.get("detail")
                self._retries_total.inc()
                continue
            winner.errors += 1
            self._reads_rejected += reads
            self._reads_total.labels(status="rejected").inc(reads)
            self._observe_burn(op, started, budget)
            response.setdefault("replica", winner.replica_id)
            return response
        if budget - (self._clock() - started) <= 0:
            return self._deadline_missed(op, budget, started, reads, last_error)
        self._reads_failed += reads
        self._reads_total.labels(status="error").inc(reads)
        self._observe_burn(op, started, budget)
        return {
            "ok": False,
            "error": "FleetError",
            "detail": (
                "read failed on every replica in rotation"
                + (f" (last: {last_error})" if last_error else "")
            ),
        }

    async def _attempt_with_hedge(
        self,
        primary: _Backend,
        line: bytes,
        op: str,
        remaining: float,
        tried: set[int],
    ) -> tuple[dict | None, _Backend | None, str | None]:
        """Race one primary leg (plus at most one hedged backup).

        Returns ``(response, winner, detail)``; ``response is None``
        means every leg failed or timed out at the transport level
        (failing backends were evicted and added to ``tried``) or the
        attempt ran out of deadline budget — the caller decides which
        by re-checking the budget.
        """
        attempt_start = self._clock()
        budget_end = attempt_start + remaining
        hedge_at = attempt_start + self._hedge_after(op)
        transport_timeout = self.params.request_timeout_seconds
        primary_task = asyncio.ensure_future(self._roundtrip(primary, line))
        legs: dict[asyncio.Task, tuple[_Backend, float]] = {
            primary_task: (primary, attempt_start)
        }
        hedged = False
        detail: str | None = None
        while legs:
            now = self._clock()
            if now >= budget_end:
                # Out of deadline budget mid-attempt.  Legs that also
                # exceeded the transport timeout are genuine transport
                # failures (evict); the rest are cancelled without
                # blame — their connections close so no late response
                # can desync the per-replica protocol.
                for task, (backend, leg_start) in legs.items():
                    task.cancel()
                    if now - leg_start >= transport_timeout:
                        self._fail_leg(backend, "transport timeout", tried)
                return None, None, detail or "deadline budget exhausted"
            events = [budget_end]
            events.extend(
                leg_start + transport_timeout
                for _, leg_start in legs.values()
            )
            if not hedged:
                events.append(hedge_at)
            done, _ = await asyncio.wait(
                set(legs),
                timeout=max(min(events) - now, 0.0),
                return_when=asyncio.FIRST_COMPLETED,
            )
            now = self._clock()
            winner: tuple[dict, _Backend] | None = None
            for task in done:
                backend, leg_start = legs.pop(task)
                exc = task.exception()
                if exc is not None:
                    detail = f"{type(exc).__name__}: {exc}"
                    self._fail_leg(backend, detail, tried)
                    continue
                self._note_latency(backend, now - leg_start, op)
                if winner is None:
                    winner = (task.result(), backend)
                    if hedged:
                        outcome = "loss" if task is primary_task else "win"
                        self._hedges_total.labels(outcome=outcome).inc()
                        if outcome == "win":
                            self._hedge_wins += 1
            if winner is not None:
                for task, (backend, leg_start) in legs.items():
                    self._finish_leg_later(task, backend, leg_start, op)
                return winner[0], winner[1], None
            # Per-leg transport timeouts (a leg can outlive several
            # wait() wakeups when the budget allows).
            for task in list(legs):
                backend, leg_start = legs[task]
                if now - leg_start >= transport_timeout:
                    task.cancel()
                    del legs[task]
                    detail = (
                        f"TimeoutError: replica {backend.replica_id} "
                        f"exceeded {transport_timeout:.1f}s"
                    )
                    self._fail_leg(backend, detail, tried)
            # Hedge trigger: the primary is slow, a second replica is
            # available, and the retry budget allows the extra load.
            if not hedged and now >= hedge_at and legs:
                hedged = True
                exclude = tried | {b.replica_id for b, _ in legs.values()}
                backup = self._pick(exclude)
                if backup is not None and self._retry_budget.try_take():
                    self._hedges_total.labels(outcome="fired").inc()
                    self._hedges_fired += 1
                    task = asyncio.ensure_future(
                        self._roundtrip(backup, line)
                    )
                    legs[task] = (backup, now)
        return None, None, detail

    def _finish_leg_later(
        self, task: asyncio.Task, backend: _Backend, leg_start: float, op: str
    ) -> None:
        """Drain a losing race leg in the background.

        The race already has its winner, but abandoning the loser by
        cancellation would throw away exactly the observation the
        outlier detector needs (a slow replica that always loses its
        hedge would never fill its latency window) and would churn the
        connection.  Instead the leg runs to completion under what is
        left of its transport timeout: its latency is recorded — and
        can trigger quarantine — a transport failure still evicts, and
        the response is consumed so the connection stays in sync.
        """

        async def finish() -> None:
            timeout = max(
                leg_start
                + self.params.request_timeout_seconds
                - self._clock(),
                0.01,
            )
            try:
                await asyncio.wait_for(task, timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - loser accounting only
                backend.close_connection()
                self._evict(backend, f"{type(exc).__name__}: {exc}")
                return
            self._note_latency(backend, self._clock() - leg_start, op)

        asyncio.ensure_future(finish())

    def _fail_leg(
        self, backend: _Backend, detail: str, tried: set[int]
    ) -> None:
        """Account one transport-failed attempt leg."""
        self._evict(backend, detail)
        tried.add(backend.replica_id)
        self._retries_total.inc()

    def _observe_burn(self, op: str, started: float, budget: float) -> None:
        self._deadline_burn.labels(op=op).observe(
            (self._clock() - started) / budget
        )

    def _deadline_missed(
        self,
        op: str,
        budget: float,
        started: float,
        reads: int,
        last_error: str | None,
    ) -> dict:
        elapsed = self._clock() - started
        self._deadline_misses[op] = self._deadline_misses.get(op, 0) + 1
        self._deadline_miss_total.labels(op=op).inc()
        self._reads_deadline += reads
        self._reads_total.labels(status="deadline").inc(reads)
        self._deadline_burn.labels(op=op).observe(elapsed / budget)
        return {
            "ok": False,
            "error": "DeadlineExceededError",
            "op": op,
            "deadline_seconds": budget,
            "elapsed_seconds": elapsed,
            "retry_after": self.slo.shed_retry_after_seconds,
            "detail": (
                f"{op} burned its {budget:.3f}s deadline budget "
                f"({elapsed:.3f}s elapsed)"
                + (f"; last error: {last_error}" if last_error else "")
            ),
        }

    async def _roundtrip(self, backend: _Backend, line: bytes) -> dict:
        async with backend.lock:
            try:
                if backend.writer is None:
                    backend.reader, backend.writer = await asyncio.wait_for(
                        asyncio.open_connection(
                            *backend.address, limit=_STREAM_LIMIT
                        ),
                        timeout=self.params.connect_timeout_seconds,
                    )
                backend.writer.write(line)
                await backend.writer.drain()
                raw = await backend.reader.readline()
            except asyncio.CancelledError:
                # Cancelled mid-exchange (hedge loser, deadline burn):
                # a response may still be in flight, so the connection
                # must die or the next request would read a stale line.
                backend.close_connection()
                raise
        if not raw:
            raise FleetError(
                "replica closed the connection", replica=backend.replica_id
            )
        return json.loads(raw)

    # ------------------------------------------------------------------
    # Rotation state machine
    # ------------------------------------------------------------------
    def _set_active_gauge(self) -> None:
        self._active_gauge.set(
            sum(1 for b in self._backends.values() if b.state == "active")
        )

    def _remove_from_rotation(
        self, backend: _Backend, state: str, detail: str
    ) -> None:
        """Shared eviction/quarantine bookkeeping incl. backoff floor."""
        backend.close_connection()
        backend.state = state
        backend.errors += 1
        backend.last_error = detail
        backend.flaps += 1
        backoff = min(
            self.slo.reinstate_backoff_seconds * 2 ** (backend.flaps - 1),
            self.slo.reinstate_backoff_max_seconds,
        )
        backend.eligible_at = self._clock() + backoff
        backend.window.clear()
        self._set_active_gauge()

    def _evict(self, backend: _Backend, detail: str) -> None:
        backend.close_connection()
        if backend.state != "active":
            return
        self._remove_from_rotation(backend, "evicted", detail)
        backend.evictions += 1
        self._evictions_total.inc()
        _logger.warning(
            "evicted replica %d (%s:%d): %s",
            backend.replica_id,
            *backend.address,
            detail,
        )

    def _quarantine(self, backend: _Backend, detail: str) -> None:
        if backend.state != "active":
            return
        self._remove_from_rotation(backend, "slow", detail)
        backend.quarantines += 1
        self._slow_ejections_total.inc()
        _logger.warning(
            "quarantined slow replica %d (%s:%d): %s",
            backend.replica_id,
            *backend.address,
            detail,
        )

    def _reinstate(self, backend: _Backend) -> None:
        if backend.state == "active":
            return
        backend.state = "active"
        backend.reinstatements += 1
        backend.last_error = None
        backend.window.clear()
        self._reinstatements_total.inc()
        self._set_active_gauge()
        _logger.info(
            "reinstated replica %d (%s:%d)",
            backend.replica_id,
            *backend.address,
        )

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.params.probe_interval_seconds)
            for backend in list(self._backends.values()):
                if backend.state == "active":
                    continue
                if self._clock() < backend.eligible_at:
                    # Flap damping: however healthy the probes look, an
                    # ejected replica sits out its backoff floor first.
                    continue
                probe_start = self._clock()
                try:
                    response = await asyncio.wait_for(
                        self._roundtrip(backend, _encode({"op": "health"})),
                        timeout=self.params.request_timeout_seconds,
                    )
                except Exception:  # noqa: BLE001 - still down
                    backend.close_connection()
                    continue
                probe_seconds = self._clock() - probe_start
                if not (response.get("ok") and response.get("ready")):
                    continue
                if (
                    backend.state == "slow"
                    and probe_seconds > self.slo.eject_latency_seconds
                ):
                    # Alive, but still answering slower than the
                    # ejection threshold — not welcome back yet.
                    backend.last_error = (
                        f"probe still slow: {probe_seconds * 1e3:.1f}ms"
                    )
                    continue
                self._reinstate(backend)

    async def _fanout_health(self) -> dict:
        replicas: dict[str, dict] = {}
        for rid in sorted(self._backends):
            backend = self._backends[rid]
            entry: dict = {
                "state": backend.state,
                "address": list(backend.address),
                "reads": backend.reads,
                "errors": backend.errors,
                "evictions": backend.evictions,
                "quarantines": backend.quarantines,
                "reinstatements": backend.reinstatements,
            }
            if backend.state == "active":
                try:
                    response = await asyncio.wait_for(
                        self._roundtrip(backend, _encode({"op": "health"})),
                        timeout=self.params.request_timeout_seconds,
                    )
                except Exception as exc:  # noqa: BLE001 - evict on probe
                    self._evict(backend, f"{type(exc).__name__}: {exc}")
                    entry["state"] = backend.state
                    entry["error"] = str(exc)
                else:
                    if response.get("ok"):
                        entry.update(
                            {
                                k: v
                                for k, v in response.items()
                                if k not in ("ok",)
                            }
                        )
                    else:
                        entry["error"] = response.get("detail")
            elif backend.last_error:
                entry["error"] = backend.last_error
            replicas[str(rid)] = entry
        return {"ok": True, "replicas": replicas}

    def _update_replica_on_loop(
        self, replica_id: int, address: tuple[str, int]
    ) -> None:
        old = self._backends.get(replica_id)
        backend = self._new_backend(replica_id, address)
        if old is not None:
            old.close_connection()
            backend.reads = old.reads
            backend.errors = old.errors
            backend.evictions = old.evictions
            backend.quarantines = old.quarantines
            backend.reinstatements = old.reinstatements + (
                1 if old.state != "active" else 0
            )
            if old.state != "active":
                self._reinstatements_total.inc()
        self._backends[replica_id] = backend
        self._set_active_gauge()
        _logger.info(
            "routing replica %d to %s:%d", replica_id, *backend.address
        )

    # ------------------------------------------------------------------
    # Thread-safe host surface
    # ------------------------------------------------------------------
    def _require_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            raise FleetError("front door is not started")
        return loop

    def request(self, payload: dict, *, timeout: float | None = None) -> dict:
        """One request through the door's own dispatcher, from any thread."""
        loop = self._require_loop()
        future = asyncio.run_coroutine_threadsafe(
            self._dispatch(dict(payload)), loop
        )
        budget = (
            timeout
            if timeout is not None
            else self.params.request_timeout_seconds
            * max(self.params.max_retries, len(self._backends))
            + 5.0
        )
        return future.result(timeout=budget)

    def update_replica(self, replica_id: int, address: tuple[str, int]) -> None:
        """Re-route one replica id to a new address (after a restart)."""
        self._require_loop().call_soon_threadsafe(
            self._update_replica_on_loop, int(replica_id), tuple(address)
        )

    def health(self) -> dict:
        """Per-replica fan-out health (the ``/health`` replica block)."""
        return self.request({"op": "health"}).get("replicas", {})

    def record_batch(self, size: int) -> None:
        """Account one flushed micro-batch (called by the batchers)."""
        self._batch_flushes_total.inc()
        self._batched_reads += size

    def stats(self) -> dict:
        """Door-local counters, SLO state, and per-replica latency."""
        now = self._clock()
        replicas = {}
        for rid in sorted(self._backends):
            backend = self._backends[rid]
            p95 = backend.window_p95()
            replicas[str(rid)] = {
                "state": backend.state,
                "address": list(backend.address),
                "reads": backend.reads,
                "errors": backend.errors,
                "evictions": backend.evictions,
                "quarantines": backend.quarantines,
                "reinstatements": backend.reinstatements,
                "flaps": backend.flaps,
                "eligible_in_seconds": (
                    0.0
                    if backend.state == "active"
                    else max(backend.eligible_at - now, 0.0)
                ),
                "last_version": backend.last_version,
                "latency": {
                    "count": backend.latency.count,
                    "p50_seconds": backend.latency.quantile(0.5),
                    "p99_seconds": backend.latency.quantile(0.99),
                    "window_p95_seconds": p95,
                },
            }
        return {
            "address": list(self._address) if self._address else None,
            "requests_total": self._requests,
            "reads": {
                "ok": self._reads_ok,
                "failed": self._reads_failed,
                "rejected": self._reads_rejected,
                "shed": self._reads_shed,
                "deadline_missed": self._reads_deadline,
            },
            "slo": {
                "deadline_seconds": self.slo.deadline_seconds,
                "deadline_misses": dict(sorted(self._deadline_misses.items())),
                "hedges": {
                    "fired": self._hedges_fired,
                    "wins": self._hedge_wins,
                    "losses": self._hedges_fired - self._hedge_wins,
                    "threshold_seconds": self.slo.hedge_threshold_seconds,
                },
                "shedding": {
                    "shed_total": int(self._shed_total.value),
                    "max_inflight": self.slo.max_inflight,
                    "inflight": self._inflight,
                    "retry_after_seconds": self.slo.shed_retry_after_seconds,
                },
                "retry_budget": {
                    "tokens": self._retry_budget.tokens,
                    "per_second": self.slo.retry_budget_per_second,
                    "burst": self.slo.retry_budget_burst,
                    "exhausted_total": int(self._retry_exhausted_total.value),
                },
                "ejection": {
                    "latency_seconds": self.slo.eject_latency_seconds,
                    "slow_ejections_total": int(
                        self._slow_ejections_total.value
                    ),
                    "backoff_floor_seconds": (
                        self.slo.reinstate_backoff_seconds
                    ),
                },
            },
            "batching": {
                "flushes": int(self._batch_flushes_total.value),
                "batched_reads": self._batched_reads,
                "max_ids": self.params.batch_max_ids,
                "linger_seconds": self.params.batch_linger_seconds,
            },
            "replicas": replicas,
        }


class FleetClient:
    """Blocking newline-JSON client for the front door (or a replica).

    One TCP connection, one in-flight request at a time — use one
    client per thread.  Usable as a context manager.

    Every request is bounded by an overall deadline (``deadline_seconds``,
    defaulting to ``timeout``): a front door that stalls — or dribbles
    bytes forever without completing a frame — raises a typed
    :class:`~repro.errors.DeadlineExceededError` instead of hanging the
    caller.  After a deadline error the connection is dropped (a late
    response could otherwise desync request/response pairing) and
    transparently re-established on the next request.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        timeout: float = 30.0,
        deadline_seconds: float | None = None,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self._timeout = float(timeout)
        self.deadline_seconds = float(
            timeout if deadline_seconds is None else deadline_seconds
        )
        if self.deadline_seconds <= 0:
            raise FleetError(
                f"deadline_seconds must be positive, "
                f"got {self.deadline_seconds!r}"
            )
        self._sock: socket.socket | None = socket.create_connection(
            self.address, timeout=self._timeout
        )
        self._buf = bytearray()
        self._lock = threading.Lock()

    def _ensure_connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                self.address, timeout=self._timeout
            )
            self._buf.clear()
        return self._sock

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        self._buf.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def request(
        self, payload: dict, *, deadline_seconds: float | None = None
    ) -> dict:
        """Send one request and block for its response, deadline-bounded."""
        budget = (
            self.deadline_seconds
            if deadline_seconds is None
            else float(deadline_seconds)
        )
        started = time.monotonic()
        deadline = started + budget
        op = payload.get("op")
        with self._lock:
            sock = self._ensure_connection()
            try:
                sock.settimeout(budget)
                sock.sendall(_encode(payload))
                line = self._read_line(sock, deadline, budget, op, started)
            except TimeoutError:
                self._drop_connection()
                raise DeadlineExceededError(
                    f"no response from {self.address} within {budget:.3f}s",
                    op=op,
                    deadline_seconds=budget,
                    elapsed_seconds=time.monotonic() - started,
                ) from None
            except DeadlineExceededError:
                self._drop_connection()
                raise
            except OSError:
                self._drop_connection()
                raise
        return json.loads(line)

    def _read_line(
        self,
        sock: socket.socket,
        deadline: float,
        budget: float,
        op: str | None,
        started: float,
    ) -> bytes:
        """One complete frame, or :class:`DeadlineExceededError`.

        Reads with a per-``recv`` timeout of the *remaining* budget, so
        a server dribbling one byte per timeout window cannot extend
        the overall wait past the deadline.
        """
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = bytes(self._buf[: newline + 1])
                del self._buf[: newline + 1]
                return line
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"incomplete response from {self.address} after "
                    f"{budget:.3f}s deadline",
                    op=op,
                    deadline_seconds=budget,
                    elapsed_seconds=time.monotonic() - started,
                )
            sock.settimeout(remaining)
            chunk = sock.recv(65536)
            if not chunk:
                raise FleetError(f"{self.address} closed the connection")
            self._buf.extend(chunk)

    # -- convenience wrappers ------------------------------------------------
    def score(self, ids: list[int]) -> dict:
        """Batched σ read."""
        return self.request({"op": "score", "ids": [int(i) for i in ids]})

    def score_one(self, node: int) -> dict:
        """Singleton σ read (micro-batched by the front door)."""
        return self.request({"op": "score", "id": int(node)})

    def percentile(self, ids: list[int]) -> dict:
        """Batched percentile read."""
        return self.request({"op": "percentile", "ids": [int(i) for i in ids]})

    def percentile_one(self, node: int) -> dict:
        """Singleton percentile read (micro-batched)."""
        return self.request({"op": "percentile", "id": int(node)})

    def top_k(self, k: int) -> dict:
        """Top-k read."""
        return self.request({"op": "top_k", "k": int(k)})

    def health(self) -> dict:
        """Fan-out health document."""
        return self.request({"op": "health"})

    def stats(self) -> dict:
        """Front-door counters."""
        return self.request({"op": "stats"})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

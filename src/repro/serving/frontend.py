"""Asyncio front door for the replicated serving fleet.

:class:`FrontDoor` is the single address clients talk to.  It runs an
asyncio TCP server on a dedicated thread, speaks the same
newline-delimited JSON protocol as the replicas, and per request:

* **balances** — reads rotate round-robin over the ACTIVE replicas;
* **batches** — singleton ``score``/``percentile`` reads arriving within
  one linger window coalesce into a single backend request (pre-batched
  ``ids`` requests pass straight through);
* **evicts** — a replica that times out or drops its connection moves
  ACTIVE → EVICTED, the read retries on another replica (so one dead
  replica costs latency, never a failed read), and a background probe
  loop reinstates the replica once it answers health checks again;
* **fans out** — ``health`` aggregates per-replica state, which the
  publisher's telemetry ``/health`` exposes while a fleet runs.

:class:`FleetClient` is the blocking counterpart used by the CLI, the
bench harness, and tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Callable, Mapping

import socket

from ..config import FleetParams
from ..errors import FleetError
from ..logging_utils import get_logger
from ..observability.metrics import get_registry
from .service import READ_LATENCY_BUCKETS

__all__ = ["FrontDoor", "FleetClient", "REPLICA_STATES"]

_logger = get_logger(__name__)

#: Front-door view of one replica: in rotation, or awaiting reinstatement.
REPLICA_STATES: tuple[str, ...] = ("active", "evicted")

#: Ops whose singleton form (``{"id": i}``) the front door micro-batches.
_BATCHED_OPS: tuple[str, ...] = ("score", "percentile")

_STREAM_LIMIT = 2**22  # readline cap: a 100k-source σ dump fits


def _encode(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8") + b"\n"


class _Backend:
    """Front-door-side record of one replica."""

    __slots__ = (
        "replica_id",
        "address",
        "state",
        "reader",
        "writer",
        "lock",
        "reads",
        "errors",
        "evictions",
        "reinstatements",
        "latency",
        "last_version",
        "last_error",
    )

    def __init__(
        self, replica_id: int, address: tuple[str, int], latency
    ) -> None:
        self.replica_id = int(replica_id)
        self.address = (str(address[0]), int(address[1]))
        self.state = "active"
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.lock = asyncio.Lock()
        self.reads = 0
        self.errors = 0
        self.evictions = 0
        self.reinstatements = 0
        self.latency = latency
        self.last_version: int | None = None
        self.last_error: str | None = None

    def close_connection(self) -> None:
        writer, self.writer, self.reader = self.writer, None, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already broken is fine
                pass


class _Batcher:
    """Micro-batches singleton reads of one op into backend requests."""

    def __init__(self, door: "FrontDoor", op: str) -> None:
        self._door = door
        self.op = op
        self._pending: list[tuple[int, asyncio.Future]] = []
        self._flusher: asyncio.Task | None = None

    async def submit(self, node: int) -> dict:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((int(node), future))
        if len(self._pending) >= self._door.params.batch_max_ids:
            if self._flusher is not None:
                self._flusher.cancel()
                self._flusher = None
            self._flush()
        elif self._flusher is None:
            self._flusher = asyncio.create_task(self._linger())
        return await future

    async def _linger(self) -> None:
        try:
            await asyncio.sleep(self._door.params.batch_linger_seconds)
        except asyncio.CancelledError:
            return
        self._flusher = None
        self._flush()

    def _flush(self) -> None:
        batch, self._pending = self._pending, []
        if batch:
            asyncio.get_running_loop().create_task(self._send(batch))

    async def _send(self, batch: list[tuple[int, asyncio.Future]]) -> None:
        ids = [node for node, _ in batch]
        response = await self._door.backend_read(
            {"op": self.op, "ids": ids}, reads=len(ids)
        )
        self._door.record_batch(len(ids))
        if response.get("ok"):
            values = response.get("values", ())
            meta = {
                key: response.get(key)
                for key in ("version", "kind", "age", "replica")
            }
            for (node, future), value in zip(batch, values):
                if not future.done():
                    future.set_result(
                        {"ok": True, "value": value, "batch": len(ids), **meta}
                    )
            return
        if len(batch) > 1 and response.get("error") in (
            "NodeIndexError",
            "GraphError",
        ):
            # One bad id must not poison its batch-mates: split and
            # retry each id alone so only the culprit gets the error.
            for node, future in batch:
                single = await self._door.backend_read(
                    {"op": self.op, "ids": [node]}, reads=1
                )
                if not future.done():
                    if single.get("ok"):
                        future.set_result(
                            {
                                "ok": True,
                                "value": single["values"][0],
                                "batch": 1,
                                **{
                                    key: single.get(key)
                                    for key in ("version", "kind", "age", "replica")
                                },
                            }
                        )
                    else:
                        future.set_result(single)
            return
        for _, future in batch:
            if not future.done():
                future.set_result(response)


class FrontDoor:
    """Load-balancing, batching, health-evicting fleet entry point.

    Parameters
    ----------
    replicas:
        Initial routing table: ``replica_id -> (host, port)``.
    params:
        Protocol knobs (:class:`~repro.config.FleetParams`); the
        listener binds ``params.host``:``params.frontend_port``.

    ``start()`` raises the asyncio loop on a daemon thread and blocks
    until the listener is bound; every public method is safe to call
    from any thread.
    """

    def __init__(
        self,
        replicas: Mapping[int, tuple[str, int]],
        params: FleetParams | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.params = params or FleetParams()
        self._clock = clock
        registry = get_registry()
        self._reads_total = registry.counter(
            "repro_fleet_reads_total",
            "Front-door reads, by outcome",
            labelnames=("status",),
        )
        self._evictions_total = registry.counter(
            "repro_fleet_evictions_total",
            "Replicas evicted from rotation after transport errors",
        )
        self._reinstatements_total = registry.counter(
            "repro_fleet_reinstatements_total",
            "Evicted replicas returned to rotation",
        )
        self._retries_total = registry.counter(
            "repro_fleet_retries_total",
            "Reads re-attempted on another replica",
        )
        self._batch_flushes_total = registry.counter(
            "repro_fleet_batch_flushes_total",
            "Micro-batches flushed to replicas",
        )
        self._active_gauge = registry.gauge(
            "repro_fleet_replicas_active",
            "Replicas currently in rotation",
        )
        self._backend_seconds = registry.histogram(
            "repro_fleet_backend_seconds",
            "Per-replica backend round-trip latency",
            labelnames=("replica",),
            buckets=READ_LATENCY_BUCKETS,
        )
        self._backends: dict[int, _Backend] = {
            rid: self._new_backend(rid, addr)
            for rid, addr in sorted(replicas.items())
        }
        if not self._backends:
            raise FleetError("front door needs at least one replica")
        self._rr = 0
        self._requests = 0
        self._reads_ok = 0
        self._reads_failed = 0
        self._reads_rejected = 0
        self._batched_reads = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None
        self._batchers: dict[str, _Batcher] = {}
        self._active_gauge.set(len(self._backends))

    def _new_backend(self, replica_id: int, address: tuple[str, int]) -> _Backend:
        return _Backend(
            replica_id,
            address,
            self._backend_seconds.labels(replica=str(replica_id)),
        )

    # ------------------------------------------------------------------
    # Lifecycle (called from the host thread)
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the listener."""
        if self._address is None:
            raise FleetError("front door is not started")
        return self._address

    def start(self) -> "FrontDoor":
        """Raise the loop thread and bind the listener (idempotent)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-front-door", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise FleetError("front door failed to start within 30s")
        if self._startup_error is not None:
            raise FleetError(
                f"front door failed to bind: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        """Close the listener and join the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if thread is not None:
            thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        for op in _BATCHED_OPS:
            self._batchers[op] = _Batcher(self, op)
        try:
            self._server = await asyncio.start_server(
                self._serve_client,
                self.params.host,
                self.params.frontend_port,
                limit=_STREAM_LIMIT,
            )
            self._address = self._server.sockets[0].getsockname()[:2]
        except Exception as exc:  # noqa: BLE001 - surface to start()
            self._startup_error = exc
            self._started.set()
            return
        probe = asyncio.create_task(self._probe_loop())
        self._started.set()
        _logger.info("front door listening on %s:%d", *self._address)
        try:
            await self._stop_event.wait()
        finally:
            probe.cancel()
            self._server.close()
            await self._server.wait_closed()
            for backend in self._backends.values():
                backend.close_connection()

    # ------------------------------------------------------------------
    # Client protocol
    # ------------------------------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = json.loads(line)
                except (ValueError, UnicodeDecodeError) as exc:
                    response = {
                        "ok": False,
                        "error": "FleetError",
                        "detail": f"malformed request: {exc}",
                    }
                else:
                    response = await self._dispatch(message)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            writer.close()

    async def _dispatch(self, message: dict) -> dict:
        self._requests += 1
        op = message.get("op")
        try:
            if op in _BATCHED_OPS:
                if "ids" in message:
                    ids = [int(i) for i in message["ids"]]
                    return await self.backend_read(
                        {"op": op, "ids": ids}, reads=len(ids)
                    )
                return await self._batchers[op].submit(int(message["id"]))
            if op == "top_k":
                k = int(message.get("k", 0))
                return await self.backend_read(
                    {"op": "top_k", "k": k}, reads=max(k, 1)
                )
            if op == "health":
                return await self._fanout_health()
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            return {
                "ok": False,
                "error": "FleetError",
                "detail": f"unknown op {op!r}",
            }
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
            }

    # ------------------------------------------------------------------
    # Backend routing
    # ------------------------------------------------------------------
    def _pick(self, exclude: set[int]) -> _Backend | None:
        backends = sorted(self._backends)
        for offset in range(len(backends)):
            rid = backends[(self._rr + offset) % len(backends)]
            backend = self._backends[rid]
            if backend.state == "active" and rid not in exclude:
                self._rr = (self._rr + offset + 1) % len(backends)
                return backend
        return None

    async def backend_read(self, payload: dict, *, reads: int) -> dict:
        """Send one read to some healthy replica, retrying across evictions.

        A transport failure (timeout, refused/broken connection) evicts
        the replica and retries elsewhere; a replica still waiting for
        its first snapshot (``ServingError``) is retried elsewhere
        without eviction; any other replica-reported error (e.g. an
        out-of-range id) is the *request's* fault and is returned as-is.
        """
        line = _encode(payload)
        tried: set[int] = set()
        last_error: str | None = None
        attempts = max(self.params.max_retries, len(self._backends))
        for _ in range(attempts):
            backend = self._pick(tried)
            if backend is None:
                break
            started = self._clock()
            try:
                response = await asyncio.wait_for(
                    self._roundtrip(backend, line),
                    timeout=self.params.request_timeout_seconds,
                )
            except Exception as exc:  # noqa: BLE001 - transport failure
                last_error = f"{type(exc).__name__}: {exc}"
                self._evict(backend, last_error)
                tried.add(backend.replica_id)
                self._retries_total.inc()
                continue
            backend.latency.observe(self._clock() - started)
            if response.get("ok"):
                backend.reads += reads
                backend.last_version = response.get(
                    "version", backend.last_version
                )
                self._reads_ok += reads
                self._reads_total.labels(status="ok").inc(reads)
                response.setdefault("replica", backend.replica_id)
                return response
            if response.get("error") == "ServingError":
                # Replica is up but empty (no snapshot adopted yet):
                # another replica may well have adopted — retry there.
                tried.add(backend.replica_id)
                last_error = response.get("detail")
                self._retries_total.inc()
                continue
            backend.errors += 1
            self._reads_rejected += reads
            self._reads_total.labels(status="rejected").inc(reads)
            response.setdefault("replica", backend.replica_id)
            return response
        self._reads_failed += reads
        self._reads_total.labels(status="error").inc(reads)
        return {
            "ok": False,
            "error": "FleetError",
            "detail": (
                "read failed on every replica in rotation"
                + (f" (last: {last_error})" if last_error else "")
            ),
        }

    async def _roundtrip(self, backend: _Backend, line: bytes) -> dict:
        async with backend.lock:
            if backend.writer is None:
                backend.reader, backend.writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        *backend.address, limit=_STREAM_LIMIT
                    ),
                    timeout=self.params.connect_timeout_seconds,
                )
            backend.writer.write(line)
            await backend.writer.drain()
            raw = await backend.reader.readline()
        if not raw:
            raise FleetError(
                "replica closed the connection", replica=backend.replica_id
            )
        return json.loads(raw)

    def _evict(self, backend: _Backend, detail: str) -> None:
        backend.close_connection()
        if backend.state == "evicted":
            return
        backend.state = "evicted"
        backend.evictions += 1
        backend.errors += 1
        backend.last_error = detail
        self._evictions_total.inc()
        self._active_gauge.set(
            sum(1 for b in self._backends.values() if b.state == "active")
        )
        _logger.warning(
            "evicted replica %d (%s:%d): %s",
            backend.replica_id,
            *backend.address,
            detail,
        )

    def _reinstate(self, backend: _Backend) -> None:
        if backend.state == "active":
            return
        backend.state = "active"
        backend.reinstatements += 1
        backend.last_error = None
        self._reinstatements_total.inc()
        self._active_gauge.set(
            sum(1 for b in self._backends.values() if b.state == "active")
        )
        _logger.info(
            "reinstated replica %d (%s:%d)",
            backend.replica_id,
            *backend.address,
        )

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.params.probe_interval_seconds)
            for backend in list(self._backends.values()):
                if backend.state != "evicted":
                    continue
                try:
                    response = await asyncio.wait_for(
                        self._roundtrip(backend, _encode({"op": "health"})),
                        timeout=self.params.request_timeout_seconds,
                    )
                except Exception:  # noqa: BLE001 - still down
                    backend.close_connection()
                    continue
                if response.get("ok") and response.get("ready"):
                    self._reinstate(backend)

    async def _fanout_health(self) -> dict:
        replicas: dict[str, dict] = {}
        for rid in sorted(self._backends):
            backend = self._backends[rid]
            entry: dict = {
                "state": backend.state,
                "address": list(backend.address),
                "reads": backend.reads,
                "errors": backend.errors,
                "evictions": backend.evictions,
                "reinstatements": backend.reinstatements,
            }
            if backend.state == "active":
                try:
                    response = await asyncio.wait_for(
                        self._roundtrip(backend, _encode({"op": "health"})),
                        timeout=self.params.request_timeout_seconds,
                    )
                except Exception as exc:  # noqa: BLE001 - evict on probe
                    self._evict(backend, f"{type(exc).__name__}: {exc}")
                    entry["state"] = backend.state
                    entry["error"] = str(exc)
                else:
                    if response.get("ok"):
                        entry.update(
                            {
                                k: v
                                for k, v in response.items()
                                if k not in ("ok",)
                            }
                        )
                    else:
                        entry["error"] = response.get("detail")
            elif backend.last_error:
                entry["error"] = backend.last_error
            replicas[str(rid)] = entry
        return {"ok": True, "replicas": replicas}

    def _update_replica_on_loop(
        self, replica_id: int, address: tuple[str, int]
    ) -> None:
        old = self._backends.get(replica_id)
        backend = self._new_backend(replica_id, address)
        if old is not None:
            old.close_connection()
            backend.reads = old.reads
            backend.errors = old.errors
            backend.evictions = old.evictions
            backend.reinstatements = old.reinstatements + (
                1 if old.state == "evicted" else 0
            )
            if old.state == "evicted":
                self._reinstatements_total.inc()
        self._backends[replica_id] = backend
        self._active_gauge.set(
            sum(1 for b in self._backends.values() if b.state == "active")
        )
        _logger.info(
            "routing replica %d to %s:%d", replica_id, *backend.address
        )

    # ------------------------------------------------------------------
    # Thread-safe host surface
    # ------------------------------------------------------------------
    def _require_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            raise FleetError("front door is not started")
        return loop

    def request(self, payload: dict, *, timeout: float | None = None) -> dict:
        """One request through the door's own dispatcher, from any thread."""
        loop = self._require_loop()
        future = asyncio.run_coroutine_threadsafe(
            self._dispatch(dict(payload)), loop
        )
        budget = (
            timeout
            if timeout is not None
            else self.params.request_timeout_seconds
            * max(self.params.max_retries, len(self._backends))
            + 5.0
        )
        return future.result(timeout=budget)

    def update_replica(self, replica_id: int, address: tuple[str, int]) -> None:
        """Re-route one replica id to a new address (after a restart)."""
        self._require_loop().call_soon_threadsafe(
            self._update_replica_on_loop, int(replica_id), tuple(address)
        )

    def health(self) -> dict:
        """Per-replica fan-out health (the ``/health`` replica block)."""
        return self.request({"op": "health"}).get("replicas", {})

    def record_batch(self, size: int) -> None:
        """Account one flushed micro-batch (called by the batchers)."""
        self._batch_flushes_total.inc()
        self._batched_reads += size

    def stats(self) -> dict:
        """Door-local counters and per-replica latency quantiles."""
        replicas = {}
        for rid in sorted(self._backends):
            backend = self._backends[rid]
            replicas[str(rid)] = {
                "state": backend.state,
                "address": list(backend.address),
                "reads": backend.reads,
                "errors": backend.errors,
                "evictions": backend.evictions,
                "reinstatements": backend.reinstatements,
                "last_version": backend.last_version,
                "latency": {
                    "count": backend.latency.count,
                    "p50_seconds": backend.latency.quantile(0.5),
                    "p99_seconds": backend.latency.quantile(0.99),
                },
            }
        return {
            "address": list(self._address) if self._address else None,
            "requests_total": self._requests,
            "reads": {
                "ok": self._reads_ok,
                "failed": self._reads_failed,
                "rejected": self._reads_rejected,
            },
            "batching": {
                "flushes": int(self._batch_flushes_total.value),
                "batched_reads": self._batched_reads,
                "max_ids": self.params.batch_max_ids,
                "linger_seconds": self.params.batch_linger_seconds,
            },
            "replicas": replicas,
        }


class FleetClient:
    """Blocking newline-JSON client for the front door (or a replica).

    One TCP connection, one in-flight request at a time — use one
    client per thread.  Usable as a context manager.
    """

    def __init__(
        self, address: tuple[str, int], *, timeout: float = 30.0
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()

    def request(self, payload: dict) -> dict:
        """Send one request and block for its response."""
        with self._lock:
            self._sock.sendall(_encode(payload))
            line = self._rfile.readline()
        if not line:
            raise FleetError(f"{self.address} closed the connection")
        return json.loads(line)

    # -- convenience wrappers ------------------------------------------------
    def score(self, ids: list[int]) -> dict:
        """Batched σ read."""
        return self.request({"op": "score", "ids": [int(i) for i in ids]})

    def score_one(self, node: int) -> dict:
        """Singleton σ read (micro-batched by the front door)."""
        return self.request({"op": "score", "id": int(node)})

    def percentile(self, ids: list[int]) -> dict:
        """Batched percentile read."""
        return self.request({"op": "percentile", "ids": [int(i) for i in ids]})

    def percentile_one(self, node: int) -> dict:
        """Singleton percentile read (micro-batched)."""
        return self.request({"op": "percentile", "id": int(node)})

    def top_k(self, k: int) -> dict:
        """Top-k read."""
        return self.request({"op": "top_k", "k": int(k)})

    def health(self) -> dict:
        """Fan-out health document."""
        return self.request({"op": "health"})

    def stats(self) -> dict:
        """Front-door counters."""
        return self.request({"op": "stats"})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Fault-tolerant serving of spam-resilient rankings.

The batch layers compute σ; this package *serves* it. A
:class:`SnapshotStore` holds atomically published, integrity-checked,
monotonically versioned ranking snapshots; a :class:`RankingService`
answers score / top-k / percentile queries from the newest healthy one
while a circuit-breaker-guarded background updater re-solves the ranking
as the web evolves, degrading explicitly (healthy → stale → baseline →
read-only) instead of ever serving a wrong or partial σ.

Above the single process sits the replicated fleet: a
:class:`ServingFleet` keeps one publisher (the service above) writing
snapshots while N spawned read-only :class:`ReplicaService` processes
adopt them through seq-guarded, digest-verified
:class:`SnapshotFollower` polls, all behind the load-balancing,
micro-batching, health-evicting asyncio :class:`FrontDoor` (clients use
the blocking :class:`FleetClient`).

See ``docs/architecture.md`` ("Serving" and "Replicated serving fleet")
for the state machines, ``benchmarks/bench_serving.py`` for the
single-process chaos/soak harness, and ``benchmarks/bench_fleet.py``
for the fleet's open-loop load / kill-a-replica harness.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .fleet import (
    ReplicaHandle,
    ReplicaService,
    ServingFleet,
    SnapshotFollower,
    replica_request,
)
from .frontend import REPLICA_STATES, FleetClient, FrontDoor
from .service import SERVING_STATES, RankingService, ServeResponse
from .snapshot import SNAPSHOT_KINDS, RankingSnapshot, SnapshotStore

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "SERVING_STATES",
    "RankingService",
    "ServeResponse",
    "SNAPSHOT_KINDS",
    "RankingSnapshot",
    "SnapshotStore",
    "REPLICA_STATES",
    "FleetClient",
    "FrontDoor",
    "ReplicaHandle",
    "ReplicaService",
    "ServingFleet",
    "SnapshotFollower",
    "replica_request",
]

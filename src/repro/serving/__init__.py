"""Fault-tolerant serving of spam-resilient rankings.

The batch layers compute σ; this package *serves* it. A
:class:`SnapshotStore` holds atomically published, integrity-checked,
monotonically versioned ranking snapshots; a :class:`RankingService`
answers score / top-k / percentile queries from the newest healthy one
while a circuit-breaker-guarded background updater re-solves the ranking
as the web evolves, degrading explicitly (healthy → stale → baseline →
read-only) instead of ever serving a wrong or partial σ.

See ``docs/architecture.md`` ("Serving") for the state machine and
``benchmarks/bench_serving.py`` for the chaos/soak harness that proves
the degradation and recovery behavior under injected faults.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .service import SERVING_STATES, RankingService, ServeResponse
from .snapshot import SNAPSHOT_KINDS, RankingSnapshot, SnapshotStore

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "SERVING_STATES",
    "RankingService",
    "ServeResponse",
    "SNAPSHOT_KINDS",
    "RankingSnapshot",
    "SnapshotStore",
]

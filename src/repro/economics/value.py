"""Portfolio-value metrics: turning ranks into spammer revenue.

The paper's proposed metric is "the relative impact on the *value* of a
spammer's portfolio of sources".  We model value through the standard
rank-to-traffic lens: click-through falls off as a power law of rank
position (the Zipf-like curve measured in every search-log study), so

.. math::

    \\text{value}(\\text{rank } r) \\propto (r + 1)^{-\\gamma}

with ``gamma ≈ 1``.  A portfolio's value is the sum of its members'
rank values; the spam-resilience question becomes "how much *value* does
one currency unit of manipulation buy", which the planner and the
economics bench answer for PageRank vs SR-SourceRank.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..ranking.base import RankingResult

__all__ = ["rank_value", "traffic_share", "portfolio_value"]

#: Default click-through decay exponent.
DEFAULT_GAMMA = 1.0


def rank_value(ranks: np.ndarray, *, gamma: float = DEFAULT_GAMMA) -> np.ndarray:
    """Value of items at the given 0-based ranks (0 = best).

    Normalized so that rank 0 has value 1.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if (ranks < 0).any():
        raise ConfigError("ranks must be >= 0")
    if gamma <= 0:
        raise ConfigError(f"gamma must be > 0, got {gamma}")
    return (ranks + 1.0) ** (-gamma)


def traffic_share(result: RankingResult, members: np.ndarray, *, gamma: float = DEFAULT_GAMMA) -> float:
    """Fraction of total rank value captured by ``members``.

    This is the portfolio's share of the modeled click traffic — the
    natural normalized portfolio-value metric.
    """
    members = np.unique(np.asarray(members, dtype=np.int64))
    if members.size and (members[0] < 0 or members[-1] >= result.n):
        raise ConfigError(
            f"member ids must lie in [0, {result.n}), got range "
            f"[{members[0]}, {members[-1]}]"
        )
    ranks = result.ranks()
    all_value = rank_value(ranks, gamma=gamma)
    total = all_value.sum()
    return float(all_value[members].sum() / total) if total > 0 else 0.0


def portfolio_value(
    result: RankingResult,
    members: np.ndarray,
    *,
    gamma: float = DEFAULT_GAMMA,
    market_size: float = 1.0,
) -> float:
    """Absolute value of a portfolio under a ranking.

    ``market_size`` scales the metric to a currency (e.g. total ad spend);
    with the default 1.0 the value equals :func:`traffic_share`.
    """
    if market_size < 0:
        raise ConfigError(f"market_size must be >= 0, got {market_size}")
    return market_size * traffic_share(result, members, gamma=gamma)

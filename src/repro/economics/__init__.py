"""Spammer economics — the paper's stated future work, implemented.

Section 8: "In our ongoing research we are developing a model of spammer
behavior, including new metrics for the effectiveness of link-based
manipulation.  Our goal is to evaluate the relative impact on the *value*
of a spammer's portfolio of sources due to link-based manipulation."

This package provides exactly that:

* :class:`~repro.economics.cost.CostModel` — what each attack primitive
  costs the spammer (pages created, sources registered, pages hijacked,
  honeypot links induced);
* :mod:`repro.economics.value` — portfolio-value metrics mapping rank
  positions to expected traffic/value;
* :class:`~repro.economics.planner.AttackPlanner` — closed-form optimal
  attack allocation under a budget, against PageRank and against
  SR-SourceRank, quantifying how throttling changes the spammer's best
  strategy and achievable return.
"""

from .cost import AttackCost, CostModel
from .value import portfolio_value, rank_value, traffic_share
from .planner import AttackPlanner, AttackPlan

__all__ = [
    "CostModel",
    "AttackCost",
    "portfolio_value",
    "rank_value",
    "traffic_share",
    "AttackPlanner",
    "AttackPlan",
]

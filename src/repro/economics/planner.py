"""Optimal attack planning under a budget — closed-form spammer behaviour.

Uses the Section 4 closed forms to answer the spammer's planning
question: *given a budget B and the defender's throttle level κ, what is
the best achievable score for my target source, and how should I spend?*

Against **PageRank** every colluding page pays the same
``Δ = α(1−α)/|P|`` (Eq. Section 4.3), so the optimal plan is simply
"buy ``B / page_cost`` pages" and the achievable score is linear in the
budget.

Against **SR-SourceRank** pages inside one source stop paying after the
first (the self-tuning boost is one-time, Fig. 4a/b), so the spammer
must buy *sources*; each new colluding source costs ``source_cost + one
page`` and pays ``α(1−κ)/(1−ακ) · σ_teleport`` (Eq. 5).  The achievable
score is linear in the number of *sources*, which is
``source_cost / page_cost``-times dearer per unit — and further shrunk
by the throttle factor.

:class:`AttackPlanner` exposes both plans plus the *cost ratio* — how
many times more a unit of score costs under SR-SourceRank — which is the
paper's "raises the cost of rank manipulation" claim made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import closed_form as cf
from ..errors import ConfigError
from .cost import CostModel

__all__ = ["AttackPlanner", "AttackPlan"]


@dataclass(frozen=True, slots=True)
class AttackPlan:
    """One optimal spending plan and its predicted outcome."""

    ranking: str
    budget: float
    n_pages: int
    n_sources: int
    score_gain: float
    gain_per_unit: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for table rendering."""
        return {
            "ranking": self.ranking,
            "budget": self.budget,
            "pages": self.n_pages,
            "sources": self.n_sources,
            "score_gain": self.score_gain,
            "gain_per_unit": self.gain_per_unit,
        }


class AttackPlanner:
    """Closed-form optimal attack allocation for a budget-bound spammer.

    Parameters
    ----------
    costs:
        The spammer's unit prices.
    alpha:
        Ranking mixing parameter.
    n_pages, n_sources:
        Web scale: total pages (PageRank denominator) and sources
        (SR-SourceRank denominator).
    """

    def __init__(
        self,
        costs: CostModel | None = None,
        *,
        alpha: float = 0.85,
        n_pages: int = 1_000_000,
        n_sources: int = 100_000,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ConfigError(f"alpha must lie in [0, 1), got {alpha}")
        if n_pages < 1 or n_sources < 1:
            raise ConfigError("n_pages and n_sources must be >= 1")
        self.costs = costs or CostModel()
        self.alpha = float(alpha)
        self.n_pages = int(n_pages)
        self.n_sources = int(n_sources)

    # ------------------------------------------------------------------
    def plan_against_pagerank(self, budget: float) -> AttackPlan:
        """Optimal plan vs PageRank: spend everything on colluding pages."""
        if budget < 0:
            raise ConfigError(f"budget must be >= 0, got {budget}")
        n_pages = int(budget // self.costs.page_cost) if self.costs.page_cost > 0 else 0
        gain = float(cf.pagerank_boost(n_pages, self.alpha, self.n_pages))
        return AttackPlan(
            ranking="pagerank",
            budget=budget,
            n_pages=n_pages,
            n_sources=0,
            score_gain=gain,
            gain_per_unit=gain / budget if budget > 0 else 0.0,
        )

    def plan_against_srsr(self, budget: float, kappa: float = 0.0) -> AttackPlan:
        """Optimal plan vs SR-SourceRank at defender throttle ``kappa``.

        Pages beyond one per colluding source buy nothing (the Fig. 4
        caps), so the whole budget goes into fresh sources, each holding
        a single page pointed at the target.
        """
        if budget < 0:
            raise ConfigError(f"budget must be >= 0, got {budget}")
        if not 0.0 <= kappa < 1.0:
            raise ConfigError(f"kappa must lie in [0, 1), got {kappa}")
        unit_cost = self.costs.source_cost + self.costs.page_cost
        n_sources = int(budget // unit_cost) if unit_cost > 0 else 0
        gain = float(
            cf.colluding_contribution(
                n_sources, kappa, self.alpha, self.n_sources
            )
        )
        return AttackPlan(
            ranking=f"sr-sourcerank(k={kappa:g})",
            budget=budget,
            n_pages=n_sources,
            n_sources=n_sources,
            score_gain=gain,
            gain_per_unit=gain / budget if budget > 0 else 0.0,
        )

    def cost_ratio(self, kappa: float = 0.0) -> float:
        """How many times dearer one unit of score is under SR-SourceRank.

        Ratio of per-currency-unit gains (PageRank / SR-SourceRank) at a
        common budget, with each gain measured in its own web's teleport
        quanta (``(1-α)/|P|`` vs ``(1-α)/|S|``) so raw web scale cancels
        and what remains is structure (pay per source, not per page) times
        cost (sources are dearer) times throttling
        (``(1-ακ)/(1-κ)`` suppression).
        """
        if not 0.0 <= kappa < 1.0:
            raise ConfigError(f"kappa must lie in [0, 1), got {kappa}")
        budget = 1e6
        pr = self.plan_against_pagerank(budget)
        sr = self.plan_against_srsr(budget, kappa)
        # Normalize each gain by its own web's teleport quantum so the
        # ratio reflects structure + cost, not |P| vs |S|.
        pr_units = pr.score_gain / ((1 - self.alpha) / self.n_pages)
        sr_units = sr.score_gain / ((1 - self.alpha) / self.n_sources)
        if sr_units == 0:
            return float("inf")
        return pr_units / sr_units

    def sweep_kappa(self, kappas: np.ndarray, budget: float = 1e6) -> list[AttackPlan]:
        """Optimal SR-SourceRank plans across defender throttle levels."""
        return [self.plan_against_srsr(budget, float(k)) for k in np.asarray(kappas)]

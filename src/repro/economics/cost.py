"""Cost model for link-manipulation primitives.

Prices the four resources a Web spammer spends, in arbitrary currency
units (the benches only use *ratios*, so the absolute scale never
matters):

* creating a colluding page (cheap — generated content);
* registering and operating a fresh source/domain (much dearer —
  registration, hosting, aging);
* hijacking a page of a legitimate source (dearer still — finding and
  exploiting a vulnerable board/wiki, risk of cleanup);
* inducing a honeypot link (the dearest — real content that earns a
  genuine citation).

The default ratios (1 : 50 : 20 : 100) follow the qualitative ordering
the spam-economics literature of the period agrees on; every number is a
constructor parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..spam.base import SpammedWeb

__all__ = ["CostModel", "AttackCost"]


@dataclass(frozen=True, slots=True)
class AttackCost:
    """Itemized cost of one attack."""

    pages: int
    sources: int
    hijacked: int
    total: float

    def __add__(self, other: "AttackCost") -> "AttackCost":
        return AttackCost(
            pages=self.pages + other.pages,
            sources=self.sources + other.sources,
            hijacked=self.hijacked + other.hijacked,
            total=self.total + other.total,
        )


@dataclass(frozen=True, slots=True)
class CostModel:
    """Unit prices of the spammer's resources.

    Attributes
    ----------
    page_cost:
        Creating one colluding page inside a source the spammer controls.
    source_cost:
        Registering and operating one fresh source (domain/host).
    hijack_cost:
        Inserting one link into a legitimate page.
    honeypot_link_cost:
        Earning one genuine induced link via honeypot content.
    """

    page_cost: float = 1.0
    source_cost: float = 50.0
    hijack_cost: float = 20.0
    honeypot_link_cost: float = 100.0

    def __post_init__(self) -> None:
        for name in ("page_cost", "source_cost", "hijack_cost", "honeypot_link_cost"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    # ------------------------------------------------------------------
    def price(self, spammed: SpammedWeb) -> AttackCost:
        """Itemize the cost of an executed attack from its provenance."""
        pages = int(spammed.injected_pages.size)
        sources = int(spammed.injected_sources.size)
        hijacked = int(spammed.hijacked_pages.size)
        total = (
            pages * self.page_cost
            + sources * self.source_cost
            + hijacked * self.hijack_cost
        )
        return AttackCost(pages=pages, sources=sources, hijacked=hijacked, total=total)

    def collusion_cost(self, n_pages: int, n_new_sources: int = 0) -> float:
        """Cost of a collusion structure: pages plus fresh sources."""
        if n_pages < 0 or n_new_sources < 0:
            raise ConfigError("counts must be >= 0")
        return n_pages * self.page_cost + n_new_sources * self.source_cost

    def hijack_campaign_cost(self, n_links: int) -> float:
        """Cost of hijacking ``n_links`` legitimate pages."""
        if n_links < 0:
            raise ConfigError("n_links must be >= 0")
        return n_links * self.hijack_cost

    def honeypot_cost(self, n_induced_links: int, n_pot_pages: int) -> float:
        """Cost of a honeypot earning ``n_induced_links`` citations."""
        if n_induced_links < 0 or n_pot_pages < 0:
            raise ConfigError("counts must be >= 0")
        return (
            n_induced_links * self.honeypot_link_cost
            + n_pot_pages * self.page_cost
            + self.source_cost
        )

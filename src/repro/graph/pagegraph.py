"""Immutable CSR representation of a directed page graph.

:class:`PageGraph` is the central substrate type of the library.  It stores a
directed graph in compressed-sparse-row (CSR) form — one ``indptr`` array of
length ``n + 1`` and one ``indices`` array holding the concatenated, sorted,
de-duplicated successor lists.  All downstream machinery (transition
matrices, source quotients, spam scenarios, the compressed on-disk codec)
works off these two arrays, which keeps hot loops vectorized and memory
contiguous per the HPC guidance for this project.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import scipy.sparse as sp

from ..errors import EmptyGraphError, GraphError, NodeIndexError

__all__ = ["PageGraph"]


def _as_index_array(values: np.ndarray | list[int], name: str) -> np.ndarray:
    arr = np.asarray(values)
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise GraphError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


class PageGraph:
    """A directed graph over ``n`` integer-labelled nodes in CSR form.

    Instances are immutable: the underlying arrays are flagged read-only and
    every transform returns a new graph.  Construct instances either from raw
    CSR arrays (:meth:`__init__`), from an edge list
    (:meth:`from_edges`), or from a scipy sparse matrix
    (:meth:`from_scipy`).

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n_nodes + 1``; row ``i``'s successors are
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of successor node ids, sorted and de-duplicated
        within each row.
    n_nodes:
        Number of nodes.  May exceed ``indices.max() + 1`` to represent
        isolated trailing nodes.
    validate:
        When True (default) the CSR invariants are checked; disable only for
        arrays produced by trusted internal code on hot paths.
    """

    __slots__ = ("_indptr", "_indices", "_n_nodes", "_out_degrees")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        n_nodes: int | None = None,
        *,
        validate: bool = True,
    ) -> None:
        indptr = _as_index_array(indptr, "indptr")
        indices = _as_index_array(indices, "indices")
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        inferred_n = indptr.size - 1
        if n_nodes is None:
            n_nodes = inferred_n
        elif int(n_nodes) != inferred_n:
            raise GraphError(
                f"n_nodes={n_nodes} inconsistent with indptr of length {indptr.size}"
            )
        n_nodes = int(n_nodes)

        if validate:
            if indptr[0] != 0 or indptr[-1] != indices.size:
                raise GraphError(
                    "indptr must start at 0 and end at len(indices) "
                    f"(got {indptr[0]}..{indptr[-1]}, len(indices)={indices.size})"
                )
            if np.any(np.diff(indptr) < 0):
                raise GraphError("indptr must be non-decreasing")
            if indices.size:
                if indices.min() < 0 or indices.max() >= n_nodes:
                    raise GraphError(
                        f"edge targets must lie in [0, {n_nodes}); "
                        f"got range [{indices.min()}, {indices.max()}]"
                    )
                # Rows must be strictly increasing => sorted and de-duplicated.
                row_starts = indptr[:-1]
                diffs = np.diff(indices)
                # Positions where a new row begins (the diff there is allowed
                # to be anything).
                boundary = np.zeros(indices.size - 1, dtype=bool) if indices.size > 1 else None
                if boundary is not None:
                    interior_starts = row_starts[(row_starts > 0) & (row_starts < indices.size)]
                    boundary[interior_starts - 1] = True
                    if np.any((diffs <= 0) & ~boundary):
                        raise GraphError(
                            "successor lists must be sorted and de-duplicated within rows"
                        )

        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._n_nodes = n_nodes
        out = np.diff(indptr).astype(np.int64)
        out.setflags(write=False)
        self._out_degrees = out

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray | list[int],
        dst: np.ndarray | list[int],
        n_nodes: int | None = None,
    ) -> "PageGraph":
        """Build a graph from parallel source/target arrays.

        Duplicate edges are collapsed (the paper's transition matrices are
        0/1 on the page level) and successor lists are sorted.
        """
        src = _as_index_array(src, "src")
        dst = _as_index_array(dst, "dst")
        if src.shape != dst.shape:
            raise GraphError(
                f"src and dst must have equal length, got {src.size} and {dst.size}"
            )
        if src.size:
            lo = min(src.min(), dst.min())
            if lo < 0:
                raise GraphError("node ids must be non-negative")
            hi = int(max(src.max(), dst.max())) + 1
        else:
            hi = 0
        if n_nodes is None:
            n_nodes = hi
        elif n_nodes < hi:
            raise GraphError(f"n_nodes={n_nodes} smaller than max node id {hi - 1}")
        n_nodes = int(n_nodes)
        if src.size == 0:
            return cls(np.zeros(n_nodes + 1, dtype=np.int64), np.empty(0, dtype=np.int64), n_nodes, validate=False)

        # Sort by (src, dst) then collapse duplicates — fully vectorized.
        order = np.lexsort((dst, src))
        src_sorted = src[order]
        dst_sorted = dst[order]
        keep = np.ones(src_sorted.size, dtype=bool)
        keep[1:] = (src_sorted[1:] != src_sorted[:-1]) | (dst_sorted[1:] != dst_sorted[:-1])
        src_u = src_sorted[keep]
        dst_u = dst_sorted[keep]
        counts = np.bincount(src_u, minlength=n_nodes)
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst_u.astype(np.int64, copy=False), n_nodes, validate=False)

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix | sp.sparray) -> "PageGraph":
        """Build a graph from any scipy sparse matrix (nonzeros = edges)."""
        csr = sp.csr_matrix(matrix)
        if csr.shape[0] != csr.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got {csr.shape}")
        csr.sum_duplicates()
        csr.sort_indices()
        csr.eliminate_zeros()
        return cls(
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.shape[0],
            validate=False,
        )

    @classmethod
    def empty(cls, n_nodes: int) -> "PageGraph":
        """An edgeless graph over ``n_nodes`` nodes."""
        if n_nodes < 0:
            raise GraphError(f"n_nodes must be >= 0, got {n_nodes}")
        return cls(
            np.zeros(int(n_nodes) + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            int(n_nodes),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of (de-duplicated) directed edges."""
        return int(self._indices.size)

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array of length ``n_nodes + 1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column-index array (concatenated successor lists)."""
        return self._indices

    @property
    def out_degrees(self) -> np.ndarray:
        """Read-only ``int64`` array of out-degrees."""
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """Compute the in-degree of every node (O(edges))."""
        return np.bincount(self._indices, minlength=self._n_nodes).astype(np.int64)

    def successors(self, node: int) -> np.ndarray:
        """Sorted successor ids of ``node`` (read-only view, O(1))."""
        node = int(node)
        if not 0 <= node < self._n_nodes:
            raise NodeIndexError(node, self._n_nodes)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def has_edge(self, src: int, dst: int) -> bool:
        """True if the directed edge ``(src, dst)`` exists (O(log deg))."""
        row = self.successors(src)
        dst = int(dst)
        if not 0 <= dst < self._n_nodes:
            raise NodeIndexError(dst, self._n_nodes)
        pos = np.searchsorted(row, dst)
        return bool(pos < row.size and row[pos] == dst)

    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of nodes with no out-edges."""
        return self._out_degrees == 0

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` parallel edge arrays (copies)."""
        src = np.repeat(np.arange(self._n_nodes, dtype=np.int64), self._out_degrees)
        return src, self._indices.copy()

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as Python int pairs (slow path; tests/IO only)."""
        src, dst = self.edge_arrays()
        for s, d in zip(src.tolist(), dst.tolist()):
            yield s, d

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_scipy(self, dtype: np.dtype | type = np.float64) -> sp.csr_matrix:
        """Return the adjacency matrix as a scipy CSR matrix of ones."""
        return sp.csr_matrix(
            (
                np.ones(self._indices.size, dtype=dtype),
                self._indices.astype(np.int32)
                if self._n_nodes < np.iinfo(np.int32).max
                else self._indices,
                self._indptr,
            ),
            shape=(self._n_nodes, self._n_nodes),
        )

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyGraphError` if the graph has no nodes."""
        if self._n_nodes == 0:
            raise EmptyGraphError("operation requires a graph with at least one node")

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PageGraph):
            return NotImplemented
        return (
            self._n_nodes == other._n_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash for sets
        return id(self)

    def __repr__(self) -> str:
        return f"PageGraph(n_nodes={self._n_nodes}, n_edges={self.n_edges})"

"""Graph statistics: degree distributions, link locality, summary records.

The synthetic dataset generators are validated against these statistics —
in particular :func:`intra_host_locality`, the fraction of page edges that
stay inside their source, which the link-locality literature the paper cites
([7, 13, 14, 23]) reports at roughly 75–80 % for real crawls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .pagegraph import PageGraph

__all__ = [
    "GraphStats",
    "compute_stats",
    "degree_histogram",
    "intra_host_locality",
    "gini_coefficient",
]


@dataclass(frozen=True, slots=True)
class GraphStats:
    """Summary statistics of a directed graph."""

    n_nodes: int
    n_edges: int
    n_dangling: int
    n_isolated: int
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    out_degree_gini: float
    in_degree_gini: float
    self_loops: int

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view for table rendering."""
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "n_dangling": self.n_dangling,
            "n_isolated": self.n_isolated,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "mean_degree": self.mean_degree,
            "out_degree_gini": self.out_degree_gini,
            "in_degree_gini": self.in_degree_gini,
            "self_loops": self.self_loops,
        }


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed).

    Used to characterize degree inequality of synthetic vs paper graphs.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise GraphError("gini_coefficient requires a non-empty sample")
    if values.min() < 0:
        raise GraphError("gini_coefficient requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_vals = np.sort(values)
    n = sorted_vals.size
    # Standard O(n log n) formulation via the Lorenz-curve identity.
    coef = (2.0 * np.sum((np.arange(1, n + 1)) * sorted_vals) - (n + 1) * total) / (
        n * total
    )
    return float(coef)


def compute_stats(graph: PageGraph) -> GraphStats:
    """Compute a :class:`GraphStats` record in a single vectorized pass."""
    out = graph.out_degrees
    indeg = graph.in_degrees()
    src, dst = graph.edge_arrays()
    self_loops = int(np.count_nonzero(src == dst)) if graph.n_edges else 0
    n = graph.n_nodes
    return GraphStats(
        n_nodes=n,
        n_edges=graph.n_edges,
        n_dangling=int(np.count_nonzero(out == 0)),
        n_isolated=int(np.count_nonzero((out == 0) & (indeg == 0))),
        max_out_degree=int(out.max()) if n else 0,
        max_in_degree=int(indeg.max()) if n else 0,
        mean_degree=float(graph.n_edges / n) if n else 0.0,
        out_degree_gini=gini_coefficient(out) if n else 0.0,
        in_degree_gini=gini_coefficient(indeg) if n else 0.0,
        self_loops=self_loops,
    )


def degree_histogram(degrees: np.ndarray, *, log_bins: bool = False, n_bins: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of a degree array.

    Parameters
    ----------
    log_bins:
        When True, use logarithmically spaced bins (standard for
        heavy-tailed web degree distributions).

    Returns
    -------
    (bin_edges, counts)
    """
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        raise GraphError("degree_histogram requires a non-empty degree array")
    max_deg = int(degrees.max())
    if log_bins:
        upper = max(max_deg, 1)
        edges = np.unique(
            np.concatenate(
                [[0.0], np.logspace(0, np.log10(upper + 1), num=n_bins)]
            )
        )
    else:
        edges = np.arange(max_deg + 2, dtype=np.float64)
    counts, edges = np.histogram(degrees, bins=edges)
    return edges, counts


def intra_host_locality(graph: PageGraph, assignment: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a source.

    Parameters
    ----------
    graph:
        The page graph.
    assignment:
        ``int`` array mapping page id to source id (length ``n_nodes``).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_nodes,):
        raise GraphError(
            f"assignment must have shape ({graph.n_nodes},), got {assignment.shape}"
        )
    if graph.n_edges == 0:
        return 0.0
    src, dst = graph.edge_arrays()
    same = assignment[src] == assignment[dst]
    return float(np.count_nonzero(same) / graph.n_edges)

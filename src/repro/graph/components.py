"""Connectivity analysis over page and source graphs.

Wraps :mod:`scipy.sparse.csgraph` with the library's graph types.  Used
by the dataset validators (a synthetic web should have one giant weakly
connected component, like real crawls) and by convergence diagnostics
(rank mass can only reach nodes reachable from teleportation support).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csgraph

from ..errors import EmptyGraphError, NodeIndexError
from .pagegraph import PageGraph

__all__ = [
    "ComponentSummary",
    "weakly_connected_components",
    "strongly_connected_components",
    "component_summary",
    "reachable_from",
]


@dataclass(frozen=True, slots=True)
class ComponentSummary:
    """Sizes and counts of a graph's connected components."""

    n_components: int
    giant_size: int
    giant_fraction: float
    sizes: np.ndarray


def _components(graph: PageGraph, connection: str) -> tuple[int, np.ndarray]:
    graph.require_nonempty()
    n, labels = csgraph.connected_components(
        graph.to_scipy(), directed=True, connection=connection
    )
    return int(n), labels.astype(np.int64)


def weakly_connected_components(graph: PageGraph) -> tuple[int, np.ndarray]:
    """``(count, labels)`` of weakly connected components."""
    return _components(graph, "weak")


def strongly_connected_components(graph: PageGraph) -> tuple[int, np.ndarray]:
    """``(count, labels)`` of strongly connected components."""
    return _components(graph, "strong")


def component_summary(graph: PageGraph, *, strong: bool = False) -> ComponentSummary:
    """Summarize component structure (weak by default)."""
    n, labels = _components(graph, "strong" if strong else "weak")
    sizes = np.bincount(labels, minlength=n).astype(np.int64)
    giant = int(sizes.max())
    return ComponentSummary(
        n_components=n,
        giant_size=giant,
        giant_fraction=giant / graph.n_nodes,
        sizes=np.sort(sizes)[::-1],
    )


def reachable_from(graph: PageGraph, sources: np.ndarray | list[int]) -> np.ndarray:
    """Boolean mask of nodes reachable from any of ``sources`` (BFS).

    The spam-proximity sanity checks use this on the *reversed* graph:
    exactly the sources that can reach a spam seed carry nonzero
    proximity.
    """
    graph.require_nonempty()
    sources = np.unique(np.asarray(sources, dtype=np.int64))
    if sources.size == 0:
        raise EmptyGraphError("reachable_from requires at least one source node")
    if sources[0] < 0 or sources[-1] >= graph.n_nodes:
        raise NodeIndexError(int(sources[-1]), graph.n_nodes)
    # Multi-source BFS as repeated sparse boolean matvecs: one matvec per
    # BFS level, each fully vectorized (A^T @ frontier marks successors).
    at = graph.to_scipy().T.tocsr()
    mask = np.zeros(graph.n_nodes, dtype=bool)
    mask[sources] = True
    frontier = mask.copy()
    while True:
        reached = (at @ frontier.astype(np.float64)) > 0
        new = reached & ~mask
        if not new.any():
            return mask
        mask |= new
        frontier = new

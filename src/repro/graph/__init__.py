"""Page-graph substrate: construction, storage, transforms, IO, statistics.

The paper models the Web as a directed page graph ``G_P = <P, L_P>``.  This
package provides the in-memory CSR representation (:class:`PageGraph`), an
incremental :class:`GraphBuilder`, row-stochastic transition-matrix assembly
(:mod:`repro.graph.matrix`), structural transforms, edge-list IO, URL/host
utilities, and graph statistics.
"""

from .builder import GraphBuilder
from .pagegraph import PageGraph
from .matrix import (
    transition_matrix,
    row_normalize,
    is_row_stochastic,
    row_sums,
)
from .transforms import (
    reverse_graph,
    induced_subgraph,
    relabel_graph,
    add_edges,
    remove_self_loops,
)
from .io import (
    read_edge_list,
    write_edge_list,
    save_npz,
    load_npz,
    read_labeled_edges,
)
from .urls import normalize_url, extract_host, extract_registered_domain
from .stats import GraphStats, compute_stats, degree_histogram, intra_host_locality
from .components import (
    ComponentSummary,
    component_summary,
    reachable_from,
    strongly_connected_components,
    weakly_connected_components,
)
from .streaming import StreamingBuilder, stream_edge_chunks

__all__ = [
    "PageGraph",
    "GraphBuilder",
    "transition_matrix",
    "row_normalize",
    "is_row_stochastic",
    "row_sums",
    "reverse_graph",
    "induced_subgraph",
    "relabel_graph",
    "add_edges",
    "remove_self_loops",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "read_labeled_edges",
    "normalize_url",
    "extract_host",
    "extract_registered_domain",
    "GraphStats",
    "compute_stats",
    "degree_histogram",
    "intra_host_locality",
    "ComponentSummary",
    "component_summary",
    "reachable_from",
    "strongly_connected_components",
    "weakly_connected_components",
    "StreamingBuilder",
    "stream_edge_chunks",
]

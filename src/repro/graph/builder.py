"""Incremental construction of :class:`~repro.graph.pagegraph.PageGraph`.

:class:`GraphBuilder` accumulates edges in growable NumPy buffers (amortized
doubling, so a million ``add_edge`` calls do not allocate a million arrays)
and finalizes into the immutable CSR form.  It also supports symbolic node
names — URL strings are interned to dense integer ids on the fly — which is
how the IO layer and the synthetic dataset generators feed it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from ..errors import GraphError
from .pagegraph import PageGraph

__all__ = ["GraphBuilder"]

_INITIAL_CAPACITY = 1024


class GraphBuilder:
    """Mutable edge accumulator that finalizes into a :class:`PageGraph`.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edges([1, 2], [2, 0])
    >>> g = b.build()
    >>> g.n_nodes, g.n_edges
    (3, 3)

    Named nodes:

    >>> b = GraphBuilder()
    >>> b.add_named_edge("a.com/x", "b.org/y")
    >>> g = b.build()
    >>> b.name_of(0), b.name_of(1)
    ('a.com/x', 'b.org/y')
    """

    def __init__(self, n_nodes_hint: int = 0) -> None:
        capacity = max(_INITIAL_CAPACITY, int(n_nodes_hint))
        self._src = np.empty(capacity, dtype=np.int64)
        self._dst = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._max_node = -1
        self._names: dict[Hashable, int] = {}
        self._names_rev: list[Hashable] = []
        self._built = False

    # ------------------------------------------------------------------
    # Edge insertion
    # ------------------------------------------------------------------
    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._src.size:
            return
        new_cap = max(needed, self._src.size * 2)
        self._src = np.resize(self._src, new_cap)
        self._dst = np.resize(self._dst, new_cap)

    def add_edge(self, src: int, dst: int) -> None:
        """Append one directed edge; node ids must be non-negative."""
        src = int(src)
        dst = int(dst)
        if src < 0 or dst < 0:
            raise GraphError(f"node ids must be non-negative, got ({src}, {dst})")
        self._ensure_capacity(1)
        self._src[self._size] = src
        self._dst[self._size] = dst
        self._size += 1
        if src > self._max_node:
            self._max_node = src
        if dst > self._max_node:
            self._max_node = dst

    def add_edges(
        self, src: Sequence[int] | np.ndarray, dst: Sequence[int] | np.ndarray
    ) -> None:
        """Append a batch of directed edges from parallel arrays."""
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if src_arr.shape != dst_arr.shape or src_arr.ndim != 1:
            raise GraphError("src and dst must be equal-length 1-D sequences")
        if src_arr.size == 0:
            return
        if src_arr.min() < 0 or dst_arr.min() < 0:
            raise GraphError("node ids must be non-negative")
        self._ensure_capacity(src_arr.size)
        self._src[self._size : self._size + src_arr.size] = src_arr
        self._dst[self._size : self._size + dst_arr.size] = dst_arr
        self._size += src_arr.size
        self._max_node = max(
            self._max_node, int(src_arr.max()), int(dst_arr.max())
        )

    # ------------------------------------------------------------------
    # Named nodes
    # ------------------------------------------------------------------
    def intern(self, name: Hashable) -> int:
        """Return the dense id for ``name``, assigning a fresh one if new."""
        node = self._names.get(name)
        if node is None:
            node = len(self._names_rev)
            self._names[name] = node
            self._names_rev.append(name)
            if node > self._max_node:
                self._max_node = node
        return node

    def add_named_edge(self, src_name: Hashable, dst_name: Hashable) -> None:
        """Append an edge between two symbolically named nodes."""
        self.add_edge(self.intern(src_name), self.intern(dst_name))

    def add_named_edges(self, pairs: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Append a batch of named edges."""
        for src_name, dst_name in pairs:
            self.add_named_edge(src_name, dst_name)

    def name_of(self, node: int) -> Hashable:
        """Inverse of :meth:`intern`; raises for ids never interned."""
        node = int(node)
        if not 0 <= node < len(self._names_rev):
            raise GraphError(f"node {node} has no interned name")
        return self._names_rev[node]

    @property
    def names(self) -> dict[Hashable, int]:
        """Mapping of interned names to node ids (live view; do not mutate)."""
        return self._names

    # ------------------------------------------------------------------
    # Introspection and finalization
    # ------------------------------------------------------------------
    @property
    def n_pending_edges(self) -> int:
        """Number of edges accumulated so far (before de-duplication)."""
        return self._size

    @property
    def max_node(self) -> int:
        """Largest node id seen so far (-1 if none)."""
        return self._max_node

    def build(self, n_nodes: int | None = None) -> PageGraph:
        """Finalize into an immutable, de-duplicated :class:`PageGraph`.

        The builder remains usable after :meth:`build`; subsequent edges
        accumulate on top of the same buffers.
        """
        inferred = self._max_node + 1
        if n_nodes is None:
            n_nodes = inferred
        elif n_nodes < inferred:
            raise GraphError(
                f"n_nodes={n_nodes} smaller than max node id {self._max_node}"
            )
        return PageGraph.from_edges(
            self._src[: self._size], self._dst[: self._size], int(n_nodes)
        )

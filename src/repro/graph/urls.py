"""URL normalization and host / registered-domain extraction.

The paper assigns pages to sources "based on host information" extracted
from each page URL (Section 6.1).  This module implements that extraction
without any network dependency: scheme/case normalization, default-port
stripping, and a compact public-suffix heuristic for registered domains
(two-label default with a table of common second-level public suffixes such
as ``co.uk``, matching how host-level studies of the 2001-2004 crawls
grouped pages).
"""

from __future__ import annotations

import re

from ..errors import GraphError

__all__ = ["normalize_url", "extract_host", "extract_registered_domain"]

_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*://")
_DEFAULT_PORTS = {"http": "80", "https": "443", "ftp": "21"}

# Common two-label public suffixes seen in the paper-era crawls (.uk and .it
# are the UbiCrawler TLDs; the rest cover WB2001's top-level-domain mix).
_SECOND_LEVEL_SUFFIXES = frozenset(
    {
        "co.uk", "org.uk", "ac.uk", "gov.uk", "net.uk", "sch.uk", "me.uk",
        "plc.uk", "ltd.uk", "nhs.uk", "police.uk", "mod.uk",
        "com.au", "net.au", "org.au", "edu.au", "gov.au", "id.au",
        "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "ad.jp",
        "co.nz", "net.nz", "org.nz", "govt.nz", "ac.nz",
        "com.br", "net.br", "org.br", "gov.br",
        "co.kr", "or.kr", "ac.kr", "go.kr",
        "com.cn", "net.cn", "org.cn", "edu.cn", "gov.cn",
        "com.tw", "net.tw", "org.tw", "edu.tw",
        "co.in", "net.in", "org.in", "ac.in", "gov.in",
        "com.mx", "org.mx", "gob.mx",
        "com.ar", "org.ar", "gov.ar",
        "co.za", "org.za", "ac.za", "gov.za",
        "gov.it", "edu.it",
    }
)


def normalize_url(url: str) -> str:
    """Canonicalize a URL for graph interning.

    Lower-cases scheme and host, strips default ports and fragments, ensures
    a path component, and removes trailing slashes from non-root paths.  The
    function is deliberately conservative: two URLs are merged only when the
    HTTP spec guarantees equivalence.

    >>> normalize_url("HTTP://Example.COM:80/A/b/#frag")
    'http://example.com/A/b'
    """
    if not url or not url.strip():
        raise GraphError("cannot normalize an empty URL")
    url = url.strip()
    if not _SCHEME_RE.match(url):
        url = "http://" + url
    scheme, rest = url.split("://", 1)
    scheme = scheme.lower()
    # Split off fragment first (never significant), then path.
    rest = rest.split("#", 1)[0]
    if "/" in rest:
        authority, path = rest.split("/", 1)
        path = "/" + path
    else:
        authority, path = rest, "/"
    authority = authority.lower()
    if "@" in authority:  # userinfo is not part of source identity
        authority = authority.rsplit("@", 1)[1]
    if ":" in authority:
        host, port = authority.rsplit(":", 1)
        if port == _DEFAULT_PORTS.get(scheme, ""):
            authority = host
    if len(path) > 1 and path.endswith("/"):
        path = path.rstrip("/") or "/"
    return f"{scheme}://{authority}{path}"


def extract_host(url: str) -> str:
    """Return the lower-cased host of a URL (the paper's source key).

    >>> extract_host("http://www.example.com/page.html")
    'www.example.com'
    """
    normalized = normalize_url(url)
    authority = normalized.split("://", 1)[1].split("/", 1)[0]
    host = authority.rsplit(":", 1)[0] if ":" in authority else authority
    if not host:
        raise GraphError(f"URL {url!r} has no host component")
    return host


def extract_registered_domain(url: str) -> str:
    """Return the registered domain (site-level grouping key) of a URL.

    Uses a two-label default with a table of common second-level public
    suffixes, e.g.:

    >>> extract_registered_domain("http://news.bbc.co.uk/x")
    'bbc.co.uk'
    >>> extract_registered_domain("http://www.example.com/x")
    'example.com'

    IP-address hosts and single-label hosts are returned unchanged.
    """
    host = extract_host(url)
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    # Raw IPv4 hosts stay whole.
    if all(part.isdigit() for part in labels):
        return host
    two = ".".join(labels[-2:])
    if two in _SECOND_LEVEL_SUFFIXES and len(labels) >= 3:
        return ".".join(labels[-3:])
    return two

"""Two-pass, bounded-memory construction of large graphs from edge files.

:func:`read_edge_list` loads the whole file into Python lists — fine at
laptop scale, wasteful for crawl-sized inputs.  :class:`StreamingBuilder`
processes the file in fixed-size chunks twice:

* **pass 1** counts out-degrees (one int64 array of length ``n`` is the
  only full-size allocation);
* **pass 2** scatters targets directly into their final CSR slots using
  a rolling write cursor per row.

Peak memory is ``O(n + chunk)`` instead of ``O(edges)`` for the text
intermediates — the out-of-core streaming idiom from the HPC guides.
Rows are sorted and de-duplicated in a final vectorized pass.

For graphs that should never be materialized at all,
:meth:`StreamingBuilder.build_store` finalizes straight into a
:class:`~repro.webgraph.store.ShardedGraphStore`: rows are sorted,
de-duplicated, and shard-encoded one block at a time, so the conversion
adds only O(block) to the builder's own footprint.
"""

from __future__ import annotations

import operator
from pathlib import Path
from typing import Iterator, TextIO

import numpy as np

from ..errors import GraphError
from .pagegraph import PageGraph

__all__ = ["StreamingBuilder", "stream_edge_chunks"]

_DEFAULT_CHUNK = 262_144  # edges per chunk

#: Hard ceiling on node counts: int64 CSR offsets and the O(n) count array
#: stay well-defined below this; a hint (or node id) beyond it is almost
#: certainly a corrupt input, and allocating for it would overflow memory
#: long before the graph arrives.
_MAX_NODES = 1 << 40


def stream_edge_chunks(
    path_or_file: str | Path | TextIO,
    *,
    sep: str | None = None,
    chunk_edges: int = _DEFAULT_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(src, dst)`` int64 array chunks from a text edge list.

    Comments (``#``) and blank lines are skipped; malformed lines and
    negative node ids raise :class:`~repro.errors.GraphError` with their
    line number (matching :func:`~repro.graph.io.read_edge_list`).
    """
    if chunk_edges < 1:
        raise GraphError(f"chunk_edges must be >= 1, got {chunk_edges}")

    def parse(handle: TextIO) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        src: list[int] = []
        dst: list[int] = []
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(sep)
            if len(parts) < 2:
                raise GraphError(f"line {lineno}: expected 'src dst', got {line!r}")
            try:
                s, d = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"line {lineno}: non-integer node id in {line!r}"
                ) from exc
            if s < 0 or d < 0:
                # Parity with read_edge_list: name the offending line here
                # rather than failing later in StreamingBuilder.count with
                # no file context (count keeps its check as a backstop for
                # callers feeding arrays directly).
                raise GraphError(
                    f"line {lineno}: negative node id in {line!r}"
                )
            src.append(s)
            dst.append(d)
            if len(src) >= chunk_edges:
                yield (
                    np.asarray(src, dtype=np.int64),
                    np.asarray(dst, dtype=np.int64),
                )
                src, dst = [], []
        if src:
            yield np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)

    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, encoding="utf-8") as handle:
            yield from parse(handle)
    else:
        yield from parse(path_or_file)


class StreamingBuilder:
    """Two-pass CSR assembly from repeated chunk streams.

    Usage::

        builder = StreamingBuilder()
        for src, dst in stream_edge_chunks(path):      # pass 1
            builder.count(src, dst)
        builder.finish_counting()
        for src, dst in stream_edge_chunks(path):      # pass 2
            builder.fill(src, dst)
        graph = builder.build()

    The two streams must deliver the same edges (any order within the
    stream, identical multiset across passes); :meth:`build` verifies the
    fill is complete.
    """

    def __init__(self, n_nodes_hint: int = 0) -> None:
        try:
            hint = int(operator.index(n_nodes_hint))
        except TypeError as exc:
            raise GraphError(
                f"n_nodes_hint must be an integer, got "
                f"{type(n_nodes_hint).__name__}"
            ) from exc
        if hint < 0:
            raise GraphError(f"n_nodes_hint must be non-negative, got {hint}")
        if hint > _MAX_NODES:
            raise GraphError(
                f"n_nodes_hint {hint} exceeds the supported maximum of "
                f"{_MAX_NODES} nodes"
            )
        self._counts = np.zeros(max(hint, 1), dtype=np.int64)
        self._max_node = -1
        self._indptr: np.ndarray | None = None
        self._cursor: np.ndarray | None = None
        self._indices: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        if needed <= self._counts.size:
            return
        new_size = max(needed, self._counts.size * 2)
        grown = np.zeros(new_size, dtype=np.int64)
        grown[: self._counts.size] = self._counts
        self._counts = grown

    def count(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Pass-1 chunk: accumulate out-degree counts."""
        if self._indptr is not None:
            raise GraphError("count() called after finish_counting()")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst chunks must have equal length")
        if src.size == 0:
            return
        if src.min() < 0 or dst.min() < 0:
            raise GraphError("node ids must be non-negative")
        hi = int(max(src.max(), dst.max()))
        if hi >= _MAX_NODES:
            raise GraphError(
                f"node id {hi} exceeds the supported maximum of "
                f"{_MAX_NODES} nodes"
            )
        self._max_node = max(self._max_node, hi)
        self._grow(hi + 1)
        np.add.at(self._counts, src, 1)

    def finish_counting(self) -> None:
        """Freeze pass 1 and allocate the CSR arrays."""
        if self._indptr is not None:
            raise GraphError("finish_counting() called twice")
        n = self._max_node + 1
        counts = self._counts[:n]
        self._indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._cursor = self._indptr[:-1].copy()
        self._indices = np.empty(int(self._indptr[-1]), dtype=np.int64)

    def fill(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Pass-2 chunk: scatter targets into their final CSR slots."""
        if self._indices is None or self._cursor is None:
            raise GraphError("fill() requires finish_counting() first")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst chunks must have equal length")
        if src.size == 0:
            return
        # Misuse that used to corrupt silently: a negative id would
        # wrap-index the cursor/indptr bookkeeping, and an out-of-range
        # target would flow into the indices array unchecked (build() skips
        # PageGraph validation).  Both are typed errors now.
        if src.min() < 0 or dst.min() < 0:
            raise GraphError("node ids must be non-negative")
        if int(dst.max()) >= self._cursor.size:
            raise GraphError(
                f"fill saw target node {int(dst.max())} never seen during "
                "counting"
            )
        # Within the chunk, group by row to compute per-edge slots without
        # a Python loop: slot = cursor[row] + rank-within-row.
        order = np.argsort(src, kind="stable")
        s_sorted = src[order]
        d_sorted = dst[order]
        uniq, first_idx, counts = np.unique(
            s_sorted, return_index=True, return_counts=True
        )
        if uniq.size and uniq.max() >= self._cursor.size:
            raise GraphError(
                f"fill saw node {int(uniq.max())} never seen during counting"
            )
        within = np.arange(s_sorted.size, dtype=np.int64) - np.repeat(
            first_idx, counts
        )
        slots = self._cursor[s_sorted] + within
        if (slots >= self._indptr[s_sorted + 1]).any():
            raise GraphError("fill overflow: pass-2 edges exceed pass-1 counts")
        self._indices[slots] = d_sorted
        self._cursor[uniq] += counts

    def build(self) -> PageGraph:
        """Finalize: verify completeness, sort + de-duplicate rows."""
        if self._indices is None or self._indptr is None or self._cursor is None:
            raise GraphError("build() requires both passes")
        if not np.array_equal(self._cursor, self._indptr[1:]):
            raise GraphError(
                "fill incomplete: pass-2 edge multiset differs from pass 1"
            )
        n = self._indptr.size - 1
        # Sort within rows, then de-duplicate (PageGraph's invariant).
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        order = np.lexsort((self._indices, row_of))
        sorted_dst = self._indices[order]
        sorted_row = row_of[order]
        keep = np.ones(sorted_dst.size, dtype=bool)
        if sorted_dst.size > 1:
            keep[1:] = (sorted_row[1:] != sorted_row[:-1]) | (
                sorted_dst[1:] != sorted_dst[:-1]
            )
        dedup_dst = sorted_dst[keep]
        dedup_counts = np.bincount(sorted_row[keep], minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(dedup_counts, out=indptr[1:])
        return PageGraph(indptr, dedup_dst, n, validate=False)

    def build_store(
        self,
        directory: str | Path,
        *,
        block_size: int | None = None,
        meta: dict | None = None,
    ):
        """Finalize straight into a :class:`~repro.webgraph.store.ShardedGraphStore`.

        The shard-at-a-time alternative to :meth:`build`: each row block is
        sorted, de-duplicated, gap-encoded, and published independently, so
        no full ``PageGraph`` (or scipy copy of it) is ever assembled.  The
        store is unweighted — blocks decode with uniform ``1/outdeg``
        weights, directly usable as a random-walk transition operand.
        """
        from ..webgraph.store import DEFAULT_BLOCK_SIZE, ShardedStoreWriter

        if self._indices is None or self._indptr is None or self._cursor is None:
            raise GraphError("build_store() requires both passes")
        if not np.array_equal(self._cursor, self._indptr[1:]):
            raise GraphError(
                "fill incomplete: pass-2 edge multiset differs from pass 1"
            )
        block_size = int(block_size or DEFAULT_BLOCK_SIZE)
        n = self._indptr.size - 1
        writer = ShardedStoreWriter(directory, n, block_size=block_size)
        for lo in range(0, n, block_size):
            hi = min(lo + block_size, n)
            edge_lo, edge_hi = int(self._indptr[lo]), int(self._indptr[hi])
            dst = self._indices[edge_lo:edge_hi]
            row_of = np.repeat(
                np.arange(hi - lo, dtype=np.int64),
                np.diff(self._indptr[lo : hi + 1]),
            )
            order = np.lexsort((dst, row_of))
            sorted_dst = dst[order]
            sorted_row = row_of[order]
            keep = np.ones(sorted_dst.size, dtype=bool)
            if sorted_dst.size > 1:
                keep[1:] = (sorted_row[1:] != sorted_row[:-1]) | (
                    sorted_dst[1:] != sorted_dst[:-1]
                )
            counts = np.bincount(sorted_row[keep], minlength=hi - lo)
            local_indptr = np.zeros(hi - lo + 1, dtype=np.int64)
            np.cumsum(counts, out=local_indptr[1:])
            writer.append_block(local_indptr, sorted_dst[keep])
        return writer.finalize(meta=meta)

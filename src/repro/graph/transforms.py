"""Structural graph transforms: reverse, subgraph, relabel, edge overlay.

All transforms are pure — they return new :class:`PageGraph` instances — and
vectorized, operating directly on the CSR arrays.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .pagegraph import PageGraph

__all__ = [
    "reverse_graph",
    "induced_subgraph",
    "relabel_graph",
    "add_edges",
    "remove_self_loops",
]


def reverse_graph(graph: PageGraph) -> PageGraph:
    """Return the graph with every edge direction flipped.

    Used by the spam-proximity computation (Section 5), which runs a biased
    random walk on the *inverted* source graph ``G'_S``.
    """
    src, dst = graph.edge_arrays()
    return PageGraph.from_edges(dst, src, graph.n_nodes)


def induced_subgraph(graph: PageGraph, nodes: np.ndarray | list[int]) -> tuple[PageGraph, np.ndarray]:
    """Restrict the graph to ``nodes`` and relabel them densely.

    Returns ``(subgraph, kept)`` where ``kept`` is the sorted array of
    original node ids; node ``kept[i]`` becomes node ``i`` of the subgraph.
    """
    keep = np.unique(np.asarray(nodes, dtype=np.int64))
    if keep.size and (keep[0] < 0 or keep[-1] >= graph.n_nodes):
        raise GraphError(
            f"subgraph nodes must lie in [0, {graph.n_nodes}), got range "
            f"[{keep[0]}, {keep[-1]}]"
        )
    # Dense old->new map; -1 marks dropped nodes.
    remap = np.full(graph.n_nodes, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size, dtype=np.int64)
    src, dst = graph.edge_arrays()
    mask = (remap[src] >= 0) & (remap[dst] >= 0)
    sub = PageGraph.from_edges(remap[src[mask]], remap[dst[mask]], keep.size)
    return sub, keep


def relabel_graph(graph: PageGraph, mapping: np.ndarray) -> PageGraph:
    """Apply a node permutation: new id of node ``i`` is ``mapping[i]``.

    ``mapping`` must be a permutation of ``range(n_nodes)``.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (graph.n_nodes,):
        raise GraphError(
            f"mapping must have shape ({graph.n_nodes},), got {mapping.shape}"
        )
    seen = np.zeros(graph.n_nodes, dtype=bool)
    valid = (mapping >= 0) & (mapping < graph.n_nodes)
    if not valid.all():
        raise GraphError("mapping values out of range")
    seen[mapping] = True
    if not seen.all():
        raise GraphError("mapping must be a permutation (has repeats/gaps)")
    src, dst = graph.edge_arrays()
    return PageGraph.from_edges(mapping[src], mapping[dst], graph.n_nodes)


def add_edges(
    graph: PageGraph,
    src: np.ndarray | list[int],
    dst: np.ndarray | list[int],
    n_nodes: int | None = None,
) -> PageGraph:
    """Overlay new edges (and possibly new nodes) onto an existing graph.

    This is the primitive the spam scenarios use to inject attack pages: the
    original graph is untouched and a new graph with the union edge set is
    returned.  ``n_nodes`` may exceed the current node count to create fresh
    spam pages.
    """
    new_src = np.asarray(src, dtype=np.int64)
    new_dst = np.asarray(dst, dtype=np.int64)
    if new_src.shape != new_dst.shape:
        raise GraphError("src and dst must have equal length")
    base_src, base_dst = graph.edge_arrays()
    all_src = np.concatenate([base_src, new_src])
    all_dst = np.concatenate([base_dst, new_dst])
    if n_nodes is None:
        hi = graph.n_nodes
        if new_src.size:
            hi = max(hi, int(new_src.max()) + 1, int(new_dst.max()) + 1)
        n_nodes = hi
    return PageGraph.from_edges(all_src, all_dst, int(n_nodes))


def remove_self_loops(graph: PageGraph) -> PageGraph:
    """Drop every ``(i, i)`` edge.

    The page graph conventionally has no self-loops; the *source* graph, by
    contrast, requires them (Section 3.3) — this helper is for the page
    level and for tests.
    """
    src, dst = graph.edge_arrays()
    mask = src != dst
    return PageGraph.from_edges(src[mask], dst[mask], graph.n_nodes)

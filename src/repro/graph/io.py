"""Graph IO: plain edge lists, labeled (URL) edge lists, and binary npz.

Formats
-------
* **Edge list** — one ``src<sep>dst`` integer pair per line, ``#`` comments
  allowed.  This is the interchange format of the public WebGraph-derived
  datasets the paper uses.
* **Labeled edges** — one ``src_url<sep>dst_url`` pair per line; URLs are
  interned to dense ids via :class:`~repro.graph.builder.GraphBuilder`.
* **npz** — the CSR arrays stored via :func:`numpy.savez_compressed`; the
  fast path for benchmark fixtures.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import CodecError, GraphError
from .builder import GraphBuilder
from .pagegraph import PageGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_labeled_edges",
    "save_npz",
    "load_npz",
]

_NPZ_FORMAT_VERSION = 1


def _open_text(path_or_file: str | Path | TextIO, mode: str) -> tuple[TextIO, bool]:
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode, encoding="utf-8"), True
    return path_or_file, False


def read_edge_list(
    path_or_file: str | Path | TextIO,
    *,
    sep: str | None = None,
    n_nodes: int | None = None,
) -> PageGraph:
    """Parse an integer edge list into a :class:`PageGraph`.

    Parameters
    ----------
    path_or_file:
        Filesystem path or open text handle.
    sep:
        Field separator; ``None`` (default) splits on any whitespace.
    n_nodes:
        Optional explicit node count (for trailing isolated nodes).
    """
    handle, owned = _open_text(path_or_file, "r")
    try:
        src_list: list[int] = []
        dst_list: list[int] = []
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(sep)
            if len(parts) < 2:
                raise GraphError(f"line {lineno}: expected 'src dst', got {line!r}")
            try:
                src, dst = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"line {lineno}: non-integer node id in {line!r}") from exc
            if src < 0 or dst < 0:
                raise GraphError(
                    f"line {lineno}: negative node id in {line!r} "
                    "(node ids must be >= 0)"
                )
            src_list.append(src)
            dst_list.append(dst)
    finally:
        if owned:
            handle.close()
    return PageGraph.from_edges(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        n_nodes,
    )


def write_edge_list(
    graph: PageGraph,
    path_or_file: str | Path | TextIO,
    *,
    sep: str = "\t",
    header: bool = True,
) -> None:
    """Write a graph as a ``src<sep>dst`` text edge list."""
    handle, owned = _open_text(path_or_file, "w")
    try:
        if header:
            handle.write(f"# nodes={graph.n_nodes} edges={graph.n_edges}\n")
        src, dst = graph.edge_arrays()
        # Build the whole payload in one shot; far faster than per-line writes.
        buf = _io.StringIO()
        np.savetxt(buf, np.column_stack([src, dst]), fmt="%d", delimiter=sep)
        handle.write(buf.getvalue())
    finally:
        if owned:
            handle.close()


def read_labeled_edges(
    path_or_file: str | Path | TextIO,
    *,
    sep: str | None = None,
) -> tuple[PageGraph, dict[str, int]]:
    """Parse a URL-pair edge list, interning URLs to dense node ids.

    Returns ``(graph, name_to_id)``.
    """
    handle, owned = _open_text(path_or_file, "r")
    builder = GraphBuilder()
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(sep)
            if len(parts) < 2:
                raise GraphError(
                    f"line {lineno}: expected 'src_url dst_url', got {line!r}"
                )
            builder.add_named_edge(parts[0], parts[1])
    finally:
        if owned:
            handle.close()
    graph = builder.build()
    return graph, {str(k): v for k, v in builder.names.items()}


def save_npz(graph: PageGraph, path: str | Path) -> None:
    """Serialize a graph's CSR arrays with :func:`numpy.savez_compressed`."""
    np.savez_compressed(
        path,
        format_version=np.int64(_NPZ_FORMAT_VERSION),
        n_nodes=np.int64(graph.n_nodes),
        indptr=graph.indptr,
        indices=graph.indices,
    )


def load_npz(path: str | Path) -> PageGraph:
    """Load a graph previously saved with :func:`save_npz`.

    The archive's ``format_version`` is verified before any array is
    trusted; a tampered, truncated, or foreign ``.npz`` raises
    :class:`~repro.errors.CodecError` rather than producing a silently
    wrong graph.
    """
    with np.load(path) as data:
        try:
            version = int(data["format_version"])
        except KeyError as exc:
            raise CodecError(
                f"{path}: missing field {exc} — not a repro graph file"
            ) from exc
        if version != _NPZ_FORMAT_VERSION:
            raise CodecError(
                f"{path}: unsupported graph format version {version} "
                f"(expected {_NPZ_FORMAT_VERSION})"
            )
        try:
            n_nodes = int(data["n_nodes"])
            indptr = data["indptr"]
            indices = data["indices"]
        except KeyError as exc:
            raise CodecError(
                f"{path}: missing field {exc} — not a repro graph file"
            ) from exc
    return PageGraph(indptr, indices, n_nodes)

"""Row-stochastic transition matrices over page and source graphs.

The paper's page-level transition matrix is

.. math::

    M_{ij} = 1 / o(p_i) \\text{ if } (p_i, p_j) \\in L_P, \\text{ else } 0

Dangling rows (``o(p_i) = 0``) are all-zero in this definition; the ranking
engines handle the missing probability mass explicitly via a dangling
strategy (see :mod:`repro.ranking.dangling`).  This module provides the
vectorized assembly and normalization kernels used everywhere else.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from .pagegraph import PageGraph

__all__ = [
    "transition_matrix",
    "row_normalize",
    "row_sums",
    "is_row_stochastic",
]


def transition_matrix(graph: PageGraph, dtype: np.dtype | type = np.float64) -> sp.csr_matrix:
    """Build the uniform transition matrix ``M`` of a graph.

    Each existing edge ``(i, j)`` gets probability ``1 / out_degree(i)``;
    dangling rows are left all-zero (substochastic), matching the paper's
    definition of ``M``.

    Parameters
    ----------
    graph:
        The directed graph.
    dtype:
        Floating dtype of the result (default ``float64``).

    Returns
    -------
    scipy.sparse.csr_matrix
        A ``(n, n)`` row-(sub)stochastic matrix.
    """
    out = graph.out_degrees
    # Per-edge inverse out-degree, expanded to CSR data layout without a
    # Python loop: repeat each row's 1/deg across its nnz slots.
    with np.errstate(divide="ignore"):
        inv = np.where(out > 0, 1.0 / np.maximum(out, 1), 0.0)
    data = np.repeat(inv, out).astype(dtype, copy=False)
    return sp.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()),
        shape=(graph.n_nodes, graph.n_nodes),
    )


def row_sums(matrix: sp.spmatrix | sp.sparray) -> np.ndarray:
    """Dense 1-D array of row sums of a sparse matrix."""
    return np.asarray(matrix.sum(axis=1)).ravel()


def row_normalize(matrix: sp.spmatrix | sp.sparray, *, copy: bool = True) -> sp.csr_matrix:
    """Scale each nonzero row of ``matrix`` to sum to one.

    All-zero rows are left all-zero (substochastic), mirroring the dangling
    convention of :func:`transition_matrix`.  Negative entries are rejected
    because transition probabilities must be non-negative.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix with non-negative entries.
    copy:
        If False and ``matrix`` is already CSR, normalize its data in place.
        Non-floating input (e.g. integer edge counts) cannot hold the
        fractional scale factors, so its data is promoted to float64 —
        ``copy=False`` then still reallocates the data array (the input
        matrix object is reused, its entries are not mutated).
    """
    csr = sp.csr_matrix(matrix, copy=copy) if copy or not sp.issparse(matrix) else matrix.tocsr()
    if not np.issubdtype(csr.dtype, np.floating):
        csr = sp.csr_matrix(
            (csr.data.astype(np.float64), csr.indices, csr.indptr),
            shape=csr.shape,
        )
    if csr.nnz and csr.data.min() < 0:
        raise GraphError("transition weights must be non-negative")
    sums = row_sums(csr)
    with np.errstate(divide="ignore"):
        scale = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    # Expand the per-row scale to per-nonzero entries via indptr differences.
    nnz_per_row = np.diff(csr.indptr)
    csr.data *= np.repeat(scale, nnz_per_row)
    return csr


def is_row_stochastic(
    matrix: sp.spmatrix | sp.sparray,
    *,
    atol: float = 1e-10,
    allow_zero_rows: bool = True,
) -> bool:
    """Check whether every row of ``matrix`` sums to one (within ``atol``).

    Parameters
    ----------
    allow_zero_rows:
        When True (default), all-zero rows — dangling nodes — also pass.
    """
    sums = row_sums(matrix)
    ok = np.abs(sums - 1.0) <= atol
    if allow_zero_rows:
        ok |= sums == 0.0
    nonneg = True
    if sp.issparse(matrix):
        coo = matrix.tocoo()
        nonneg = bool(coo.data.size == 0 or coo.data.min() >= -atol)
    return bool(ok.all() and nonneg)

"""Equal-size rank bucketing (the Fig. 5 protocol).

"We sorted the sources in decreasing order of scores and divided the
sources into 20 buckets of equal number of sources ... we plot the number
of actual spam sources in each bucket."
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..ranking.base import RankingResult

__all__ = ["bucket_counts", "spam_bucket_distribution", "bucket_assignment"]


def bucket_assignment(result: RankingResult, n_buckets: int) -> np.ndarray:
    """Bucket index per item: 0 = top-ranked bucket, ``n_buckets - 1`` = worst.

    Buckets differ in size by at most one item.
    """
    n_buckets = int(n_buckets)
    if n_buckets < 1:
        raise GraphError(f"n_buckets must be >= 1, got {n_buckets}")
    if n_buckets > result.n:
        raise GraphError(
            f"cannot split {result.n} items into {n_buckets} non-empty buckets"
        )
    ranks = result.ranks()  # 0 = best
    # Positions [0, n) mapped to buckets of near-equal size.
    return (ranks * n_buckets) // result.n


def bucket_counts(
    result: RankingResult, members: np.ndarray, n_buckets: int = 20
) -> np.ndarray:
    """Count how many of ``members`` fall into each rank bucket.

    Returns an ``int64`` array of length ``n_buckets``; index 0 is the
    bucket of top-ranked items (Fig. 5's x-axis runs 1..20 the same way).
    """
    members = np.unique(np.asarray(members, dtype=np.int64))
    if members.size and (members[0] < 0 or members[-1] >= result.n):
        raise GraphError(
            f"member ids must lie in [0, {result.n}), got range "
            f"[{members[0]}, {members[-1]}]"
        )
    buckets = bucket_assignment(result, n_buckets)
    return np.bincount(buckets[members], minlength=n_buckets).astype(np.int64)


def spam_bucket_distribution(
    baseline: RankingResult,
    throttled: RankingResult,
    spam_sources: np.ndarray,
    n_buckets: int = 20,
) -> dict[str, np.ndarray]:
    """Fig. 5's two series: spam counts per bucket under both rankings."""
    if baseline.n != throttled.n:
        raise GraphError(
            f"rankings cover different item counts: {baseline.n} vs {throttled.n}"
        )
    return {
        "baseline": bucket_counts(baseline, spam_sources, n_buckets),
        "throttled": bucket_counts(throttled, spam_sources, n_buckets),
    }

"""Evaluation harness: metrics, bucketing, and per-figure experiment drivers.

:mod:`repro.eval.experiments` contains one driver per paper artifact
(``table1``, ``fig2`` ... ``fig7``); the benchmark files under
``benchmarks/`` are thin timed wrappers around these drivers, and the
integration tests assert the drivers' directional claims.
"""

from .percentile import percentile_of, percentile_gain
from .buckets import bucket_counts, spam_bucket_distribution
from .correlation import spearman_rho, kendall_tau, top_k_overlap
from .reporting import (
    convergence_row,
    format_convergence,
    format_series,
    format_table,
    from_json,
    to_json,
)
from .experiments import (
    run_table1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
)
from .manifest import ArtifactRecord, ReproductionManifest, run_all

__all__ = [
    "percentile_of",
    "percentile_gain",
    "bucket_counts",
    "spam_bucket_distribution",
    "spearman_rho",
    "kendall_tau",
    "top_k_overlap",
    "format_table",
    "format_series",
    "convergence_row",
    "format_convergence",
    "to_json",
    "from_json",
    "run_table1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_all",
    "ArtifactRecord",
    "ReproductionManifest",
]

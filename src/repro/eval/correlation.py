"""Rank-agreement metrics between two rankings.

Used by the weighting/κ-strategy ablations to quantify how much a defence
perturbs the ranking of *legitimate* sources (a defence that scrambles the
whole ranking is useless even if it demotes spam).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..errors import GraphError
from ..ranking.base import RankingResult

__all__ = ["spearman_rho", "kendall_tau", "top_k_overlap"]


def _paired_scores(a: RankingResult, b: RankingResult) -> tuple[np.ndarray, np.ndarray]:
    if a.n != b.n:
        raise GraphError(f"rankings cover different item counts: {a.n} vs {b.n}")
    return a.scores, b.scores


def spearman_rho(a: RankingResult, b: RankingResult) -> float:
    """Spearman rank correlation of two rankings over the same items."""
    x, y = _paired_scores(a, b)
    rho, _ = stats.spearmanr(x, y)
    return float(rho)


def kendall_tau(a: RankingResult, b: RankingResult) -> float:
    """Kendall tau-b rank correlation of two rankings over the same items."""
    x, y = _paired_scores(a, b)
    tau, _ = stats.kendalltau(x, y)
    return float(tau)


def top_k_overlap(a: RankingResult, b: RankingResult, k: int) -> float:
    """Jaccard overlap of the two rankings' top-k sets (in [0, 1])."""
    if a.n != b.n:
        raise GraphError(f"rankings cover different item counts: {a.n} vs {b.n}")
    k = int(k)
    if not 1 <= k <= a.n:
        raise GraphError(f"k must lie in [1, {a.n}], got {k}")
    sa = set(a.top(k).tolist())
    sb = set(b.top(k).tolist())
    return len(sa & sb) / len(sa | sb)

"""Fixed-width table and series rendering for experiment output.

The benchmark harness prints "the same rows/series the paper reports";
these helpers keep that output aligned and dependency-free.
:func:`to_json` / :func:`from_json` additionally persist result rows in a
machine-readable form so downstream plotting can consume the artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..ranking.base import RankingResult

__all__ = [
    "format_table",
    "format_series",
    "convergence_row",
    "format_convergence",
    "to_json",
    "from_json",
]


def _fmt_cell(value: object, width: int) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            text = f"{value:.3e}"
        else:
            text = f"{value:,.3f}".rstrip("0").rstrip(".")
    elif isinstance(value, (int, np.integer)):
        text = f"{value:,}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str = "",
) -> str:
    """Render dict-rows as an aligned ASCII table.

    >>> print(format_table([{"a": 1, "b": 2.5}], title="demo"))
    demo
    a    b
    -  ---
    1  2.5
    """
    if not rows:
        return title
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(c), *(len(_fmt_cell(r.get(c, ""), 0).strip()) for r in rows))
        for c in columns
    }
    header = "  ".join(c.rjust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(_fmt_cell(r.get(c, ""), widths[c]) for c in columns) for r in rows
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(parts)


def format_series(
    x: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    x_name: str = "x",
    title: str = "",
) -> str:
    """Render aligned x/series columns (one figure's plotted data)."""
    rows = []
    for i, xi in enumerate(x):
        row: dict[str, object] = {x_name: xi}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, [x_name, *series.keys()], title=title)


def convergence_row(result: "RankingResult") -> dict[str, object]:
    """One table row summarizing a ranking's convergence record."""
    info = result.convergence
    tail = info.residual_history[-5:]
    return {
        "label": result.label or "ranking",
        "n": result.n,
        "converged": "yes" if info.converged else "NO",
        "iterations": info.iterations,
        "residual": info.residual,
        "last_5": " ".join(f"{r:.1e}" for r in tail) if tail else "-",
    }


def format_convergence(
    results: Iterable["RankingResult"], *, title: str = "convergence"
) -> str:
    """Render convergence summaries of several rankings.

    Combines a per-ranking table (via :func:`convergence_row`) with the
    one-line :meth:`~repro.ranking.base.ConvergenceInfo.convergence_summary`
    of each, so reports show both the comparable numbers and the residual
    tail curve.
    """
    results = list(results)
    table = format_table([convergence_row(r) for r in results], title=title)
    lines = [
        f"{r.label or 'ranking'}: {r.convergence_summary()}" for r in results
    ]
    return table + ("\n" + "\n".join(lines) if lines else "")


class _ResultEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - stdlib override
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def to_json(
    rows: Sequence[Mapping[str, object]],
    path: str | Path | None = None,
    *,
    meta: Mapping[str, object] | None = None,
) -> str:
    """Serialize result rows (plus optional metadata) to JSON.

    Returns the JSON text; also writes it to ``path`` when given.
    """
    payload = {"meta": dict(meta or {}), "rows": [dict(r) for r in rows]}
    text = json.dumps(payload, indent=2, cls=_ResultEncoder, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n", encoding="utf-8")
    return text


def from_json(source: str | Path) -> tuple[list[dict[str, object]], dict[str, object]]:
    """Load rows + metadata written by :func:`to_json`.

    ``source`` may be a path or raw JSON text.
    """
    text = source
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".json")
    ):
        text = Path(source).read_text(encoding="utf-8")
    payload = json.loads(text)
    return list(payload.get("rows", [])), dict(payload.get("meta", {}))

"""Per-figure experiment drivers.

One driver per paper artifact — ``run_table1`` and ``run_fig2`` through
``run_fig7`` — each returning a structured result with a ``format()``
method that prints the same rows/series the paper reports.  The benchmark
files under ``benchmarks/`` time these drivers; the integration tests
assert their directional claims (who wins, by roughly what factor).

All drivers are deterministic given their ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import closed_form as cf
from ..analysis.amplification import measure_amplification
from ..analysis.resilience import ResilienceRecord, resilience_summary
from ..config import (
    ExperimentParams,
    RankingParams,
    SpamProximityParams,
    ThrottleParams,
)
from ..datasets.registry import load_dataset
from ..datasets.spam_labels import sample_seed_set
from ..errors import ConfigError
from ..ranking.pagerank import pagerank
from ..ranking.sourcerank import sourcerank
from ..ranking.srsourcerank import spam_resilient_sourcerank
from ..sources.sourcegraph import SourceGraph
from ..spam.cross_source import CrossSourceAttack
from ..spam.intra_source import IntraSourceAttack
from ..spam.link_farm import LinkFarmAttack
from ..spam.scenario import evaluate_attack, pick_targets
from ..throttle.spam_proximity import spam_proximity
from ..throttle.strategies import assign_kappa
from ..throttle.vector import ThrottleVector
from .buckets import spam_bucket_distribution
from .reporting import format_series, format_table

__all__ = [
    "Table1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig67Result",
    "run_table1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
]

_DATASET_NAMES = ("uk2002_like", "it2004_like", "wb2001_like")


# ======================================================================
# Table 1 — source graph summary
# ======================================================================

@dataclass(frozen=True, slots=True)
class Table1Result:
    """Source-graph summaries for the three dataset analogues."""

    rows: tuple[dict[str, object], ...]

    def format(self) -> str:
        """Render the Table 1 analogue."""
        return format_table(
            list(self.rows),
            [
                "dataset",
                "sources",
                "edges",
                "edges_per_source",
                "paper_sources",
                "paper_edges",
                "paper_edges_per_source",
            ],
            title="Table 1: Source Summary (synthetic analogues vs paper)",
        )


def run_table1(names: tuple[str, ...] = _DATASET_NAMES) -> Table1Result:
    """Build each dataset's source graph and report its size (Table 1)."""
    rows = []
    for name in names:
        ds = load_dataset(name, with_spam=False)
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        n_edges = sg.n_edges(count_self=False)
        spec = ds.spec
        rows.append(
            {
                "dataset": name,
                "sources": ds.n_sources,
                "edges": n_edges,
                "edges_per_source": n_edges / ds.n_sources,
                "paper_sources": spec.paper_sources,
                "paper_edges": spec.paper_edges,
                "paper_edges_per_source": (
                    spec.paper_edges / spec.paper_sources if spec.paper_sources else 0.0
                ),
            }
        )
    return Table1Result(rows=tuple(rows))


# ======================================================================
# Fig. 2 — self-tuning boost vs baseline kappa
# ======================================================================

@dataclass(frozen=True, slots=True)
class Fig2Result:
    """Max factor change in σ from tuning the self-weight κ → 1."""

    kappas: np.ndarray
    curves: dict[float, np.ndarray]  # alpha -> boost factors

    def format(self) -> str:
        """Render the Fig. 2 series."""
        series = {f"alpha={a:.2f}": c for a, c in self.curves.items()}
        return format_series(
            np.round(self.kappas, 3).tolist(),
            {k: v.tolist() for k, v in series.items()},
            x_name="kappa",
            title="Fig 2: max SR-SourceRank gain from tuning kappa -> 1",
        )


def run_fig2(
    alphas: tuple[float, ...] = (0.80, 0.85, 0.90),
    kappas: np.ndarray | None = None,
) -> Fig2Result:
    """Compute the Fig. 2 curves: boost factor ``(1 − ακ)/(1 − α)``."""
    if kappas is None:
        kappas = np.linspace(0.0, 1.0, 21)
    kappas = np.asarray(kappas, dtype=np.float64)
    curves = {float(a): cf.self_tuning_boost(kappas, a) for a in alphas}
    return Fig2Result(kappas=kappas, curves=curves)


# ======================================================================
# Fig. 3 — additional colluding sources needed under kappa'
# ======================================================================

@dataclass(frozen=True, slots=True)
class Fig3Result:
    """Percent extra colluding sources needed at throttle κ' vs κ=0."""

    kappa_primes: np.ndarray
    analytic_pct: np.ndarray
    empirical_pct: np.ndarray | None
    alpha: float

    def format(self) -> str:
        """Render the Fig. 3 series (plus empirical validation if run)."""
        series: dict[str, list[float]] = {"analytic_%": self.analytic_pct.tolist()}
        if self.empirical_pct is not None:
            series["empirical_%"] = self.empirical_pct.tolist()
        return format_series(
            np.round(self.kappa_primes, 3).tolist(),
            series,
            x_name="kappa'",
            title=f"Fig 3: extra sources needed vs kappa=0 (alpha={self.alpha})",
        )


def _empirical_extra_sources(
    kappa_prime: float,
    alpha: float,
    *,
    x_base: int = 20,
    n_background: int = 400,
    params: RankingParams,
) -> float:
    """Simulate Fig. 3's question on an actual source graph.

    Builds a background web of sources plus a target with ``x`` colluders
    at κ=0, measures σ₀, then finds (by linear interpolation over integer
    x') how many κ'-throttled colluders reach the same σ₀.
    """
    import scipy.sparse as sp

    def sigma_target(x: int, kappa: float) -> float:
        # Background sources link among themselves in a ring; the target
        # (id 0) holds only a self-edge; colluders (ids 1..x) send
        # (1 - kappa) to the target and kappa to themselves.
        n = 1 + x + n_background
        rows, cols, vals = [0], [0], [1.0]
        for i in range(1, x + 1):
            rows += [i, i]
            cols += [i, 0]
            vals += [kappa, 1.0 - kappa]
        base = 1 + x
        for j in range(n_background):
            rows.append(base + j)
            cols.append(base + (j + 1) % n_background)
            vals.append(1.0)
        matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
        sg = SourceGraph.from_weight_matrix(matrix)
        result = spam_resilient_sourcerank(sg, None, params)
        # Compare raw (unnormalized-by-|S|) stationary scores scaled back
        # to a common |S| so different x are comparable.
        return result.score_of(0) * n

    target_score = sigma_target(x_base, 0.0)
    # Walk x' upward until the throttled configuration matches.
    prev_x, prev_s = 0, sigma_target(0, kappa_prime)
    for x_prime in range(1, 40 * x_base + 1):
        s = sigma_target(x_prime, kappa_prime)
        if s >= target_score:
            # Linear interpolation between the bracketing integers.
            frac = (target_score - prev_s) / (s - prev_s) if s > prev_s else 1.0
            x_star = prev_x + frac * (x_prime - prev_x)
            return 100.0 * (x_star / x_base - 1.0)
        prev_x, prev_s = x_prime, s
    raise ConfigError(
        f"empirical Fig. 3 search did not bracket the target at kappa'={kappa_prime}"
    )


def run_fig3(
    alpha: float = 0.85,
    kappa_primes: np.ndarray | None = None,
    *,
    empirical: bool = False,
    params: RankingParams | None = None,
) -> Fig3Result:
    """Compute Fig. 3: percent extra sources needed at κ' (vs κ=0).

    Parameters
    ----------
    empirical:
        When True, also simulate each point on an explicit source graph
        (slower; the paper's curve is analytic).
    """
    if kappa_primes is None:
        kappa_primes = np.asarray([0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99])
    kappa_primes = np.asarray(kappa_primes, dtype=np.float64)
    analytic = cf.additional_sources_pct(kappa_primes, alpha)
    empirical_pct = None
    if empirical:
        params = params or RankingParams()
        empirical_pct = np.asarray(
            [
                _empirical_extra_sources(float(kp), alpha, params=params)
                for kp in kappa_primes
            ]
        )
    return Fig3Result(
        kappa_primes=kappa_primes,
        analytic_pct=analytic,
        empirical_pct=empirical_pct,
        alpha=alpha,
    )


# ======================================================================
# Fig. 4 — PageRank vs SR-SourceRank amplification, three scenarios
# ======================================================================

@dataclass(frozen=True, slots=True)
class Fig4Result:
    """Amplification curves for one collusion scenario (Fig. 4a/b/c)."""

    scenario: int
    taus: np.ndarray
    pagerank_curve: np.ndarray
    srsr_curves: dict[float, np.ndarray]  # kappa -> amplification
    empirical: dict[str, dict[int, float]] | None

    def format(self) -> str:
        """Render the Fig. 4 panel's series."""
        series: dict[str, list[float]] = {
            "pagerank": self.pagerank_curve.tolist()
        }
        for kappa, curve in self.srsr_curves.items():
            series[f"srsr(k={kappa:g})"] = curve.tolist()
        text = format_series(
            self.taus.tolist(),
            series,
            x_name="tau",
            title=f"Fig 4 scenario {self.scenario}: score amplification",
        )
        if self.empirical:
            rows = [
                {"ranking": name, **{f"tau={t}": v for t, v in pts.items()}}
                for name, pts in self.empirical.items()
            ]
            text += "\n\nempirical (simulated attacks):\n" + format_table(rows)
        return text


def _fig4_empirical(
    scenario: int,
    taus: tuple[int, ...],
    params: RankingParams,
    seed: int,
) -> dict[str, dict[int, float]]:
    """Simulate the scenario's attacks on the tiny dataset."""
    ds = load_dataset("tiny", with_spam=False, seed_override=seed)
    rng = np.random.default_rng(seed)
    clean_sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    sr_before = spam_resilient_sourcerank(clean_sg, None, params)
    pr_before = pagerank(ds.graph, params)
    targets = pick_targets(sr_before, ds.assignment, rng, n_targets=1)
    target_source, target_page = targets[0]
    out: dict[str, dict[int, float]] = {"pagerank": {}, "srsr": {}}
    for tau in taus:
        if scenario == 1:
            attack = IntraSourceAttack(target_page, tau)
        elif scenario == 2:
            attack = LinkFarmAttack(target_page, tau, n_sources=1)
        else:
            attack = LinkFarmAttack(target_page, tau, n_sources=min(tau, 10))
        ev = evaluate_attack(
            ds.graph,
            ds.assignment,
            attack,
            params=params,
            pagerank_before=pr_before,
            srsr_before=sr_before,
        )
        out["pagerank"][tau] = ev.pagerank_record.amplification
        out["srsr"][tau] = ev.srsr_record.amplification
    return out


def run_fig4(
    scenario: int,
    *,
    taus: np.ndarray | None = None,
    kappas: tuple[float, ...] = (0.0, 0.5, 0.9, 0.99),
    alpha: float = 0.85,
    n_pages: int = 100_000,
    n_sources: int = 10_000,
    empirical: bool = False,
    params: RankingParams | None = None,
    seed: int = 2007,
) -> Fig4Result:
    """Compute one Fig. 4 panel: PR vs SR-SourceRank amplification.

    Parameters
    ----------
    scenario:
        1 — colluding pages inside the target source; 2 — in one colluding
        source; 3 — spread over many colluding sources (τ then counts
        colluding *sources*, matching the paper's x).
    empirical:
        Also simulate the attacks on a small synthetic web.
    """
    if scenario not in (1, 2, 3):
        raise ConfigError(f"scenario must be 1, 2, or 3, got {scenario}")
    if taus is None:
        taus = np.asarray([0, 1, 10, 100, 1000])
    taus = np.asarray(taus, dtype=np.int64)
    pr_curve = cf.pagerank_amplification(taus, alpha, n_pages)
    srsr_curves: dict[float, np.ndarray] = {}
    for kappa in kappas:
        if scenario == 1:
            curve = cf.srsr_amplification_scenario1(taus, kappa, alpha)
        elif scenario == 2:
            curve = cf.srsr_amplification_scenario2(taus, kappa, alpha, n_sources)
        else:
            curve = cf.srsr_amplification_scenario3(taus, kappa, alpha, n_sources)
        srsr_curves[float(kappa)] = curve
    empirical_pts = None
    if empirical:
        params = params or RankingParams()
        empirical_pts = _fig4_empirical(
            scenario, tuple(int(t) for t in taus if t > 0), params, seed
        )
    return Fig4Result(
        scenario=scenario,
        taus=taus,
        pagerank_curve=pr_curve,
        srsr_curves=srsr_curves,
        empirical=empirical_pts,
    )


# ======================================================================
# Fig. 5 — rank distribution of spam sources
# ======================================================================

@dataclass(frozen=True, slots=True)
class Fig5Result:
    """Spam counts per rank bucket, baseline vs throttled."""

    dataset: str
    n_buckets: int
    n_spam: int
    n_seeds: int
    baseline_counts: np.ndarray
    throttled_counts: np.ndarray

    def format(self) -> str:
        """Render the Fig. 5 histogram data."""
        return format_series(
            list(range(1, self.n_buckets + 1)),
            {
                "baseline_sourcerank": self.baseline_counts.tolist(),
                "sr_sourcerank": self.throttled_counts.tolist(),
            },
            x_name="bucket",
            title=(
                f"Fig 5: spam sources per rank bucket on {self.dataset} "
                f"({self.n_spam} spam, {self.n_seeds} seeded)"
            ),
        )

    def mass_weighted_bucket(self) -> tuple[float, float]:
        """Mean bucket index of spam (baseline, throttled); higher = more
        demoted."""
        idx = np.arange(self.n_buckets, dtype=np.float64)
        b = float((self.baseline_counts * idx).sum() / max(self.baseline_counts.sum(), 1))
        t = float((self.throttled_counts * idx).sum() / max(self.throttled_counts.sum(), 1))
        return b, t


def run_fig5(
    dataset: str = "wb2001_like",
    params: ExperimentParams | None = None,
    *,
    full_throttle: str = "dangling",
) -> Fig5Result:
    """Run the Fig. 5 protocol on a dataset with planted spam.

    1. seed the spam-proximity walk with ~10 % of the ground-truth spam;
    2. throttle the top-k proximity sources completely (κ=1);
    3. rank with baseline SourceRank and with SR-SourceRank;
    4. bucket all sources and count ground-truth spam per bucket.

    ``full_throttle`` defaults to ``"dangling"`` because the literal
    Section 3.3 transform cannot demote κ=1 sources below the ``1/|S|``
    level (their mandatory self-loop amplifies whatever in-flow survives),
    contradicting the demotion Fig. 5 reports — see
    :mod:`repro.throttle.transform` and EXPERIMENTS.md for the
    reconciliation.
    """
    params = params or ExperimentParams()
    ds = load_dataset(dataset)
    rng = np.random.default_rng(params.seed)
    seeds = sample_seed_set(ds.spam_sources, params.seed_fraction, rng)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)

    proximity = spam_proximity(sg, seeds, params.proximity)
    kappa = assign_kappa(proximity.scores, params.throttle)

    baseline = sourcerank(sg, params.ranking)
    throttled = spam_resilient_sourcerank(
        sg, kappa, params.ranking, full_throttle=full_throttle
    )

    dist = spam_bucket_distribution(
        baseline, throttled, ds.spam_sources, params.n_buckets
    )
    return Fig5Result(
        dataset=dataset,
        n_buckets=params.n_buckets,
        n_spam=int(ds.spam_sources.size),
        n_seeds=int(seeds.size),
        baseline_counts=dist["baseline"],
        throttled_counts=dist["throttled"],
    )


# ======================================================================
# Fig. 6 / Fig. 7 — intra- and inter-source manipulation
# ======================================================================

@dataclass(frozen=True, slots=True)
class Fig67Result:
    """Average percentile increases per attack case (one Fig. 6/7 panel)."""

    figure: str
    dataset: str
    cases: tuple[int, ...]
    pagerank_records: tuple[ResilienceRecord, ...]
    srsr_records: tuple[ResilienceRecord, ...]

    def format(self) -> str:
        """Render the panel's series."""
        case_labels = [chr(ord("A") + i) for i in range(len(self.cases))]
        return format_series(
            [f"{label}({c})" for label, c in zip(case_labels, self.cases)],
            {
                "pagerank_pct_gain": [
                    r.mean_percentile_gain for r in self.pagerank_records
                ],
                "srsr_pct_gain": [
                    r.mean_percentile_gain for r in self.srsr_records
                ],
            },
            x_name="case",
            title=(
                f"{self.figure} on {self.dataset}: mean ranking-percentile "
                "increase of the target"
            ),
        )


def _run_manipulation(
    figure: str,
    dataset: str,
    params: ExperimentParams,
    *,
    cross_source: bool,
) -> Fig67Result:
    """Shared Fig. 6 / Fig. 7 protocol."""
    ds = load_dataset(dataset)
    rng = np.random.default_rng(params.seed)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)

    # Throttle from spam proximity, exactly as in Fig. 5, so "not throttled"
    # targets can be excluded per the protocol.
    seeds = sample_seed_set(ds.spam_sources, params.seed_fraction, rng)
    proximity = spam_proximity(sg, seeds, params.proximity)
    kappa = assign_kappa(proximity.scores, params.throttle)
    throttled_sources = np.flatnonzero(kappa.throttled_mask())

    pr_before = pagerank(ds.graph, params.ranking)
    sr_before = spam_resilient_sourcerank(sg, kappa, params.ranking)

    pairs = pick_targets(
        sr_before,
        ds.assignment,
        rng,
        n_targets=params.n_targets,
        bottom_fraction=params.bottom_fraction,
        exclude_sources=np.union1d(throttled_sources, ds.spam_sources),
    )
    # Colluding partner per target (Fig. 7): another bottom-50 % source.
    colluders: list[int] = []
    if cross_source:
        taken = {s for s, _ in pairs}
        eligible_order = sr_before.order()
        cutoff = int(np.ceil(sr_before.n * (1.0 - params.bottom_fraction)))
        bottom = [
            int(s)
            for s in eligible_order[cutoff:]
            if int(s) not in taken
            and s not in throttled_sources
            and s not in ds.spam_sources
        ]
        chosen = rng.choice(np.asarray(bottom), size=len(pairs), replace=False)
        colluders = [int(c) for c in chosen]

    pr_rows: list[ResilienceRecord] = []
    sr_rows: list[ResilienceRecord] = []
    for case in params.cases:
        pr_records = []
        sr_records = []
        for idx, (source, page) in enumerate(pairs):
            if cross_source:
                attack = CrossSourceAttack(page, colluders[idx], case)
            else:
                attack = IntraSourceAttack(page, case)
            ev = evaluate_attack(
                ds.graph,
                ds.assignment,
                attack,
                kappa=kappa,
                params=params.ranking,
                pagerank_before=pr_before,
                srsr_before=sr_before,
            )
            pr_records.append(ev.pagerank_record)
            sr_records.append(ev.srsr_record)
        pr_rows.append(resilience_summary("pagerank", case, pr_records))
        sr_rows.append(resilience_summary("srsr", case, sr_records))
    return Fig67Result(
        figure=figure,
        dataset=dataset,
        cases=params.cases,
        pagerank_records=tuple(pr_rows),
        srsr_records=tuple(sr_rows),
    )


def run_fig6(
    dataset: str = "uk2002_like",
    params: ExperimentParams | None = None,
) -> Fig67Result:
    """Fig. 6: link manipulation *within* a source (cases A–D)."""
    return _run_manipulation(
        "Fig 6 (intra-source)", dataset, params or ExperimentParams(), cross_source=False
    )


def run_fig7(
    dataset: str = "uk2002_like",
    params: ExperimentParams | None = None,
) -> Fig67Result:
    """Fig. 7: link manipulation *across* sources (cases A–D)."""
    return _run_manipulation(
        "Fig 7 (inter-source)", dataset, params or ExperimentParams(), cross_source=True
    )

"""Run-everything manifest: all paper artifacts in one call, persisted.

:func:`run_all` executes every experiment driver (Table 1, Fig. 2–7),
renders each artifact's series, writes both the text and a JSON form
under an output directory, and returns a :class:`ReproductionManifest`
summarizing what was produced — the machine-readable companion to
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..config import ExperimentParams
from ..errors import ConfigError
from .experiments import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
)
from .reporting import to_json

__all__ = ["ArtifactRecord", "ReproductionManifest", "run_all"]


@dataclass(frozen=True, slots=True)
class ArtifactRecord:
    """One regenerated paper artifact."""

    artifact: str
    seconds: float
    text_path: str
    json_path: str


@dataclass(frozen=True, slots=True)
class ReproductionManifest:
    """Everything one :func:`run_all` invocation produced."""

    out_dir: str
    seed: int
    records: tuple[ArtifactRecord, ...] = field(default_factory=tuple)

    @property
    def artifacts(self) -> tuple[str, ...]:
        """Names of the regenerated artifacts, in run order."""
        return tuple(r.artifact for r in self.records)

    def total_seconds(self) -> float:
        """Wall time across all artifacts."""
        return sum(r.seconds for r in self.records)


def _rows_of(result: object) -> list[dict[str, object]]:
    """Extract JSON-able rows from a driver result (duck-typed)."""
    if hasattr(result, "rows"):  # Table1Result
        return [dict(r) for r in result.rows]  # type: ignore[attr-defined]
    if hasattr(result, "curves"):  # Fig2Result
        rows = []
        for i, kappa in enumerate(result.kappas):  # type: ignore[attr-defined]
            row: dict[str, object] = {"kappa": float(kappa)}
            for alpha, curve in result.curves.items():  # type: ignore[attr-defined]
                row[f"alpha_{alpha:g}"] = float(curve[i])
            rows.append(row)
        return rows
    if hasattr(result, "analytic_pct"):  # Fig3Result
        rows = []
        for i, kp in enumerate(result.kappa_primes):  # type: ignore[attr-defined]
            row = {"kappa_prime": float(kp), "analytic_pct": float(result.analytic_pct[i])}  # type: ignore[attr-defined]
            if result.empirical_pct is not None:  # type: ignore[attr-defined]
                row["empirical_pct"] = float(result.empirical_pct[i])  # type: ignore[attr-defined]
            rows.append(row)
        return rows
    if hasattr(result, "srsr_curves"):  # Fig4Result
        rows = []
        for i, tau in enumerate(result.taus):  # type: ignore[attr-defined]
            row = {"tau": int(tau), "pagerank": float(result.pagerank_curve[i])}  # type: ignore[attr-defined]
            for kappa, curve in result.srsr_curves.items():  # type: ignore[attr-defined]
                row[f"srsr_k{kappa:g}"] = float(curve[i])
            rows.append(row)
        return rows
    if hasattr(result, "baseline_counts"):  # Fig5Result
        return [
            {
                "bucket": i + 1,
                "baseline": int(result.baseline_counts[i]),  # type: ignore[attr-defined]
                "throttled": int(result.throttled_counts[i]),  # type: ignore[attr-defined]
            }
            for i in range(result.n_buckets)  # type: ignore[attr-defined]
        ]
    if hasattr(result, "pagerank_records"):  # Fig67Result
        return [
            {
                "case": pr.case,
                "pagerank_pct_gain": pr.mean_percentile_gain,
                "srsr_pct_gain": sr.mean_percentile_gain,
            }
            for pr, sr in zip(result.pagerank_records, result.srsr_records)  # type: ignore[attr-defined]
        ]
    raise ConfigError(f"unknown driver result type: {type(result).__name__}")


def run_all(
    out_dir: str | Path,
    *,
    params: ExperimentParams | None = None,
    datasets: tuple[str, ...] = ("uk2002_like", "it2004_like", "wb2001_like"),
    fig5_dataset: str | None = None,
    empirical: bool = True,
) -> ReproductionManifest:
    """Regenerate every paper artifact and persist text + JSON forms.

    Parameters
    ----------
    out_dir:
        Directory for the artifact files (created if missing).
    params:
        Experiment protocol knobs (paper defaults when omitted).
    datasets:
        Datasets for the Fig. 6/7 sweeps (Table 1 always uses the three
        paper analogues unless you shrink this tuple).
    fig5_dataset:
        Dataset for Fig. 5 (defaults to the last entry of ``datasets``,
        the paper's WB2001 role).
    empirical:
        Also run the Fig. 3/4 attack simulations.
    """
    params = params or ExperimentParams()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    fig5_dataset = fig5_dataset or datasets[-1]

    jobs: list[tuple[str, object]] = []

    def run(name: str, fn, *args, **kwargs) -> None:
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        jobs.append((name, (result, time.perf_counter() - start)))

    run("table1", run_table1, tuple(datasets))
    run("fig2", run_fig2)
    run("fig3", run_fig3, empirical=empirical)
    for scenario in (1, 2, 3):
        run(f"fig4_scenario{scenario}", run_fig4, scenario, empirical=empirical)
    run("fig5", run_fig5, fig5_dataset, params)
    for ds in datasets:
        run(f"fig6_{ds}", run_fig6, ds, params)
    for ds in datasets:
        run(f"fig7_{ds}", run_fig7, ds, params)

    records = []
    for name, (result, seconds) in jobs:
        text_path = out / f"{name}.txt"
        text_path.write_text(result.format() + "\n", encoding="utf-8")  # type: ignore[attr-defined]
        json_path = out / f"{name}.json"
        to_json(
            _rows_of(result),
            json_path,
            meta={"artifact": name, "seed": params.seed, "seconds": seconds},
        )
        records.append(
            ArtifactRecord(
                artifact=name,
                seconds=seconds,
                text_path=str(text_path),
                json_path=str(json_path),
            )
        )
    manifest = ReproductionManifest(
        out_dir=str(out), seed=params.seed, records=tuple(records)
    )
    to_json(
        [
            {"artifact": r.artifact, "seconds": r.seconds, "json": r.json_path}
            for r in records
        ],
        out / "manifest.json",
        meta={"seed": params.seed, "total_seconds": manifest.total_seconds()},
    )
    return manifest

"""Percentile-rank helpers (the Fig. 6/7 metric).

Thin wrappers around :meth:`repro.ranking.base.RankingResult.percentiles`
for single items, so experiment code reads like the paper's prose ("the
PageRank of the target page jumped 80 percentile points").
"""

from __future__ import annotations

from ..errors import GraphError
from ..ranking.base import RankingResult

__all__ = ["percentile_of", "percentile_gain"]


def percentile_of(result: RankingResult, item: int) -> float:
    """Ranking percentile of one item (100 = best, tie-averaged)."""
    item = int(item)
    if not 0 <= item < result.n:
        raise GraphError(f"item {item} out of range for {result.n} ranked items")
    return float(result.percentiles()[item])


def percentile_gain(before: RankingResult, after: RankingResult, item: int) -> float:
    """Percentile-point change of ``item`` between two rankings."""
    return percentile_of(after, item) - percentile_of(before, item)

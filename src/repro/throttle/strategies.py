"""κ-assignment strategies: spam-proximity scores → throttling vector.

The paper (Section 5) uses the **top-k** heuristic — the k sources with the
highest spam-proximity scores are throttled completely (κ=1) and everyone
else not at all (κ=0) — and notes that "there are a number of possible ways
to assign these throttling values ... we are exploring this topic in our
ongoing research."  Three such extensions are implemented here and compared
in ``bench_ablation_kappa``:

* ``"threshold"`` — κ_high wherever the score exceeds a cutoff;
* ``"proportional"`` — κ scales linearly with the score, κ_high at the max;
* ``"linear"`` — κ interpolates with the score's *rank* (robust to the
  heavy-tailed score distribution).
"""

from __future__ import annotations

import numpy as np

from ..config import ThrottleParams
from ..errors import ThrottleError
from .vector import ThrottleVector

__all__ = ["assign_kappa", "top_k_flags"]


def top_k_flags(scores: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the ``k`` highest-scored items (ties by lower id)."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    k = int(k)
    if not 0 <= k <= scores.size:
        raise ThrottleError(f"k must be in [0, {scores.size}], got {k}")
    flags = np.zeros(scores.size, dtype=bool)
    if k:
        order = np.argsort(-scores, kind="stable")
        flags[order[:k]] = True
    return flags


def assign_kappa(
    scores: np.ndarray,
    params: ThrottleParams | None = None,
) -> ThrottleVector:
    """Map spam-proximity scores to a :class:`ThrottleVector`.

    Parameters
    ----------
    scores:
        Spam-proximity scores, one per source (higher = closer to spam).
    params:
        Strategy and its knobs; paper defaults when omitted (top-k at the
        WB2001 fraction, κ ∈ {0, 1}).
    """
    params = params or ThrottleParams()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.size == 0:
        raise ThrottleError("assign_kappa requires a non-empty score vector")
    if not np.isfinite(scores).all() or scores.min() < 0:
        raise ThrottleError("scores must be finite and non-negative")

    lo, hi = params.kappa_low, params.kappa_high
    if params.strategy == "top_k":
        k = int(round(params.top_fraction * scores.size))
        return ThrottleVector.from_flags(
            top_k_flags(scores, k), kappa_high=hi, kappa_low=lo
        )
    if params.strategy == "threshold":
        return ThrottleVector.from_flags(
            scores > params.threshold, kappa_high=hi, kappa_low=lo
        )
    if params.strategy == "proportional":
        peak = scores.max()
        if peak <= 0:
            return ThrottleVector.constant(scores.size, lo)
        return ThrottleVector(lo + (hi - lo) * (scores / peak))
    if params.strategy == "linear":
        # Rank-based interpolation: the worst (highest-score) source gets
        # kappa_high, the best gets kappa_low; zero-score sources stay at
        # kappa_low regardless of rank.
        order = np.argsort(scores, kind="stable")
        ranks = np.empty(scores.size, dtype=np.float64)
        ranks[order] = np.arange(scores.size, dtype=np.float64)
        denom = max(scores.size - 1, 1)
        kappa = lo + (hi - lo) * (ranks / denom)
        kappa[scores == 0] = lo
        return ThrottleVector(kappa)
    raise ThrottleError(f"unknown strategy {params.strategy!r}")

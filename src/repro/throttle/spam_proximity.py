"""Spam proximity via an inverse biased random walk (Section 5).

Given a seed set of known spam sources, the links of the source graph are
reversed (a source *pointed to* by many sources now points back at them)
and a teleporting walk biased onto the seed set is run over the inverted
matrix:

.. math::

    \\hat{U} = \\beta U + (1 - \\beta) \\mathbf{1} d^{T}

where ``U`` is the transition matrix of the reversed source graph and ``d``
is uniform over the seed spam sources, zero elsewhere.  The stationary
distribution scores every source by its "closeness" to spam — a BadRank-
style negative PageRank [30].
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..config import SpamProximityParams
from ..errors import ThrottleError
from ..graph.matrix import row_normalize
from ..linalg.operator import ReversedOperator
from ..logging_utils import get_logger, log_duration
from ..ranking.base import RankingResult
from ..ranking.power import power_iteration
from ..ranking.teleport import seeded_teleport
from ..sources.sourcegraph import SourceGraph

__all__ = ["spam_proximity", "inverse_transition_matrix"]

_logger = get_logger(__name__)


def inverse_transition_matrix(
    matrix: sp.csr_matrix, *, drop_self_edges: bool = True
) -> sp.csr_matrix:
    """Reverse and re-normalize a source transition matrix.

    Edge *existence* is what gets reversed (Section 5 reverses the source
    graph's links, not its weights): the reversed matrix is re-normalized
    uniformly over each source's in-neighbours.  Self-edges are dropped by
    default — they are a Section 3.3 ranking construct and carry no
    proximity information (a source is trivially "close" to itself).
    """
    matrix = matrix.tocsr()
    n = matrix.shape[0]
    binary = matrix.copy()
    binary.data = np.ones_like(binary.data)
    if drop_self_edges:
        binary = binary.tolil()
        binary.setdiag(0)
        binary = binary.tocsr()
        binary.eliminate_zeros()
    reversed_binary = binary.T.tocsr()
    return row_normalize(reversed_binary.astype(np.float64), copy=False)


def spam_proximity(
    source_graph: SourceGraph | sp.csr_matrix,
    seeds: np.ndarray | list[int],
    params: SpamProximityParams | None = None,
    *,
    operator: ReversedOperator | None = None,
) -> RankingResult:
    """Score every source's proximity to a seed set of spam sources.

    The reversed walk matrix is never materialized: the walk runs on a
    :class:`~repro.linalg.operator.ReversedOperator`, whose transpose
    matvec is a plain forward matvec on the original-orientation binary
    adjacency.

    Parameters
    ----------
    source_graph:
        A :class:`~repro.sources.sourcegraph.SourceGraph` or a raw
        row-stochastic CSR source matrix.
    seeds:
        Ids of pre-labeled spam sources (the paper uses <10 % of its
        ground-truth spam set).
    params:
        Mixing factor ``β`` and stopping rule.
    operator:
        Prebuilt :class:`~repro.linalg.operator.ReversedOperator` over the
        same source matrix, for callers (the pipeline) that rerun the walk
        with different seed sets.

    Returns
    -------
    RankingResult
        L1-normalized spam-proximity scores; higher = closer to spam.
        Sources unreachable from the seeds in the reversed graph score 0.
    """
    params = params or SpamProximityParams()
    matrix = source_graph.matrix if isinstance(source_graph, SourceGraph) else source_graph
    n = matrix.shape[0]
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ThrottleError("spam_proximity requires a non-empty seed set")
    if seeds[0] < 0 or seeds[-1] >= n:
        raise ThrottleError(
            f"seed ids must lie in [0, {n}), got range [{seeds[0]}, {seeds[-1]}]"
        )
    with log_duration(_logger, "spam proximity inverse walk"):
        inverted = ReversedOperator(matrix) if operator is None else operator
        d = seeded_teleport(n, seeds)
        # Dangling rows of the inverted graph (sources nobody links to) restart
        # at the seed distribution, keeping all proximity mass spam-anchored.
        result = power_iteration(
            inverted,
            params.as_ranking_params(),
            teleport=d,
            dangling="teleport",
            label="spam-proximity",
        )
    _logger.debug(
        "spam proximity over %d sources from %d seeds: %s",
        n,
        seeds.size,
        result.convergence.convergence_summary(),
    )
    return result

"""Influence throttling (Sections 3.3 and 5).

* :class:`~repro.throttle.vector.ThrottleVector` — the validated κ vector;
* :func:`~repro.throttle.transform.throttle_transform` — the ``T' → T''``
  matrix transform that enforces minimum self-edge weights;
* :func:`~repro.throttle.spam_proximity.spam_proximity` — the BadRank-style
  inverse-walk score of Section 5;
* :mod:`repro.throttle.strategies` — κ-assignment strategies (the paper's
  top-k heuristic plus threshold / proportional / linear extensions).
"""

from .vector import ThrottleVector
from .transform import throttle_transform
from .spam_proximity import spam_proximity
from .strategies import assign_kappa

__all__ = [
    "ThrottleVector",
    "throttle_transform",
    "spam_proximity",
    "assign_kappa",
]

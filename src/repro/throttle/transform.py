"""The influence-throttle matrix transform ``T' → T''`` (Section 3.3).

For each source ``i`` whose current self-weight falls short of its
throttling factor (``T'_ii < κ_i``):

* the self-edge weight is raised to ``T''_ii = κ_i``;
* every off-diagonal weight is rescaled by
  ``(1 − κ_i) / Σ_{k≠i} T'_ik`` so the off-diagonal mass becomes exactly
  ``1 − κ_i``.

Rows already meeting their threshold are untouched.  The result is
row-stochastic whenever the input is.  Fully vectorized: diagonal
extraction, per-row scale computation, and a CSR data multiply — no Python
loop over sources.

Two interpretations of **complete** throttling (κ = 1) are provided,
because the paper is internally inconsistent about it:

* ``full_throttle="self"`` — the literal Section 3.3 transform:
  ``T''_ii = 1``, all out-edges zero.  This is what the Section 4 closed
  forms analyze, but the mandatory self-loop *amplifies* the source's own
  incoming score by ``1/(1 − α)`` (Eq. 4), so a fully-throttled source can
  never rank below the "no in-links" level of ``1/|S|`` — it cannot land
  in the bottom Fig. 5 buckets.
* ``full_throttle="dangling"`` — "their influence was completely
  throttled" (Section 6.2) taken at face value: a κ = 1 row passes
  nothing to anyone, *including itself* (all-zero row; the paper's linear
  formulation lets the mass leak and renormalizes ``σ/||σ||``).  The
  source keeps only its direct in-flow ``αz + (1 − α)/|S|``, which is what
  actually demotes z-starved spam to the bottom buckets.  This is the mode
  the Fig. 5 driver uses; EXPERIMENTS.md records the discrepancy.

Partial throttling (κ < 1) is identical under both modes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ThrottleError
from .vector import ThrottleVector

__all__ = ["throttle_transform"]


_FULL_THROTTLE_MODES = ("self", "dangling")


def throttle_transform(
    matrix: sp.csr_matrix,
    kappa: ThrottleVector | np.ndarray,
    *,
    full_throttle: str = "self",
) -> sp.csr_matrix:
    """Apply influence throttling to a row-stochastic source matrix.

    Parameters
    ----------
    matrix:
        The source transition matrix ``T'`` (row-stochastic CSR; rows with
        zero off-diagonal mass must carry their mass on the diagonal, which
        :class:`~repro.sources.sourcegraph.SourceGraph` guarantees).
    kappa:
        Throttling factors, one per source.
    full_throttle:
        How κ = 1 rows behave: ``"self"`` (the literal Section 3.3
        transform, self-loop retained) or ``"dangling"`` (the row passes
        nothing at all — see the module docstring for why Fig. 5 needs
        this reading).

    Returns
    -------
    scipy.sparse.csr_matrix
        The influence-throttled matrix ``T''`` of Eq. 2/3.
    """
    if full_throttle not in _FULL_THROTTLE_MODES:
        raise ThrottleError(
            f"full_throttle must be one of {_FULL_THROTTLE_MODES}, got "
            f"{full_throttle!r}"
        )
    if not isinstance(kappa, ThrottleVector):
        kappa = ThrottleVector(kappa)
    matrix = matrix.tocsr()
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise ThrottleError(f"source matrix must be square, got {matrix.shape}")
    if kappa.n != n:
        raise ThrottleError(
            f"throttle vector covers {kappa.n} sources but matrix is {n}x{n}"
        )
    k = kappa.kappa
    diag = matrix.diagonal()
    full = (k >= 1.0) if full_throttle == "dangling" else np.zeros(n, dtype=bool)
    needs = (diag < k) & ~full  # rows where the self-weight must be raised
    if not needs.any() and not full.any():
        return matrix.copy()

    off_mass = np.asarray(matrix.sum(axis=1)).ravel() - diag
    # A row can only need boosting with zero off-diagonal mass if its total
    # mass was below kappa — i.e. the input was not row-stochastic.
    bad = needs & (off_mass <= 0)
    if bad.any():
        raise ThrottleError(
            f"{int(bad.sum())} rows need throttling but have no off-diagonal "
            "mass to rescale; is the input row-stochastic?"
        )

    # Per-row off-diagonal scale: (1 - kappa) / off_mass on boosted rows,
    # 0 on dangling fully-throttled rows, 1 elsewhere.
    scale = np.ones(n, dtype=np.float64)
    scale[needs] = (1.0 - k[needs]) / off_mass[needs]
    scale[full] = 0.0

    out = matrix.copy().astype(np.float64)
    nnz_per_row = np.diff(out.indptr)
    out.data *= np.repeat(scale, nnz_per_row)
    # The diagonal of boosted rows was scaled along with everything else;
    # overwrite it with exactly kappa.  Diagonal entries may be structurally
    # absent (T'_ii == 0 rows), so add the correction as a sparse diagonal.
    new_diag = np.where(needs, k, diag)
    new_diag[full] = 0.0  # dangling rows keep nothing, not even themselves
    current_diag = out.diagonal()
    correction = new_diag - current_diag
    nz = np.flatnonzero(np.abs(correction) > 0)
    if nz.size:
        out = (out + sp.coo_matrix(
            (correction[nz], (nz, nz)), shape=(n, n)
        ).tocsr()).tocsr()
    out.eliminate_zeros()  # fully-throttled rows zero out their off-diagonals
    out.sort_indices()
    return out

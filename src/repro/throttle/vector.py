"""The throttling vector κ (Section 3.3).

Each source ``s_i`` carries a throttling factor ``κ_i ∈ [0, 1]``: the
minimum fraction of its influence that must stay on its own self-edge.
``κ_i = 1`` throttles the source completely (its out-edges carry nothing);
``κ_i = 0`` leaves it untouched.
"""

from __future__ import annotations

import numpy as np

from ..errors import ThrottleError

__all__ = ["ThrottleVector"]


class ThrottleVector:
    """Immutable, validated per-source throttling factors.

    Parameters
    ----------
    kappa:
        Array of ``κ_i`` values in ``[0, 1]``, one per source.
    """

    __slots__ = ("_kappa",)

    def __init__(self, kappa: np.ndarray | list[float]) -> None:
        arr = np.asarray(kappa, dtype=np.float64).ravel().copy()
        if arr.size == 0:
            raise ThrottleError("throttle vector must be non-empty")
        if not np.isfinite(arr).all():
            raise ThrottleError("throttle vector contains non-finite values")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ThrottleError(
                f"throttle values must lie in [0, 1], got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        arr.setflags(write=False)
        self._kappa = arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int) -> "ThrottleVector":
        """No throttling anywhere (baseline SourceRank behaviour)."""
        return cls(np.zeros(int(n), dtype=np.float64))

    @classmethod
    def constant(cls, n: int, kappa: float) -> "ThrottleVector":
        """The same throttle level for every source."""
        return cls(np.full(int(n), float(kappa), dtype=np.float64))

    @classmethod
    def from_flags(
        cls,
        flags: np.ndarray | list[bool],
        *,
        kappa_high: float = 1.0,
        kappa_low: float = 0.0,
    ) -> "ThrottleVector":
        """``kappa_high`` where flagged, ``kappa_low`` elsewhere.

        This is the paper's Section 6.2 assignment: flagged (top-k
        spam-proximity) sources get κ=1, the rest κ=0.
        """
        flags = np.asarray(flags, dtype=bool).ravel()
        arr = np.where(flags, float(kappa_high), float(kappa_low))
        return cls(arr)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def kappa(self) -> np.ndarray:
        """Read-only κ array."""
        return self._kappa

    @property
    def n(self) -> int:
        """Number of sources covered."""
        return int(self._kappa.size)

    def throttled_mask(self, *, above: float = 0.0) -> np.ndarray:
        """Boolean mask of sources with ``κ_i > above``."""
        return self._kappa > float(above)

    def fully_throttled(self) -> np.ndarray:
        """Ids of completely throttled sources (``κ_i == 1``)."""
        return np.flatnonzero(self._kappa >= 1.0)

    def updated(self, ids: np.ndarray | list[int], value: float) -> "ThrottleVector":
        """Return a copy with ``κ[ids] = value``."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise ThrottleError(
                f"ids must lie in [0, {self.n}), got range [{ids.min()}, {ids.max()}]"
            )
        arr = self._kappa.copy()
        arr[ids] = float(value)
        return ThrottleVector(arr)

    def __getitem__(self, source: int) -> float:
        return float(self._kappa[int(source)])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThrottleVector):
            return NotImplemented
        return np.array_equal(self._kappa, other._kappa)

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)

    def __repr__(self) -> str:
        n_throttled = int(np.count_nonzero(self._kappa > 0))
        return f"ThrottleVector(n={self.n}, throttled={n_throttled})"

"""Hijack attacks: spam links inserted into existing legitimate pages.

"Spammers insert links into legitimate pages that point to a
spammer-controlled page ... public message boards, openly editable wikis,
and legitimate weblogs" (Section 2).  The attack adds an edge from each
victim page to the target page; no new pages are created.  Under the
source-consensus weighting (Section 3.2) a hijacker must capture *many*
pages of the same legitimate source before the source-level edge weight
moves — the property the weighting ablation bench quantifies.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb

__all__ = ["HijackAttack"]


class HijackAttack(Attack):
    """Insert a link to the target page into each victim page.

    Parameters
    ----------
    target_page:
        The spammer-controlled page being promoted.
    victim_pages:
        Existing legitimate pages to hijack.  Must not include the target
        itself.
    """

    def __init__(
        self, target_page: int, victim_pages: np.ndarray | list[int]
    ) -> None:
        self.target_page = int(target_page)
        victims = np.unique(np.asarray(victim_pages, dtype=np.int64))
        if victims.size == 0:
            raise ScenarioError("hijack needs at least one victim page")
        if (victims == self.target_page).any():
            raise ScenarioError("the target page cannot be its own victim")
        self.victim_pages = victims

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        target = self._check_page(graph, self.target_page, "target")
        if self.victim_pages[-1] >= graph.n_nodes or self.victim_pages[0] < 0:
            raise ScenarioError(
                f"victim pages out of range for graph with {graph.n_nodes} pages"
            )
        target_source = assignment.source_of(target)
        spammed = add_edges(
            graph,
            self.victim_pages,
            np.full(self.victim_pages.size, target, dtype=np.int64),
            n_nodes=graph.n_nodes,
        )
        return SpammedWeb(
            graph=spammed,
            assignment=assignment,
            target_page=target,
            target_source=target_source,
            injected_pages=np.empty(0, dtype=np.int64),
            hijacked_pages=self.victim_pages,
            description=(
                f"hijack: {self.victim_pages.size} victim pages -> page {target}"
            ),
        )

"""Scenario assembly: run an attack and measure both rankings' reactions.

This is the driver behind the Fig. 6 / Fig. 7 experiments: it computes
PageRank (page level, target page) and Spam-Resilient SourceRank (source
level, target source) before and after an attack, re-using the clean
rankings as warm starts for the spammed recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.amplification import AmplificationRecord, measure_amplification
from ..config import RankingParams
from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..ranking.base import RankingResult
from ..ranking.pagerank import pagerank
from ..ranking.srsourcerank import spam_resilient_sourcerank
from ..sources.assignment import SourceAssignment
from ..sources.sourcegraph import SourceGraph
from ..throttle.vector import ThrottleVector
from .base import Attack, SpammedWeb

__all__ = ["AttackEvaluation", "evaluate_attack", "pick_targets"]


@dataclass(frozen=True, slots=True)
class AttackEvaluation:
    """Before/after measurements of one attack under both rankings."""

    spammed: SpammedWeb
    pagerank_record: AmplificationRecord
    srsr_record: AmplificationRecord
    pagerank_before: RankingResult
    pagerank_after: RankingResult
    srsr_before: RankingResult
    srsr_after: RankingResult


def _extend_kappa(kappa: ThrottleVector | None, n_sources: int) -> ThrottleVector | None:
    """Pad a throttle vector with κ=0 entries for attack-created sources.

    New spam sources are unknown to the throttling side by construction
    (worst case for the defender); spam-proximity-aware evaluations rebuild
    κ from scratch instead of using this padding.
    """
    if kappa is None:
        return None
    if kappa.n == n_sources:
        return kappa
    if kappa.n > n_sources:
        raise ScenarioError(
            f"throttle vector covers {kappa.n} sources, graph has {n_sources}"
        )
    padded = np.zeros(n_sources, dtype=np.float64)
    padded[: kappa.n] = kappa.kappa
    return ThrottleVector(padded)


def evaluate_attack(
    graph: PageGraph,
    assignment: SourceAssignment,
    attack: Attack,
    *,
    kappa: ThrottleVector | None = None,
    params: RankingParams | None = None,
    weighting: str = "consensus",
    pagerank_before: RankingResult | None = None,
    srsr_before: RankingResult | None = None,
) -> AttackEvaluation:
    """Run ``attack`` on a clean web and measure both rankings' movement.

    Parameters
    ----------
    graph, assignment:
        The clean web.
    attack:
        Any :class:`~repro.spam.base.Attack`.
    kappa:
        Throttling vector for the *clean* sources; attack-created sources
        are padded with κ=0 (the defender has never seen them).
    params:
        Ranking parameters (paper defaults when omitted).
    weighting:
        Source-edge weighting scheme.
    pagerank_before, srsr_before:
        Optional precomputed clean rankings — pass them when evaluating
        many attacks against the same clean web (the Fig. 6/7 sweeps do)
        to avoid recomputing the expensive baseline each time.

    Returns
    -------
    AttackEvaluation
        Records for the target page (PageRank) and target source
        (Spam-Resilient SourceRank).
    """
    params = params or RankingParams()
    spammed = attack.apply(graph, assignment)

    if pagerank_before is None:
        pagerank_before = pagerank(graph, params)
    if srsr_before is None:
        clean_sg = SourceGraph.from_page_graph(graph, assignment, weighting=weighting)
        srsr_before = spam_resilient_sourcerank(
            clean_sg, _extend_kappa(kappa, clean_sg.n_sources), params
        )

    # Warm-start the spammed recomputations from the clean vectors (padded
    # uniformly for injected pages/sources) — the incremental path.
    pr_x0 = np.full(spammed.graph.n_nodes, 1.0 / spammed.graph.n_nodes)
    pr_x0[: pagerank_before.n] = pagerank_before.scores
    pagerank_after = pagerank(spammed.graph, params, x0=pr_x0)

    spam_sg = SourceGraph.from_page_graph(
        spammed.graph, spammed.assignment, weighting=weighting
    )
    sr_x0 = np.full(spam_sg.n_sources, 1.0 / spam_sg.n_sources)
    sr_x0[: srsr_before.n] = srsr_before.scores
    srsr_after = spam_resilient_sourcerank(
        spam_sg, _extend_kappa(kappa, spam_sg.n_sources), params, x0=sr_x0
    )

    return AttackEvaluation(
        spammed=spammed,
        pagerank_record=measure_amplification(
            pagerank_before, pagerank_after, spammed.target_page
        ),
        srsr_record=measure_amplification(
            srsr_before, srsr_after, spammed.target_source
        ),
        pagerank_before=pagerank_before,
        pagerank_after=pagerank_after,
        srsr_before=srsr_before,
        srsr_after=srsr_after,
    )


def pick_targets(
    srsr_result: RankingResult,
    assignment: SourceAssignment,
    rng: np.random.Generator,
    *,
    n_targets: int = 5,
    bottom_fraction: float = 0.5,
    exclude_sources: np.ndarray | None = None,
) -> list[tuple[int, int]]:
    """Sample (target_source, target_page) pairs per the Fig. 6/7 protocol.

    "We randomly selected five sources from the bottom 50 % of all sources
    that have not been throttled ... for each source, we randomly selected
    a target page within the source."

    Parameters
    ----------
    srsr_result:
        A clean source ranking used to find the bottom fraction.
    assignment:
        Page→source map (to sample a page inside each chosen source).
    rng:
        Seeded generator (experiments record their seeds).
    exclude_sources:
        Sources ineligible as targets (e.g. throttled or known-spam ones).
    """
    n_sources = srsr_result.n
    order = srsr_result.order()  # best -> worst
    cutoff = int(np.ceil(n_sources * (1.0 - bottom_fraction)))
    bottom = order[cutoff:]
    if exclude_sources is not None and exclude_sources.size:
        mask = ~np.isin(bottom, exclude_sources)
        bottom = bottom[mask]
    if bottom.size < n_targets:
        raise ScenarioError(
            f"only {bottom.size} eligible bottom sources, need {n_targets}"
        )
    chosen = rng.choice(bottom, size=n_targets, replace=False)
    pairs: list[tuple[int, int]] = []
    for source in chosen.tolist():
        pages = assignment.pages_of(int(source))
        page = int(rng.choice(pages))
        pairs.append((int(source), page))
    return pairs

"""Link farms: fresh spammer-controlled sources pointing at one target.

"A link farm [is one] in which a Web spammer generates a large number of
colluding pages that point to a single target page" (Section 2).  Unlike
:class:`~repro.spam.cross_source.CrossSourceAttack`, the farm creates *new*
sources, so it also exercises the ranking model's behaviour on previously
unseen (and therefore unthrottled, unless spam-proximity catches them)
sources — the Fig. 4 Scenario 3 structure with x fresh colluders.
"""

from __future__ import annotations

import numpy as np

from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb

__all__ = ["LinkFarmAttack"]


class LinkFarmAttack(Attack):
    """Create ``n_sources`` fresh spam sources holding ``n_pages`` farm
    pages in total, every page linking to the target.

    Parameters
    ----------
    target_page:
        The page to promote.
    n_pages:
        Total farm pages, distributed round-robin across the new sources.
    n_sources:
        Number of fresh sources hosting the farm (Scenario 2 when 1,
        Scenario 3 when larger).
    interlink:
        When True, each farm page also links to one page of the next farm
        source (making the farm itself a ring, a common obfuscation that
        complicates pattern-based detection).
    """

    def __init__(
        self,
        target_page: int,
        n_pages: int,
        n_sources: int = 1,
        *,
        interlink: bool = False,
    ) -> None:
        self.target_page = int(target_page)
        self.n_pages = self._check_count(n_pages, "n_pages")
        self.n_sources = self._check_count(n_sources, "n_sources")
        if self.n_sources > self.n_pages:
            self.n_sources = self.n_pages  # a source needs at least one page
        self.interlink = bool(interlink)

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        target = self._check_page(graph, self.target_page, "target")
        target_source = assignment.source_of(target)
        first_page = graph.n_nodes
        first_source = assignment.n_sources
        new_pages = np.arange(first_page, first_page + self.n_pages, dtype=np.int64)
        new_sources = np.arange(
            first_source, first_source + self.n_sources, dtype=np.int64
        )
        hosts = new_sources[np.arange(self.n_pages, dtype=np.int64) % self.n_sources]

        src = new_pages
        dst = np.full(self.n_pages, target, dtype=np.int64)
        if self.interlink and self.n_sources > 1:
            # Each page links to the first page of the next farm source;
            # the first page of source k is page index k (round-robin order).
            next_source_page = new_pages[
                (np.arange(self.n_pages, dtype=np.int64) + 1) % self.n_sources
            ]
            src = np.concatenate([src, new_pages])
            dst = np.concatenate([dst, next_source_page])

        spammed = add_edges(graph, src, dst, n_nodes=first_page + self.n_pages)
        new_assignment = assignment.extended(self.n_pages, hosts)
        return SpammedWeb(
            graph=spammed,
            assignment=new_assignment,
            target_page=target,
            target_source=target_source,
            injected_pages=new_pages,
            injected_sources=new_sources,
            description=(
                f"link farm: {self.n_pages} pages across {self.n_sources} fresh "
                f"source(s) -> page {target}"
            ),
        )

"""Intra-source collusion: spam pages injected inside the target source.

This is the Fig. 6 protocol ("we added a single new spam page within the
same source with a link to the target page ... repeated for 10, 100, and
1,000 pages") and Fig. 4's Scenario 1.  On the source level all injected
links collapse onto the target source's self-edge, which is exactly the
structure influence throttling caps.
"""

from __future__ import annotations

import numpy as np

from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb

__all__ = ["IntraSourceAttack"]


class IntraSourceAttack(Attack):
    """Inject ``n_pages`` new pages into the target's source, each linking
    to the target page.

    Parameters
    ----------
    target_page:
        The page to promote.
    n_pages:
        Number of colluding pages to create (the paper's cases A–D use
        1/10/100/1000).
    """

    def __init__(self, target_page: int, n_pages: int) -> None:
        self.target_page = int(target_page)
        self.n_pages = self._check_count(n_pages, "n_pages")

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        target = self._check_page(graph, self.target_page, "target")
        target_source = assignment.source_of(target)
        first_new = graph.n_nodes
        new_pages = np.arange(first_new, first_new + self.n_pages, dtype=np.int64)
        spammed = add_edges(
            graph,
            new_pages,
            np.full(self.n_pages, target, dtype=np.int64),
            n_nodes=first_new + self.n_pages,
        )
        new_assignment = assignment.extended(
            self.n_pages, np.full(self.n_pages, target_source, dtype=np.int64)
        )
        return SpammedWeb(
            graph=spammed,
            assignment=new_assignment,
            target_page=target,
            target_source=target_source,
            injected_pages=new_pages,
            description=(
                f"intra-source: {self.n_pages} colluding pages inside source "
                f"{target_source} -> page {target}"
            ),
        )

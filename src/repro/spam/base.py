"""Attack abstraction and the spammed-web result record."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..sources.assignment import SourceAssignment

__all__ = ["Attack", "SpammedWeb"]


@dataclass(frozen=True, slots=True)
class SpammedWeb:
    """A web after a spam attack, with provenance bookkeeping.

    Attributes
    ----------
    graph:
        The attacked page graph (original pages keep their ids; injected
        pages are appended).
    assignment:
        Page→source assignment covering the injected pages (original
        sources keep their ids; injected sources are appended).
    target_page:
        The page whose rank the spammer promotes.
    target_source:
        The source containing the target page.
    injected_pages:
        Ids of pages created by the attack.
    injected_sources:
        Ids of sources created by the attack (empty for attacks confined
        to existing sources).
    hijacked_pages:
        Ids of pre-existing legitimate pages the attack modified.
    description:
        Human-readable attack summary.
    """

    graph: PageGraph
    assignment: SourceAssignment
    target_page: int
    target_source: int
    injected_pages: np.ndarray
    injected_sources: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    hijacked_pages: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    description: str = ""

    def __post_init__(self) -> None:
        if self.assignment.n_pages != self.graph.n_nodes:
            raise ScenarioError(
                f"assignment covers {self.assignment.n_pages} pages but the "
                f"attacked graph has {self.graph.n_nodes}"
            )
        if not 0 <= self.target_page < self.graph.n_nodes:
            raise ScenarioError(
                f"target page {self.target_page} out of range"
            )
        if self.assignment.source_of(self.target_page) != self.target_source:
            raise ScenarioError(
                f"target page {self.target_page} does not live in target "
                f"source {self.target_source}"
            )


class Attack(abc.ABC):
    """A pure transform injecting a spam structure into a web.

    Subclasses implement :meth:`apply`; they must never mutate their
    inputs (both :class:`~repro.graph.pagegraph.PageGraph` and
    :class:`~repro.sources.assignment.SourceAssignment` are immutable, so
    violating this is hard by construction).
    """

    @abc.abstractmethod
    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        """Run the attack and return the spammed web."""

    @staticmethod
    def _check_page(graph: PageGraph, page: int, role: str) -> int:
        page = int(page)
        if not 0 <= page < graph.n_nodes:
            raise ScenarioError(
                f"{role} page {page} out of range for graph with "
                f"{graph.n_nodes} pages"
            )
        return page

    @staticmethod
    def _check_count(n: int, what: str) -> int:
        n = int(n)
        if n < 1:
            raise ScenarioError(f"{what} must be >= 1, got {n}")
        return n

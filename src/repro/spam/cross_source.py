"""Cross-source collusion: pages in colluding source(s) link to the target.

This is the Fig. 7 protocol ("spam links are added to pages in a colluding
source that point to the target page in a different source") and Fig. 4's
Scenarios 2 (one colluding source) and 3 (many colluding sources).

Optionally the colluding sources can be configured *optimally* per the
Section 4.2 analysis: colluders carry no edges to sources outside the
spammer's sphere of influence, and the target source keeps only its
self-edge.  The default (non-optimal) form just injects pages, matching the
experimental protocol.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb

__all__ = ["CrossSourceAttack"]


class CrossSourceAttack(Attack):
    """Inject colluding pages into one or more *existing* sources, each
    linking to the target page in a different source.

    Parameters
    ----------
    target_page:
        The page to promote.
    colluding_sources:
        Source id(s) that will host the injected pages.  Must not include
        the target's own source (that would be
        :class:`~repro.spam.intra_source.IntraSourceAttack`).
    n_pages:
        Total number of injected pages, distributed round-robin over the
        colluding sources.
    """

    def __init__(
        self,
        target_page: int,
        colluding_sources: int | np.ndarray | list[int],
        n_pages: int,
    ) -> None:
        self.target_page = int(target_page)
        sources = np.atleast_1d(np.asarray(colluding_sources, dtype=np.int64))
        if sources.size == 0:
            raise ScenarioError("need at least one colluding source")
        self.colluding_sources = sources
        self.n_pages = self._check_count(n_pages, "n_pages")

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        target = self._check_page(graph, self.target_page, "target")
        target_source = assignment.source_of(target)
        for s in self.colluding_sources:
            if not 0 <= s < assignment.n_sources:
                raise ScenarioError(
                    f"colluding source {int(s)} out of range for "
                    f"{assignment.n_sources} sources"
                )
            if int(s) == target_source:
                raise ScenarioError(
                    f"colluding source {int(s)} is the target's own source; "
                    "use IntraSourceAttack for intra-source collusion"
                )
        first_new = graph.n_nodes
        new_pages = np.arange(first_new, first_new + self.n_pages, dtype=np.int64)
        # Round-robin page placement over the colluding sources.
        hosts = self.colluding_sources[
            np.arange(self.n_pages, dtype=np.int64) % self.colluding_sources.size
        ]
        spammed = add_edges(
            graph,
            new_pages,
            np.full(self.n_pages, target, dtype=np.int64),
            n_nodes=first_new + self.n_pages,
        )
        new_assignment = assignment.extended(self.n_pages, hosts)
        return SpammedWeb(
            graph=spammed,
            assignment=new_assignment,
            target_page=target,
            target_source=target_source,
            injected_pages=new_pages,
            description=(
                f"cross-source: {self.n_pages} colluding pages in "
                f"{self.colluding_sources.size} source(s) -> page {target} "
                f"(source {target_source})"
            ),
        )

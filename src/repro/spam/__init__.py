"""Attack models: the link-based vulnerabilities of Section 2.

Each attack is a pure transform on a ``(PageGraph, SourceAssignment)``
pair, returning a :class:`~repro.spam.base.SpammedWeb` with the modified
graph, the extended assignment, and bookkeeping about what was injected.

* :class:`~repro.spam.intra_source.IntraSourceAttack` — colluding pages
  inside the target source (Fig. 6's protocol, Fig. 4 Scenario 1);
* :class:`~repro.spam.cross_source.CrossSourceAttack` — colluding pages in
  other source(s) linking to the target (Fig. 7, Fig. 4 Scenarios 2–3);
* :class:`~repro.spam.link_farm.LinkFarmAttack` — fresh spam sources built
  solely to point at the target;
* :class:`~repro.spam.link_exchange.LinkExchangeAttack` — a ring of spam
  sources trading links;
* :class:`~repro.spam.hijack.HijackAttack` — spam links inserted into
  existing legitimate pages;
* :class:`~repro.spam.honeypot.HoneypotAttack` — a quality-looking source
  that accumulates legitimate in-links and forwards its authority.
"""

from .base import Attack, SpammedWeb
from .intra_source import IntraSourceAttack
from .cross_source import CrossSourceAttack
from .link_farm import LinkFarmAttack
from .link_exchange import LinkExchangeAttack
from .hijack import HijackAttack
from .honeypot import HoneypotAttack
from .composite import CompositeAttack, full_campaign
from .detection import OutlierSpamDetector, SourceFeatures, source_features
from .scenario import AttackEvaluation, evaluate_attack, pick_targets

__all__ = [
    "Attack",
    "SpammedWeb",
    "IntraSourceAttack",
    "CrossSourceAttack",
    "LinkFarmAttack",
    "LinkExchangeAttack",
    "HijackAttack",
    "HoneypotAttack",
    "CompositeAttack",
    "full_campaign",
    "OutlierSpamDetector",
    "SourceFeatures",
    "source_features",
    "AttackEvaluation",
    "evaluate_attack",
    "pick_targets",
]

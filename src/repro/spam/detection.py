"""Statistical link-spam detection — the related-work comparator.

The paper's Section 7 surveys detection-based defences: "identify spam
pages based on a statistical analysis of common Web properties ... many
outliers in their analysis were, indeed, spam Web pages" (Fetterly et
al. [17]) and learned classifiers over link features (Drost & Scheffer
[15]).  This module implements a feature-based detector at the *source*
level so the ablation harness can compare the detection paradigm against
the paper's proximity-throttling paradigm on identical ground truth:

* :func:`source_features` — the classic link-spam feature vector per
  source (reciprocity, in/out balance, locality, hub concentration);
* :class:`OutlierSpamDetector` — robust z-score outlier scoring over
  those features (the [17] recipe, no training needed);
* the detector's scores plug straight into
  :func:`repro.throttle.strategies.assign_kappa`, so "detect-then-
  throttle" is a drop-in alternative to "proximity-then-throttle".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..sources.assignment import SourceAssignment
from ..sources.quotient import quotient_edge_counts

__all__ = ["SourceFeatures", "source_features", "OutlierSpamDetector"]

_FEATURE_NAMES = (
    "reciprocity",
    "out_in_ratio",
    "intra_locality",
    "partner_concentration",
    "size_normalized_out",
)


@dataclass(frozen=True, slots=True)
class SourceFeatures:
    """Per-source link-structure features (rows = sources)."""

    names: tuple[str, ...]
    values: np.ndarray  # shape (n_sources, n_features)


def source_features(
    graph: PageGraph, assignment: SourceAssignment
) -> SourceFeatures:
    """Compute the link-spam feature matrix.

    Features (all computed on the inter-source edge-count quotient):

    * **reciprocity** — fraction of a source's out-partners that link
      back (link exchanges are near-fully reciprocal);
    * **out_in_ratio** — log-ratio of out- to in-edge counts (farms emit
      far more than they receive);
    * **intra_locality** — fraction of the source's page edges staying
      inside it (farm content is heavily self-referential);
    * **partner_concentration** — Herfindahl index of the out-edge
      distribution over partners (farms pour everything into one target);
    * **size_normalized_out** — out-edges per page (generated pages carry
      dense outlinks).
    """
    counts = quotient_edge_counts(graph, assignment, include_intra=True).astype(
        np.float64
    )
    n = assignment.n_sources
    diag = counts.diagonal()
    off = (counts - sp.diags(diag)).tocsr()
    off.eliminate_zeros()
    out_counts = np.asarray(off.sum(axis=1)).ravel().astype(np.float64)
    in_counts = np.asarray(off.sum(axis=0)).ravel().astype(np.float64)

    # Reciprocity: |partners with a back edge| / |partners|.
    binary = off.copy()
    binary.data = np.ones_like(binary.data)
    mutual = binary.multiply(binary.T)
    partners = np.asarray(binary.sum(axis=1)).ravel()
    mutual_partners = np.asarray(mutual.sum(axis=1)).ravel()
    with np.errstate(divide="ignore", invalid="ignore"):
        reciprocity = np.where(partners > 0, mutual_partners / np.maximum(partners, 1), 0.0)
        out_in_ratio = np.log1p(out_counts) - np.log1p(in_counts)
        total = diag + out_counts
        intra_locality = np.where(total > 0, diag / np.maximum(total, 1), 0.0)

    # Partner concentration: Herfindahl of each row's off-diagonal weights.
    herfindahl = np.zeros(n, dtype=np.float64)
    sq = off.copy()
    sq.data = sq.data.astype(np.float64) ** 2
    row_sq = np.asarray(sq.sum(axis=1)).ravel()
    nonzero = out_counts > 0
    herfindahl[nonzero] = row_sq[nonzero] / (out_counts[nonzero] ** 2)

    sizes = assignment.source_sizes.astype(np.float64)
    size_normalized_out = out_counts / np.maximum(sizes, 1)

    values = np.column_stack(
        [reciprocity, out_in_ratio, intra_locality, herfindahl, size_normalized_out]
    )
    return SourceFeatures(names=_FEATURE_NAMES, values=values)


class OutlierSpamDetector:
    """Robust z-score outlier detection over link features ([17] recipe).

    Each feature is centred by its median and scaled by its MAD; a
    source's spam score is the mean absolute robust z across features.
    No training, no seeds — the honest baseline for "can you find spam
    without supervision".
    """

    def __init__(self, *, clip: float = 10.0) -> None:
        if clip <= 0:
            raise ScenarioError(f"clip must be > 0, got {clip}")
        self.clip = float(clip)

    def score(self, features: SourceFeatures) -> np.ndarray:
        """Spam score per source (higher = more anomalous)."""
        values = features.values
        med = np.median(values, axis=0)
        mad = np.median(np.abs(values - med), axis=0)
        std = values.std(axis=0)
        # MAD collapses to zero whenever a majority of sources share a
        # value (e.g. reciprocity 0 on honest webs); fall back to the
        # standard deviation, and only declare a feature signal-free when
        # both vanish.
        scale = np.where(
            mad > 1e-12,
            1.4826 * mad,
            np.where(std > 1e-12, std, np.inf),
        )
        z = np.abs(values - med) / scale
        z = np.minimum(z, self.clip)
        return z.mean(axis=1)

    def detect(
        self,
        graph: PageGraph,
        assignment: SourceAssignment,
        *,
        top_fraction: float = 0.05,
    ) -> tuple[np.ndarray, np.ndarray]:
        """End-to-end: features → scores → flagged source ids.

        Returns ``(scores, flagged_ids)`` with the top ``top_fraction``
        of sources flagged.
        """
        if not 0.0 < top_fraction <= 1.0:
            raise ScenarioError(
                f"top_fraction must lie in (0, 1], got {top_fraction}"
            )
        scores = self.score(source_features(graph, assignment))
        k = max(1, int(round(top_fraction * scores.size)))
        flagged = np.argsort(-scores, kind="stable")[:k]
        return scores, np.sort(flagged)

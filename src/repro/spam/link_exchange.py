"""Link exchanges: spam sources trading links for mutual promotion.

"In a link exchange, multiple spammers trade links to pool their collective
resources for mutual page promotion" (Section 2).  The attack creates a
ring of ``n_members`` fresh sources whose pages all link to each member's
designated *hub* page in both ring directions, and every member hub links
to the target page.  Used by the planted-spam-community dataset generator
and by the hijack/honeypot composite tests.
"""

from __future__ import annotations

import numpy as np

from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb

__all__ = ["LinkExchangeAttack"]


class LinkExchangeAttack(Attack):
    """A ring of ``n_members`` fresh spam sources with ``pages_per_member``
    pages each, exchanging links and all promoting the target.

    Parameters
    ----------
    target_page:
        The page all member hubs promote.
    n_members:
        Sources in the exchange (>= 2 for an actual exchange).
    pages_per_member:
        Pages per member source; page 0 of each member is its hub.
    """

    def __init__(
        self, target_page: int, n_members: int, pages_per_member: int = 1
    ) -> None:
        self.target_page = int(target_page)
        self.n_members = self._check_count(n_members, "n_members")
        self.pages_per_member = self._check_count(
            pages_per_member, "pages_per_member"
        )

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        target = self._check_page(graph, self.target_page, "target")
        target_source = assignment.source_of(target)
        first_page = graph.n_nodes
        first_source = assignment.n_sources
        n_pages = self.n_members * self.pages_per_member
        new_pages = np.arange(first_page, first_page + n_pages, dtype=np.int64)
        new_sources = np.arange(
            first_source, first_source + self.n_members, dtype=np.int64
        )
        # Pages laid out member-major: member m owns pages
        # [m * ppm, (m + 1) * ppm); its hub is the first of them.
        member_of = np.repeat(
            np.arange(self.n_members, dtype=np.int64), self.pages_per_member
        )
        hubs = first_page + np.arange(self.n_members, dtype=np.int64) * self.pages_per_member

        src_list = []
        dst_list = []
        # Every page links to the next member's hub (the "exchange").
        next_hub = hubs[(member_of + 1) % self.n_members]
        src_list.append(new_pages)
        dst_list.append(next_hub)
        # And to the previous member's hub (trades go both ways).
        if self.n_members > 1:
            prev_hub = hubs[(member_of - 1) % self.n_members]
            src_list.append(new_pages)
            dst_list.append(prev_hub)
        # Every hub promotes the target.
        src_list.append(hubs)
        dst_list.append(np.full(self.n_members, target, dtype=np.int64))

        spammed = add_edges(
            graph,
            np.concatenate(src_list),
            np.concatenate(dst_list),
            n_nodes=first_page + n_pages,
        )
        new_assignment = assignment.extended(n_pages, first_source + member_of)
        return SpammedWeb(
            graph=spammed,
            assignment=new_assignment,
            target_page=target,
            target_source=target_source,
            injected_pages=new_pages,
            injected_sources=new_sources,
            description=(
                f"link exchange: ring of {self.n_members} sources x "
                f"{self.pages_per_member} pages -> page {target}"
            ),
        )

"""Honeypot attacks: induce legitimate links, then forward the authority.

"Rather than risking exposure by hijacking a link, a honeypot *induces*
links, so that it can pass along its accumulated authority by linking to a
spam target page" (Section 2).  The attack creates a fresh honeypot source
with quality-looking pages, adds links from the given legitimate *inducer*
pages to honeypot pages (modelling the organic links the honeypot content
attracted), and links every honeypot page to the target.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..graph.transforms import add_edges
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb

__all__ = ["HoneypotAttack"]


class HoneypotAttack(Attack):
    """Create a honeypot source that collects in-links and forwards them.

    Parameters
    ----------
    target_page:
        The spam page the honeypot promotes.
    n_honeypot_pages:
        Pages in the honeypot source.
    inducer_pages:
        Legitimate pages that link *into* the honeypot (spread round-robin
        over honeypot pages).  These model induced links, so unlike
        hijacking the legitimate pages link to the *honeypot*, not the
        target.
    """

    def __init__(
        self,
        target_page: int,
        n_honeypot_pages: int,
        inducer_pages: np.ndarray | list[int],
    ) -> None:
        self.target_page = int(target_page)
        self.n_honeypot_pages = self._check_count(
            n_honeypot_pages, "n_honeypot_pages"
        )
        inducers = np.unique(np.asarray(inducer_pages, dtype=np.int64))
        if inducers.size == 0:
            raise ScenarioError("honeypot needs at least one inducer page")
        self.inducer_pages = inducers

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        target = self._check_page(graph, self.target_page, "target")
        if self.inducer_pages[-1] >= graph.n_nodes or self.inducer_pages[0] < 0:
            raise ScenarioError(
                f"inducer pages out of range for graph with {graph.n_nodes} pages"
            )
        if (self.inducer_pages == target).any():
            raise ScenarioError("the target page cannot induce its own honeypot")
        target_source = assignment.source_of(target)
        first_page = graph.n_nodes
        honeypot_source = assignment.n_sources
        pot_pages = np.arange(
            first_page, first_page + self.n_honeypot_pages, dtype=np.int64
        )
        # Induced links: each inducer links to one honeypot page.
        induced_dst = pot_pages[
            np.arange(self.inducer_pages.size, dtype=np.int64)
            % self.n_honeypot_pages
        ]
        src = np.concatenate([self.inducer_pages, pot_pages])
        dst = np.concatenate(
            [induced_dst, np.full(self.n_honeypot_pages, target, dtype=np.int64)]
        )
        spammed = add_edges(
            graph, src, dst, n_nodes=first_page + self.n_honeypot_pages
        )
        new_assignment = assignment.extended(
            self.n_honeypot_pages,
            np.full(self.n_honeypot_pages, honeypot_source, dtype=np.int64),
        )
        return SpammedWeb(
            graph=spammed,
            assignment=new_assignment,
            target_page=target,
            target_source=target_source,
            injected_pages=pot_pages,
            injected_sources=np.asarray([honeypot_source], dtype=np.int64),
            hijacked_pages=self.inducer_pages,
            description=(
                f"honeypot: {self.n_honeypot_pages} pages inducing "
                f"{self.inducer_pages.size} legitimate links -> page {target}"
            ),
        )

"""Composite attacks: combinations of the basic strategies.

Section 2: "In practice, Web spammers rely on combinations of these basic
strategies to create more complex attacks on link-based ranking systems.
This complexity can make the total attack both more effective (since
multiple attack vectors are combined) and more difficult to detect
(since simple pattern-based arrangements are masked)."

:class:`CompositeAttack` chains any sequence of attacks against the same
target page, threading the evolving web through each stage and merging
the provenance bookkeeping.  The pre-built
:func:`full_campaign` reproduces the archetypal combined campaign the
paper's introduction describes: a link farm for raw volume, a hijack for
legitimacy, and a honeypot for high-value in-links.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..graph.pagegraph import PageGraph
from ..sources.assignment import SourceAssignment
from .base import Attack, SpammedWeb
from .hijack import HijackAttack
from .honeypot import HoneypotAttack
from .link_farm import LinkFarmAttack

__all__ = ["CompositeAttack", "full_campaign"]


class CompositeAttack(Attack):
    """Apply several attacks in sequence against one target.

    Parameters
    ----------
    attacks:
        Attacks to apply in order.  Every stage must promote the same
        target page (checked at :meth:`apply` time); stages see the web
        as modified by earlier stages, so e.g. a hijack can victimize
        pages created by an earlier honeypot.
    """

    def __init__(self, *attacks: Attack) -> None:
        if not attacks:
            raise ScenarioError("CompositeAttack needs at least one stage")
        self.attacks = tuple(attacks)

    def apply(self, graph: PageGraph, assignment: SourceAssignment) -> SpammedWeb:
        current_graph = graph
        current_assignment = assignment
        target_page: int | None = None
        injected_pages: list[np.ndarray] = []
        injected_sources: list[np.ndarray] = []
        hijacked: list[np.ndarray] = []
        descriptions: list[str] = []
        for stage in self.attacks:
            result = stage.apply(current_graph, current_assignment)
            if target_page is None:
                target_page = result.target_page
            elif result.target_page != target_page:
                raise ScenarioError(
                    f"composite stages disagree on the target: "
                    f"{target_page} vs {result.target_page}"
                )
            current_graph = result.graph
            current_assignment = result.assignment
            injected_pages.append(result.injected_pages)
            injected_sources.append(result.injected_sources)
            hijacked.append(result.hijacked_pages)
            descriptions.append(result.description)
        assert target_page is not None
        return SpammedWeb(
            graph=current_graph,
            assignment=current_assignment,
            target_page=target_page,
            target_source=current_assignment.source_of(target_page),
            injected_pages=np.concatenate(injected_pages),
            injected_sources=np.concatenate(injected_sources),
            hijacked_pages=np.unique(np.concatenate(hijacked)),
            description=" + ".join(descriptions),
        )


def full_campaign(
    target_page: int,
    *,
    farm_pages: int = 50,
    farm_sources: int = 5,
    victim_pages: np.ndarray | list[int],
    honeypot_pages: int = 5,
    inducer_pages: np.ndarray | list[int],
) -> CompositeAttack:
    """The archetypal combined campaign: farm + hijack + honeypot.

    Parameters
    ----------
    target_page:
        The page all three vectors promote.
    farm_pages, farm_sources:
        Size of the link-farm stage.
    victim_pages:
        Legitimate pages the hijack stage captures.
    honeypot_pages, inducer_pages:
        Honeypot size and the legitimate pages induced to link to it.
    """
    return CompositeAttack(
        LinkFarmAttack(target_page, farm_pages, n_sources=farm_sources, interlink=True),
        HijackAttack(target_page, victim_pages),
        HoneypotAttack(target_page, honeypot_pages, inducer_pages),
    )

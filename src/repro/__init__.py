"""repro — Spam-Resilient Web Rankings via Influence Throttling.

A full reproduction of Caverlee, Webb & Liu (IPPS 2007): the
Spam-Resilient SourceRank ranking model with source-consensus edge
weighting and influence throttling, plus every substrate it needs —
page/source graph machinery, compressed graph storage, ranking solvers,
spam-proximity throttle assignment, the Section 2 attack models, the
Section 4 closed-form analysis, synthetic dataset analogues of the
paper's three crawls, and the Section 6 experiment harness.

Quickstart::

    import numpy as np
    from repro import SpamResilientPipeline, load_dataset, sample_seed_set

    ds = load_dataset("uk2002_like")                    # synthetic web + planted spam
    seeds = sample_seed_set(ds.spam_sources, 0.10,      # the defender knows ~10 %
                            np.random.default_rng(0))
    result = SpamResilientPipeline().rank(ds.graph, ds.assignment,
                                          spam_seeds=seeds)
    print(result.top_sources(10))

See DESIGN.md for the module map and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .audit import (
    InvariantAuditor,
    InvariantViolation,
    run_differential_oracle,
    run_metamorphic_suite,
)
from .config import (
    DEFAULT_ALPHA,
    DEFAULT_MAX_ITER,
    DEFAULT_TOLERANCE,
    AuditParams,
    ExperimentParams,
    RankingParams,
    ResilienceParams,
    SpamProximityParams,
    ThrottleParams,
)
from .core.pipeline import PipelineResult, SpamResilientPipeline
from .datasets import (
    DATASETS,
    LoadedDataset,
    SpamPlantConfig,
    SyntheticWebConfig,
    generate_web,
    load_dataset,
    plant_spam_communities,
    sample_seed_set,
)
from .errors import (
    AuditError,
    CodecError,
    ConfigError,
    ConvergenceError,
    DatasetError,
    DivergenceError,
    EmptyGraphError,
    GraphError,
    InjectedFaultError,
    NodeIndexError,
    NumericalError,
    ObservabilityError,
    ReproError,
    ScenarioError,
    SolveDeadlineError,
    SourceAssignmentError,
    StagnationError,
    ThrottleError,
)
from .observability import (
    MetricsRegistry,
    ProgressCallback,
    SolverTelemetry,
    Tracer,
    get_registry,
)
from .economics import AttackPlanner, CostModel, portfolio_value, traffic_share
from .graph import GraphBuilder, PageGraph
from .linalg import (
    CsrOperator,
    ReversedOperator,
    ThrottledOperator,
    TransitionOperator,
    available_solvers,
    register_solver,
)
from .resilience import (
    FallbackChain,
    PipelineCheckpointer,
    SolveAttempt,
    SolveCheckpointer,
)
from .serving import CircuitBreaker, RankingService, SnapshotStore
from .ranking import (
    RankingResult,
    blockrank,
    hits,
    pagerank,
    sourcerank,
    spam_resilient_sourcerank,
    trustrank,
)
from .sources import SourceAssignment, SourceGraph
from .spam import (
    CrossSourceAttack,
    HijackAttack,
    HoneypotAttack,
    IntraSourceAttack,
    LinkExchangeAttack,
    LinkFarmAttack,
    evaluate_attack,
)
from .throttle import ThrottleVector, assign_kappa, spam_proximity, throttle_transform
from .webgraph import CompressedGraph

__version__ = "1.0.0"

__all__ = [
    # configuration
    "DEFAULT_ALPHA",
    "DEFAULT_MAX_ITER",
    "DEFAULT_TOLERANCE",
    "RankingParams",
    "ResilienceParams",
    "AuditParams",
    "ThrottleParams",
    "SpamProximityParams",
    "ExperimentParams",
    # errors
    "ReproError",
    "GraphError",
    "EmptyGraphError",
    "NodeIndexError",
    "SourceAssignmentError",
    "ThrottleError",
    "ConvergenceError",
    "NumericalError",
    "DivergenceError",
    "StagnationError",
    "SolveDeadlineError",
    "AuditError",
    "InjectedFaultError",
    "ConfigError",
    "DatasetError",
    "CodecError",
    "ScenarioError",
    "ObservabilityError",
    # observability
    "MetricsRegistry",
    "ProgressCallback",
    "SolverTelemetry",
    "Tracer",
    "get_registry",
    # graph substrate
    "PageGraph",
    "GraphBuilder",
    "CompressedGraph",
    # source view
    "SourceAssignment",
    "SourceGraph",
    # linear-operator layer
    "TransitionOperator",
    "CsrOperator",
    "ThrottledOperator",
    "ReversedOperator",
    "register_solver",
    "available_solvers",
    # rankings
    "RankingResult",
    "pagerank",
    "sourcerank",
    "spam_resilient_sourcerank",
    "hits",
    "trustrank",
    "blockrank",
    # economics (the paper's future-work model)
    "CostModel",
    "AttackPlanner",
    "portfolio_value",
    "traffic_share",
    # throttling
    "ThrottleVector",
    "throttle_transform",
    "spam_proximity",
    "assign_kappa",
    # attacks
    "IntraSourceAttack",
    "CrossSourceAttack",
    "LinkFarmAttack",
    "LinkExchangeAttack",
    "HijackAttack",
    "HoneypotAttack",
    "evaluate_attack",
    # datasets
    "SyntheticWebConfig",
    "SpamPlantConfig",
    "generate_web",
    "plant_spam_communities",
    "sample_seed_set",
    "DATASETS",
    "LoadedDataset",
    "load_dataset",
    # resilience
    "FallbackChain",
    "SolveAttempt",
    "SolveCheckpointer",
    "PipelineCheckpointer",
    # serving
    "RankingService",
    "SnapshotStore",
    "CircuitBreaker",
    # correctness auditing
    "InvariantAuditor",
    "InvariantViolation",
    "run_differential_oracle",
    "run_metamorphic_suite",
    # pipeline
    "SpamResilientPipeline",
    "PipelineResult",
    "__version__",
]

"""Cache-blocked CSR matrix-vector kernels.

A CSR transpose-matvec (``y = A^T x``) visits ``indices`` sequentially but
scatters into ``y`` at arbitrary positions.  Processing the matrix in row
chunks bounds the scatter working set per chunk and lets NumPy reuse hot
cache lines — the "beware of cache effects" idiom from the HPC guide.  For
the forward matvec the same chunking bounds the *gather* set.

These kernels operate on raw CSR arrays so they can also serve the
shared-memory parallel path without re-wrapping scipy objects.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError

__all__ = ["chunked_rmatvec", "chunked_matvec", "DEFAULT_CHUNK_ROWS"]

#: Default rows per chunk: ~64k rows keeps indptr/data slices comfortably
#: inside L2 for typical web-graph densities (10-20 nnz/row).
DEFAULT_CHUNK_ROWS = 65_536


def _check_inputs(matrix: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
    if not sp.issparse(matrix) or matrix.format != "csr":
        raise GraphError("kernel requires a scipy CSR matrix")
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size != matrix.shape[0] and x.size != matrix.shape[1]:
        raise GraphError(
            f"vector length {x.size} incompatible with matrix shape {matrix.shape}"
        )
    return x


def chunked_rmatvec(
    matrix: sp.csr_matrix,
    x: np.ndarray,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``y = matrix.T @ x`` in row chunks.

    Parameters
    ----------
    matrix:
        CSR matrix of shape ``(m, n)``.
    x:
        Dense vector of length ``m``.
    chunk_rows:
        Rows processed per block.
    out:
        Optional preallocated output of length ``n`` (zeroed in place) —
        the in-place-operations idiom: reuse buffers across power
        iterations instead of allocating per call.
    """
    x = _check_inputs(matrix, x)
    m, n = matrix.shape
    if x.size != m:
        raise GraphError(f"rmatvec needs len(x) == {m}, got {x.size}")
    if out is None:
        out = np.zeros(n, dtype=np.float64)
    else:
        if out.size != n:
            raise GraphError(f"out must have length {n}, got {out.size}")
        out[:] = 0.0
    if chunk_rows < 1:
        raise GraphError(f"chunk_rows must be >= 1, got {chunk_rows}")
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for start in range(0, m, chunk_rows):
        stop = min(start + chunk_rows, m)
        lo, hi = indptr[start], indptr[stop]
        if lo == hi:
            continue
        rows = np.repeat(
            np.arange(start, stop, dtype=np.int64),
            np.diff(indptr[start : stop + 1]),
        )
        # Scatter-add the chunk's contributions: y[j] += A[i, j] * x[i].
        np.add.at(out, indices[lo:hi], data[lo:hi] * x[rows])
    return out


def chunked_matvec(
    matrix: sp.csr_matrix,
    x: np.ndarray,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``y = matrix @ x`` in row chunks (gather form).

    Each chunk reduces its gathered products with
    :func:`numpy.add.reduceat` over the chunk-local ``indptr`` — no Python
    loop over rows.
    """
    x = _check_inputs(matrix, x)
    m, n = matrix.shape
    if x.size != n:
        raise GraphError(f"matvec needs len(x) == {n}, got {x.size}")
    if out is None:
        out = np.zeros(m, dtype=np.float64)
    else:
        if out.size != m:
            raise GraphError(f"out must have length {m}, got {out.size}")
        out[:] = 0.0
    if chunk_rows < 1:
        raise GraphError(f"chunk_rows must be >= 1, got {chunk_rows}")
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for start in range(0, m, chunk_rows):
        stop = min(start + chunk_rows, m)
        lo, hi = int(indptr[start]), int(indptr[stop])
        if lo == hi:
            continue
        local_ptr = (indptr[start : stop + 1] - lo).astype(np.int64)
        products = data[lo:hi] * x[indices[lo:hi]]
        nonempty = np.diff(local_ptr) > 0
        # reduceat needs strictly valid segment starts; empty rows yield 0.
        seg_starts = local_ptr[:-1][nonempty]
        sums = np.add.reduceat(products, seg_starts) if seg_starts.size else np.empty(0)
        row_ids = np.arange(start, stop, dtype=np.int64)[nonempty]
        out[row_ids] = sums
    return out

"""HPC kernels: cache-blocked and multiprocessing-parallel sparse matvec.

The ranking engines spend essentially all their time in the transpose
matvec ``x <- T^T x`` (one per power iteration).  This package provides
three interchangeable kernels:

* :func:`~repro.parallel.chunked.chunked_rmatvec` — row-chunk streaming over
  the CSR arrays, keeping the working set inside cache for very large
  matrices;
* :class:`~repro.parallel.shared.SharedCsrMatvec` — a multiprocessing pool
  over shared-memory CSR blocks (no pickling of matrix data per call);
* plain ``scipy`` (``matrix.T @ x``) as the baseline.

:class:`~repro.parallel.shared.SharedBlockedMatvec` extends the pool to
out-of-core graphs: workers decode row-block shards from a
:class:`~repro.webgraph.store.ShardedGraphStore` themselves, so only the
iterate ever crosses the process boundary.

``benchmarks/bench_ablation_kernels.py`` compares the three, per the HPC
guide's "no optimization without measuring" rule.
"""

from .chunked import chunked_rmatvec, chunked_matvec
from .shared import SharedBlockedMatvec, SharedCsrMatvec
from .executor import WorkerPool, effective_workers

__all__ = [
    "chunked_rmatvec",
    "chunked_matvec",
    "SharedCsrMatvec",
    "SharedBlockedMatvec",
    "WorkerPool",
    "effective_workers",
]

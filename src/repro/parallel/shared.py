"""Shared-memory multiprocessing transpose-matvec.

:class:`SharedCsrMatvec` splits a CSR matrix into row bands, publishes the
CSR arrays and the input/output vectors in
:mod:`multiprocessing.shared_memory` segments, and has each worker compute
its band's scatter contribution into a private accumulator that the parent
reduces.  Per-iteration traffic is therefore exactly one input-vector write
and ``n_workers`` accumulator reads — no matrix bytes ever cross the
process boundary after setup (the Gleich et al. linear-system PageRank
paper [18] the paper cites uses the same row-striping decomposition).

Worker death does not fail the solve: the pool rebuilds itself up to its
retry budget (see :class:`~repro.parallel.executor.WorkerPool.run`), and
when that budget is exhausted the evaluator *degrades* — it rebuilds the
transposed CSR in-process from the shared arrays and serves every further
``rmatvec`` serially, recording
``repro_fallbacks_total{kind="serial_degrade"}``.  The solve sees the
same numbers either way, just slower.
"""

from __future__ import annotations

import atexit
from concurrent.futures import BrokenExecutor, TimeoutError as FuturesTimeoutError
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from ..logging_utils import get_logger
from .executor import WorkerPool, effective_workers

_logger = get_logger(__name__)

__all__ = ["SharedCsrMatvec"]

# Module-level worker state, populated by the pool initializer after fork.
_WORKER_STATE: dict[str, object] = {}


def _attach_shared(name: str, shape: tuple[int, ...], dtype: str) -> np.ndarray:
    shm = shared_memory.SharedMemory(name=name)
    # Keep a reference so the segment is not GC-closed while the view lives.
    arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    _WORKER_STATE.setdefault("_segments", []).append(shm)  # type: ignore[union-attr]
    return arr


def _worker_init(meta: dict[str, object]) -> None:
    """Pool initializer: map the shared CSR arrays + vectors into the worker."""
    _WORKER_STATE["indptr"] = _attach_shared(*meta["indptr"])  # type: ignore[misc]
    _WORKER_STATE["indices"] = _attach_shared(*meta["indices"])  # type: ignore[misc]
    _WORKER_STATE["data"] = _attach_shared(*meta["data"])  # type: ignore[misc]
    _WORKER_STATE["x"] = _attach_shared(*meta["x"])  # type: ignore[misc]
    _WORKER_STATE["n_cols"] = meta["n_cols"]


def _worker_band(band: tuple[int, int]) -> bytes:
    """Compute one row band's contribution to ``A^T x``; returns raw bytes."""
    start, stop = band
    indptr: np.ndarray = _WORKER_STATE["indptr"]  # type: ignore[assignment]
    indices: np.ndarray = _WORKER_STATE["indices"]  # type: ignore[assignment]
    data: np.ndarray = _WORKER_STATE["data"]  # type: ignore[assignment]
    x: np.ndarray = _WORKER_STATE["x"]  # type: ignore[assignment]
    n_cols: int = _WORKER_STATE["n_cols"]  # type: ignore[assignment]
    acc = np.zeros(n_cols, dtype=np.float64)
    lo, hi = int(indptr[start]), int(indptr[stop])
    if lo != hi:
        rows = np.repeat(
            np.arange(start, stop, dtype=np.int64),
            np.diff(indptr[start : stop + 1]),
        )
        np.add.at(acc, indices[lo:hi], data[lo:hi] * x[rows])
    return acc.tobytes()


class SharedCsrMatvec:
    """Persistent parallel ``y = A^T x`` evaluator over a fixed CSR matrix.

    Usage::

        with SharedCsrMatvec(matrix, n_workers=4) as mv:
            for _ in range(iters):
                y = mv.rmatvec(x)

    The object owns shared-memory segments; always close it (context
    manager or :meth:`close`).
    """

    def __init__(
        self,
        matrix: sp.csr_matrix,
        n_workers: int | None = None,
        *,
        max_rebuilds: int = 2,
        task_timeout: float | None = None,
    ) -> None:
        if not sp.issparse(matrix) or matrix.format != "csr":
            raise GraphError("SharedCsrMatvec requires a scipy CSR matrix")
        self.shape = matrix.shape
        self.n_workers = effective_workers(n_workers)
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        self._serial_at: sp.csr_matrix | None = None

        indptr = matrix.indptr.astype(np.int64)
        indices = matrix.indices.astype(np.int64)
        data = matrix.data.astype(np.float64)

        self._indptr = self._publish("indptr", indptr)
        self._indices = self._publish("indices", indices)
        self._data = self._publish("data", data)
        self._x = self._publish("x", np.zeros(self.shape[0], dtype=np.float64))

        meta = {
            "indptr": self._meta_of(0, indptr),
            "indices": self._meta_of(1, indices),
            "data": self._meta_of(2, data),
            "x": self._meta_of(3, np.zeros(self.shape[0])),
            "n_cols": int(self.shape[1]),
        }
        self._bands = self._make_bands(indptr, self.n_workers)
        self._pool = WorkerPool(
            self.n_workers,
            initializer=_worker_init,
            initargs=(meta,),
            max_rebuilds=max_rebuilds,
            task_timeout=task_timeout,
        )
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _publish(self, label: str, array: np.ndarray) -> np.ndarray:
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[:] = array
        self._segments.append(shm)
        return view

    def _meta_of(self, idx: int, array: np.ndarray) -> tuple[str, tuple[int, ...], str]:
        return (self._segments[idx].name, array.shape, str(array.dtype))

    @staticmethod
    def _make_bands(indptr: np.ndarray, n_workers: int) -> list[tuple[int, int]]:
        """Split rows into bands with roughly equal nonzero counts."""
        m = indptr.size - 1
        nnz = int(indptr[-1])
        if m == 0:
            return []
        targets = np.linspace(0, nnz, n_workers + 1)
        cuts = np.searchsorted(indptr, targets[1:-1], side="left")
        bounds = np.unique(np.concatenate([[0], cuts, [m]])).astype(int)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(bounds.size - 1)
            if bounds[i] < bounds[i + 1]
        ]

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the evaluator has fallen back to the serial kernel."""
        return self._serial_at is not None

    def _degrade(self, reason: str) -> None:
        """Switch permanently to a serial in-process transpose matvec."""
        from ..observability.metrics import get_registry

        # Copy out of shared memory so close() can still unlink segments.
        self._serial_at = sp.csr_matrix(
            (
                np.array(self._data, copy=True),
                np.array(self._indices, copy=True),
                np.array(self._indptr, copy=True),
            ),
            shape=self.shape,
        ).T.tocsr()
        get_registry().counter(
            "repro_fallbacks_total",
            "Recovery actions by kind (solver/pool_rebuild/serial_degrade)",
            labelnames=("kind",),
        ).labels(kind="serial_degrade").inc()
        _logger.error(
            "parallel matvec degraded to serial kernel after %s "
            "(results unchanged, throughput reduced)",
            reason,
        )

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A^T @ x`` across the worker pool (serial once degraded)."""
        if self._closed:
            raise GraphError("SharedCsrMatvec is closed")
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[0]:
            raise GraphError(
                f"rmatvec needs len(x) == {self.shape[0]}, got {x.size}"
            )
        if self._serial_at is not None:
            return self._serial_at @ x
        self._x[:] = x
        try:
            chunks = self._pool.run(_worker_band, self._bands)
        except (BrokenExecutor, FuturesTimeoutError) as exc:
            self._degrade(f"repeated pool failures ({type(exc).__name__})")
            return self._serial_at @ x
        out = np.zeros(self.shape[1], dtype=np.float64)
        for chunk in chunks:
            out += np.frombuffer(chunk, dtype=np.float64)
        return out

    def close(self) -> None:
        """Shut down the pool and release all shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedCsrMatvec":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
